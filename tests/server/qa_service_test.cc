// End-to-end serving-tier tests: a QaService booted from a real snapshot
// file, driven over real loopback sockets. Covers the paper's running
// example through the full HTTP path, admission-control overflow, the
// introspection endpoints, and graceful shutdown drain.

#include "server/qa_service.h"

#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "server/http_client.h"
#include "server/json_writer.h"
#include "store/snapshot.h"
#include "test_support.h"

namespace ganswer {
namespace server {
namespace {

/// Writes the shared test world into a snapshot file once per binary and
/// hands out its path; the service under test always cold-starts from disk,
/// exactly like production. The path is pid-suffixed: ctest runs each test
/// as its own process, in parallel, from the same directory — a shared
/// filename would let one process read the snapshot mid-rewrite by
/// another.
const std::string& SnapshotPath() {
  static std::string* path = [] {
    auto* p = new std::string("qa_service_test." +
                              std::to_string(::getpid()) + ".snap");
    const auto& world = ganswer::testing::World();
    Status st = store::WriteSnapshotFile(world.kb.graph, *world.verified, *p);
    if (!st.ok()) {
      std::fprintf(stderr, "snapshot write failed: %s\n",
                   st.ToString().c_str());
      std::abort();
    }
    std::atexit([] {
      std::remove(("qa_service_test." + std::to_string(::getpid()) +
                   ".snap")
                      .c_str());
    });
    return p;
  }();
  return *path;
}

QaService::Options TestOptions() {
  QaService::Options options;
  options.snapshot_path = SnapshotPath();
  options.port = 0;  // ephemeral: parallel ctest runs never collide
  options.threads = 2;
  return options;
}

std::string Quoted(std::string_view s) {
  return "\"" + std::string(s) + "\"";
}

TEST(QaServiceTest, AnswersTheRunningExampleOverHttp) {
  QaService service(TestOptions());
  ASSERT_TRUE(service.Start().ok());

  BlockingHttpClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", service.port()).ok());
  auto r = client.Post(
      "/answer",
      "{\"question\": "
      "\"Who was married to an actor that played in Philadelphia ?\"}");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->status, 200) << r->body;
  // The paper's running example resolves to Melanie_Griffith, and the
  // response carries the lowered SPARQL alongside the answers.
  EXPECT_NE(r->body.find(Quoted("Melanie_Griffith")), std::string::npos)
      << r->body;
  EXPECT_NE(r->body.find("\"sparql\""), std::string::npos) << r->body;
  EXPECT_NE(r->body.find("\"answers\""), std::string::npos) << r->body;

  // The exact same question again is a cache hit, visible in the response.
  auto again = client.Post(
      "/answer",
      "{\"question\": "
      "\"Who was married to an actor that played in Philadelphia ?\"}");
  ASSERT_TRUE(again.ok()) << again.status().ToString();
  ASSERT_EQ(again->status, 200);
  EXPECT_NE(again->body.find("\"cache_hit\":true"), std::string::npos)
      << again->body;

  client.Close();
  service.Shutdown();
}

TEST(QaServiceTest, AcceptsPlainTextQuestionBody) {
  QaService service(TestOptions());
  ASSERT_TRUE(service.Start().ok());
  BlockingHttpClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", service.port()).ok());
  auto r = client.Post(
      "/answer", "Who was married to an actor that played in Philadelphia ?",
      "text/plain");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->status, 200) << r->body;
  EXPECT_NE(r->body.find(Quoted("Melanie_Griffith")), std::string::npos)
      << r->body;
  client.Close();
  service.Shutdown();
}

TEST(QaServiceTest, BadRequestBodiesGet400) {
  QaService service(TestOptions());
  ASSERT_TRUE(service.Start().ok());
  BlockingHttpClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", service.port()).ok());
  // Empty body, JSON without the key, and malformed JSON all answer 400
  // without ever reaching the worker pool.
  for (const char* body : {"", "{\"nope\": 1}", "{\"question\": "}) {
    auto r = client.Post("/answer", body);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_EQ(r->status, 400) << "body: " << body << " -> " << r->body;
  }
  EXPECT_EQ(service.queue_depth(), 0);
  client.Close();
  service.Shutdown();
}

TEST(QaServiceTest, SparqlEndpointEvaluatesQueries) {
  QaService service(TestOptions());
  ASSERT_TRUE(service.Start().ok());
  BlockingHttpClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", service.port()).ok());

  auto r = client.Post(
      "/sparql",
      "{\"query\": \"SELECT ?w WHERE { ?w <spouse> <Antonio_Banderas> }\"}");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->status, 200) << r->body;
  EXPECT_NE(r->body.find(Quoted("Melanie_Griffith")), std::string::npos)
      << r->body;

  auto bad = client.Post("/sparql", "{\"query\": \"SELECT WHERE {\"}");
  ASSERT_TRUE(bad.ok());
  EXPECT_EQ(bad->status, 422) << bad->body;

  client.Close();
  service.Shutdown();
}

TEST(QaServiceTest, HealthzAndStatsReportServiceState) {
  QaService service(TestOptions());
  ASSERT_TRUE(service.Start().ok());
  BlockingHttpClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", service.port()).ok());

  auto health = client.Get("/healthz");
  ASSERT_TRUE(health.ok()) << health.status().ToString();
  EXPECT_EQ(health->status, 200);
  EXPECT_NE(health->body.find("\"status\":\"ok\""), std::string::npos)
      << health->body;
  EXPECT_NE(health->body.find("\"snapshot_fingerprint\""), std::string::npos);

  // One answered question shows up in the per-endpoint counters.
  auto answer = client.Post("/answer", "{\"question\": \"Who is nobody ?\"}");
  ASSERT_TRUE(answer.ok());

  auto stats = client.Get("/stats");
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->status, 200);
  for (const char* key :
       {"\"question_cache\"", "\"hits\"", "\"misses\"", "\"evictions\"",
        "\"queue_depth\"", "\"rejected\"", "\"/answer\"", "\"/sparql\"",
        "\"requests\"", "\"connections_active\"", "\"graph\"",
        "\"predicates\"", "\"avg_out_fanout\"", "\"planner\"",
        "\"planned_queries\"", "\"merge_joins\"",
        "\"intermediate_bindings\""}) {
    EXPECT_NE(stats->body.find(key), std::string::npos)
        << "missing " << key << " in " << stats->body;
  }
  auto requests = JsonGetString(stats->body, "no-such-key");
  EXPECT_FALSE(requests.ok());  // stats body is one JSON object, not flat text

  client.Close();
  service.Shutdown();
}

// Admission control: with max_queue=1 and the only admitted request parked
// on a latch inside the worker, every further request must be shed with an
// immediate 503 — deterministically, not probabilistically.
TEST(QaServiceTest, OverflowIsSheddedWith503) {
  std::mutex mu;
  std::condition_variable cv;
  bool release = false;
  std::atomic<int> workers_held{0};

  QaService::Options options = TestOptions();
  options.threads = 1;
  options.max_queue = 1;
  options.worker_hook = [&] {
    workers_held.fetch_add(1);
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return release; });
  };
  QaService service(options);
  ASSERT_TRUE(service.Start().ok());

  // First request occupies the single admission slot.
  std::thread holder([&] {
    BlockingHttpClient client;
    ASSERT_TRUE(client.Connect("127.0.0.1", service.port()).ok());
    auto r = client.Post("/answer", "{\"question\": \"Who is nobody ?\"}");
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_EQ(r->status, 200) << r->body;
  });
  while (workers_held.load() == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  BlockingHttpClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", service.port()).ok());
  for (int i = 0; i < 3; ++i) {
    auto r = client.Post("/answer", "{\"question\": \"Who is nobody ?\"}");
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_EQ(r->status, 503) << r->body;
    EXPECT_NE(r->body.find("\"error\":\"overloaded\""), std::string::npos)
        << r->body;
  }
  EXPECT_EQ(service.rejected_total(), 3u);
  EXPECT_EQ(service.queue_depth(), 1);

  {
    std::lock_guard<std::mutex> lock(mu);
    release = true;
  }
  cv.notify_all();
  holder.join();

  // Slot freed: the same connection is served again.
  auto ok = client.Post("/answer", "{\"question\": \"Who is nobody ?\"}");
  ASSERT_TRUE(ok.ok()) << ok.status().ToString();
  EXPECT_EQ(ok->status, 200) << ok->body;
  client.Close();
  service.Shutdown();
}

// Deadline shedding at dequeue, driven by the X-Deadline-Ms header: with
// the single worker parked on a latch, a queued request whose budget
// expires while it waits must be shed with 503 the moment a worker picks
// it up — before any matcher work — while a queued request without a
// budget is served normally.
TEST(QaServiceTest, DeadlineHeaderRequestsAreShedAtDequeue) {
  std::mutex mu;
  std::condition_variable cv;
  bool release = false;
  std::atomic<int> workers_held{0};

  QaService::Options options = TestOptions();
  options.threads = 1;
  options.max_queue = 8;
  options.deadline_ms = 0;  // no default: only the header arms a deadline
  options.worker_hook = [&] {
    workers_held.fetch_add(1);
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return release; });
  };
  QaService service(options);
  ASSERT_TRUE(service.Start().ok());

  // A occupies the single worker (inside the hook, past its own deadline
  // check). Distinct questions throughout: a cache hit would ride the
  // fast path and never enter the queue.
  std::thread holder([&] {
    BlockingHttpClient client;
    ASSERT_TRUE(client.Connect("127.0.0.1", service.port()).ok());
    auto r = client.Post("/answer", "{\"question\": \"Who is holder ?\"}");
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_EQ(r->status, 200) << r->body;
  });
  while (workers_held.load() == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  // B queues with a 30 ms budget; C queues with none.
  std::thread deadline_request([&] {
    BlockingHttpClient client;
    ASSERT_TRUE(client.Connect("127.0.0.1", service.port()).ok());
    auto r = client.Post("/answer", "{\"question\": \"Who is exp ?\"}",
                         "application/json", {{"X-Deadline-Ms", "30"}});
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_EQ(r->status, 503) << r->body;
    EXPECT_NE(r->body.find("\"shed\":\"deadline_expired\""),
              std::string::npos)
        << r->body;
    EXPECT_NE(r->body.find("\"deadline_ms\":30"), std::string::npos)
        << r->body;
    ASSERT_NE(r->Header("Retry-After"), nullptr) << r->body;
  });
  while (service.queue_depth() < 2) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  std::thread patient_request([&] {
    BlockingHttpClient client;
    ASSERT_TRUE(client.Connect("127.0.0.1", service.port()).ok());
    auto r = client.Post("/answer", "{\"question\": \"Who is pat ?\"}");
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_EQ(r->status, 200) << r->body;
  });
  while (service.queue_depth() < 3) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  // Let B's budget expire while it sits in the queue, then free the
  // worker. B is shed at dequeue; C still gets its answer.
  std::this_thread::sleep_for(std::chrono::milliseconds(60));
  {
    std::lock_guard<std::mutex> lock(mu);
    release = true;
  }
  cv.notify_all();
  holder.join();
  deadline_request.join();
  patient_request.join();

  EXPECT_EQ(service.shed_deadline_expired(), 1u);
  EXPECT_EQ(service.shed_queue_full(), 0u);
  EXPECT_EQ(service.rejected_total(), 1u);
  service.Shutdown();
}

// Same shedding via Options::deadline_ms, with no header on the wire:
// the configured default budget applies to every POST.
TEST(QaServiceTest, DefaultDeadlineShedsStaleQueuedRequests) {
  std::mutex mu;
  std::condition_variable cv;
  bool release = false;
  std::atomic<int> workers_held{0};

  QaService::Options options = TestOptions();
  options.threads = 1;
  options.max_queue = 8;
  options.deadline_ms = 30;
  options.worker_hook = [&] {
    workers_held.fetch_add(1);
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return release; });
  };
  QaService service(options);
  ASSERT_TRUE(service.Start().ok());

  std::thread holder([&] {
    BlockingHttpClient client;
    ASSERT_TRUE(client.Connect("127.0.0.1", service.port()).ok());
    auto r = client.Post("/answer", "{\"question\": \"Who is holder ?\"}");
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_EQ(r->status, 200) << r->body;
  });
  while (workers_held.load() == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  std::thread stale([&] {
    BlockingHttpClient client;
    ASSERT_TRUE(client.Connect("127.0.0.1", service.port()).ok());
    auto r = client.Post("/answer", "{\"question\": \"Who is stale ?\"}");
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_EQ(r->status, 503) << r->body;
    EXPECT_NE(r->body.find("\"shed\":\"deadline_expired\""),
              std::string::npos)
        << r->body;
  });
  while (service.queue_depth() < 2) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(60));
  {
    std::lock_guard<std::mutex> lock(mu);
    release = true;
  }
  cv.notify_all();
  holder.join();
  stale.join();

  EXPECT_EQ(service.shed_deadline_expired(), 1u);
  service.Shutdown();
}

// The cached fast path: a question-cache hit is answered inline on the
// event-loop thread even when the admission queue is completely full —
// hot questions never queue behind cold-tail matcher work.
TEST(QaServiceTest, CachedFastPathServesHitsPastAFullQueue) {
  std::mutex mu;
  std::condition_variable cv;
  bool release = false;
  std::atomic<int> workers_held{0};

  QaService::Options options = TestOptions();
  options.threads = 1;
  options.max_queue = 1;
  options.worker_hook = [&] {
    workers_held.fetch_add(1);
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return release; });
  };
  QaService service(options);
  ASSERT_TRUE(service.Start().ok());

  // Warm the cache before the worker gets latched. The warming request
  // itself rides the worker path (miss), so release the latch for it.
  {
    std::lock_guard<std::mutex> lock(mu);
    release = true;
  }
  BlockingHttpClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", service.port()).ok());
  auto warm = client.Post("/answer", "{\"question\": \"Who is hot ?\"}");
  ASSERT_TRUE(warm.ok()) << warm.status().ToString();
  ASSERT_EQ(warm->status, 200) << warm->body;
  {
    std::lock_guard<std::mutex> lock(mu);
    release = false;
  }

  // A cold question parks the only worker and fills the only slot.
  std::thread holder([&] {
    BlockingHttpClient holder_client;
    ASSERT_TRUE(holder_client.Connect("127.0.0.1", service.port()).ok());
    auto r = holder_client.Post("/answer",
                                "{\"question\": \"Who is cold ?\"}");
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_EQ(r->status, 200) << r->body;
  });
  int held_baseline = 1;  // the warming request already ran the hook once
  while (workers_held.load() <= held_baseline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  // Queue is full: a second cold question is shed...
  auto shed = client.Post("/answer", "{\"question\": \"Who is cold2 ?\"}");
  ASSERT_TRUE(shed.ok()) << shed.status().ToString();
  EXPECT_EQ(shed->status, 503) << shed->body;

  // ...but the warmed question is served inline, cache-hit flagged.
  auto hit = client.Post("/answer", "{\"question\": \"Who is hot ?\"}");
  ASSERT_TRUE(hit.ok()) << hit.status().ToString();
  EXPECT_EQ(hit->status, 200) << hit->body;
  EXPECT_NE(hit->body.find("\"cache_hit\":true"), std::string::npos)
      << hit->body;
  EXPECT_EQ(service.fast_path_hits(), 1u);

  {
    std::lock_guard<std::mutex> lock(mu);
    release = true;
  }
  cv.notify_all();
  holder.join();
  client.Close();
  service.Shutdown();
}

// Byte identity: for the same cache entry, the inline fast-path response
// body must be byte-for-byte what the worker-pool path would have sent.
// X-No-Fast-Path forces the worker path on a fast-path-enabled service,
// so both bodies are serialized from the identical cached Response.
TEST(QaServiceTest, FastPathBodyIsByteIdenticalToWorkerPath) {
  QaService service(TestOptions());
  ASSERT_TRUE(service.Start().ok());
  BlockingHttpClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", service.port()).ok());

  const std::string body =
      "{\"question\": "
      "\"Who was married to an actor that played in Philadelphia ?\"}";
  auto warm = client.Post("/answer", body);
  ASSERT_TRUE(warm.ok()) << warm.status().ToString();
  ASSERT_EQ(warm->status, 200) << warm->body;

  auto fast = client.Post("/answer", body);
  ASSERT_TRUE(fast.ok()) << fast.status().ToString();
  ASSERT_EQ(fast->status, 200) << fast->body;
  EXPECT_NE(fast->body.find("\"cache_hit\":true"), std::string::npos)
      << fast->body;

  auto worker = client.Post("/answer", body, "application/json",
                            {{"X-No-Fast-Path", "1"}});
  ASSERT_TRUE(worker.ok()) << worker.status().ToString();
  ASSERT_EQ(worker->status, 200) << worker->body;

  EXPECT_EQ(fast->body, worker->body);
  EXPECT_EQ(service.fast_path_hits(), 1u)
      << "the X-No-Fast-Path request must not take the fast path";

  // Stage timings are zeroed on both hit paths: cached answers did no
  // understanding or evaluation work this request.
  EXPECT_NE(fast->body.find("\"understanding_ms\":0"), std::string::npos)
      << fast->body;

  client.Close();
  service.Shutdown();
}

// The /stats surface for the tail-latency program: per-endpoint latency
// percentiles, queue-wait percentiles, split shed counters, fast-path
// hits.
TEST(QaServiceTest, StatsExposeTailLatencyCounters) {
  QaService::Options options = TestOptions();
  options.deadline_ms = 250;
  QaService service(options);
  ASSERT_TRUE(service.Start().ok());
  BlockingHttpClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", service.port()).ok());

  auto first = client.Post("/answer", "{\"question\": \"Who is seen ?\"}");
  ASSERT_TRUE(first.ok());
  ASSERT_EQ(first->status, 200) << first->body;
  auto second = client.Post("/answer", "{\"question\": \"Who is seen ?\"}");
  ASSERT_TRUE(second.ok());
  ASSERT_EQ(second->status, 200) << second->body;

  auto stats = client.Get("/stats");
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->status, 200);
  for (const char* key :
       {"\"shed\"", "\"queue_full\"", "\"deadline_expired\"",
        "\"deadline_ms\":250", "\"fast_path_hits\":1", "\"queue_wait_ms\"",
        "\"p50_ms\"", "\"p95_ms\"", "\"p99_ms\"", "\"p99_9_ms\""}) {
    EXPECT_NE(stats->body.find(key), std::string::npos)
        << "missing " << key << " in " << stats->body;
  }

  client.Close();
  service.Shutdown();
}

// Graceful shutdown: a request parked inside the worker when Shutdown()
// starts must still be answered (drain), and the listener must be gone
// afterwards.
TEST(QaServiceTest, ShutdownDrainsInFlightRequests) {
  std::mutex mu;
  std::condition_variable cv;
  bool release = false;
  std::atomic<int> workers_held{0};

  QaService::Options options = TestOptions();
  options.threads = 1;
  options.worker_hook = [&] {
    workers_held.fetch_add(1);
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return release; });
  };
  QaService service(options);
  ASSERT_TRUE(service.Start().ok());
  int port = service.port();

  std::thread in_flight([&] {
    BlockingHttpClient client;
    ASSERT_TRUE(client.Connect("127.0.0.1", port).ok());
    auto r = client.Post("/answer", "{\"question\": \"Who is nobody ?\"}");
    // The drain guarantee: the response arrives complete, after shutdown
    // began, with status 200 — never a reset or a truncated body.
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_EQ(r->status, 200) << r->body;
  });
  while (workers_held.load() == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  std::thread releaser([&] {
    // Let Shutdown() enter its drain phase before freeing the worker.
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    std::lock_guard<std::mutex> lock(mu);
    release = true;
    cv.notify_all();
  });
  service.Shutdown();  // must block until the in-flight response flushed
  in_flight.join();
  releaser.join();
  EXPECT_EQ(service.queue_depth(), 0);

  BlockingHttpClient refused;
  EXPECT_FALSE(refused.Connect("127.0.0.1", port).ok());
}

TEST(QaServiceTest, StartFailsCleanlyOnMissingSnapshot) {
  QaService::Options options;
  options.snapshot_path = "does_not_exist.snap";
  options.port = 0;
  QaService service(options);
  Status st = service.Start();
  EXPECT_FALSE(st.ok());
  service.Shutdown();  // must be safe after a failed start
}

}  // namespace
}  // namespace server
}  // namespace ganswer
