#include "server/json_writer.h"

#include <gtest/gtest.h>

#include <string>

namespace ganswer {
namespace server {
namespace {

TEST(JsonWriterTest, FlatObjectWithCommas) {
  JsonWriter w;
  w.BeginObject()
      .Field("name", "berlin")
      .Field("count", 3)
      .Field("score", 0.5)
      .Field("ok", true)
      .Key("missing")
      .Null()
      .EndObject();
  EXPECT_EQ(w.str(),
            "{\"name\":\"berlin\",\"count\":3,\"score\":0.5,"
            "\"ok\":true,\"missing\":null}");
}

TEST(JsonWriterTest, NestedArraysAndObjects) {
  JsonWriter w;
  w.BeginObject().Key("answers").BeginArray();
  w.BeginObject().Field("text", "a").Field("score", 1.0).EndObject();
  w.BeginObject().Field("text", "b").Field("score", 0.25).EndObject();
  w.EndArray().Key("empty").BeginArray().EndArray().EndObject();
  EXPECT_EQ(w.str(),
            "{\"answers\":[{\"text\":\"a\",\"score\":1},"
            "{\"text\":\"b\",\"score\":0.25}],\"empty\":[]}");
}

TEST(JsonWriterTest, EscapesStrings) {
  JsonWriter w;
  w.BeginObject().Field("q", "say \"hi\"\\\n\ttab\x01").EndObject();
  EXPECT_EQ(w.str(), "{\"q\":\"say \\\"hi\\\"\\\\\\n\\ttab\\u0001\"}");
}

TEST(JsonWriterTest, TopLevelArrayOfScalars) {
  JsonWriter w;
  w.BeginArray().Int(-2).UInt(7).String("x").Bool(false).EndArray();
  EXPECT_EQ(w.str(), "[-2,7,\"x\",false]");
}

TEST(JsonWriterTest, TakeMovesOutTheBuffer) {
  JsonWriter w;
  w.BeginObject().EndObject();
  EXPECT_EQ(w.Take(), "{}");
}

TEST(JsonGetStringTest, ExtractsPlainMember) {
  auto v = JsonGetString("{\"question\": \"who is x ?\"}", "question");
  ASSERT_TRUE(v.ok()) << v.status().ToString();
  EXPECT_EQ(*v, "who is x ?");
}

TEST(JsonGetStringTest, DecodesEscapesIncludingUnicode) {
  auto v = JsonGetString(
      "{\"q\": \"a\\\"b\\\\c\\/d\\n\\t\\u0041\\u00e9\"}", "q");
  ASSERT_TRUE(v.ok()) << v.status().ToString();
  EXPECT_EQ(*v, "a\"b\\c/d\n\tA\xc3\xa9");
}

TEST(JsonGetStringTest, DecodesSurrogatePairs) {
  // U+1F600 as 😀 -> 4-byte UTF-8.
  auto v = JsonGetString("{\"q\": \"\\uD83D\\uDE00\"}", "q");
  ASSERT_TRUE(v.ok()) << v.status().ToString();
  EXPECT_EQ(*v, "\xF0\x9F\x98\x80");
}

TEST(JsonGetStringTest, SkipsOtherMembersOfAnyType) {
  std::string json =
      "{\"n\": 42, \"arr\": [1, {\"deep\": [true, null]}, \"s\"], "
      "\"obj\": {\"a\": {\"b\": \"}]\"}}, \"question\": \"found\"}";
  auto v = JsonGetString(json, "question");
  ASSERT_TRUE(v.ok()) << v.status().ToString();
  EXPECT_EQ(*v, "found");
}

TEST(JsonGetStringTest, NotFoundForAbsentKeyOrNonString) {
  EXPECT_TRUE(JsonGetString("{\"a\": 1}", "question").status().IsNotFound());
  EXPECT_TRUE(JsonGetString("{}", "q").status().IsNotFound());
  // Present but not a string.
  EXPECT_TRUE(JsonGetString("{\"q\": 42}", "q").status().IsNotFound());
}

TEST(JsonGetStringTest, InvalidArgumentForMalformedInput) {
  for (const char* bad :
       {"", "not json", "[1,2]", "{\"q\": \"unterminated", "{\"q\" 1}",
        "{\"q\": \"x\\u00ZZ\"}", "{\"q\": \"bad \\q escape\"}"}) {
    auto v = JsonGetString(bad, "q");
    EXPECT_FALSE(v.ok()) << "accepted: " << bad;
    EXPECT_TRUE(v.status().IsInvalidArgument()) << bad;
  }
}

TEST(JsonGetStringTest, WriterOutputRoundTrips) {
  JsonWriter w;
  std::string nasty = "line1\nline2 \"quoted\" back\\slash \x02";
  w.BeginObject().Field("question", nasty).EndObject();
  auto v = JsonGetString(w.str(), "question");
  ASSERT_TRUE(v.ok()) << v.status().ToString();
  EXPECT_EQ(*v, nasty);
}

}  // namespace
}  // namespace server
}  // namespace ganswer
