#include "server/http_parser.h"

#include <gtest/gtest.h>

#include <string>

namespace ganswer {
namespace server {
namespace {

constexpr const char* kSimpleGet = "GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n";

// Feeds `input` one byte at a time; the parser must land in the same final
// state as a single Feed of the whole buffer.
void FeedBytewise(HttpParser* parser, std::string_view input) {
  for (size_t i = 0; i < input.size() && !parser->done() && !parser->failed();
       ++i) {
    auto consumed = parser->Feed(input.substr(i, 1));
    if (!consumed.ok()) return;
  }
}

TEST(HttpParserTest, ParsesSimpleGet) {
  HttpParser parser;
  auto consumed = parser.Feed(kSimpleGet);
  ASSERT_TRUE(consumed.ok()) << consumed.status().ToString();
  EXPECT_EQ(*consumed, std::string(kSimpleGet).size());
  ASSERT_TRUE(parser.done());
  const HttpRequest& r = parser.request();
  EXPECT_EQ(r.method, "GET");
  EXPECT_EQ(r.path, "/healthz");
  EXPECT_TRUE(r.query.empty());
  EXPECT_EQ(r.version_minor, 1);
  EXPECT_TRUE(r.keep_alive);
  ASSERT_NE(r.Header("host"), nullptr);
  EXPECT_EQ(*r.Header("HOST"), "x");  // lookups are case-insensitive
}

TEST(HttpParserTest, ParsesPostBodyAndQueryString) {
  HttpParser parser;
  std::string input =
      "POST /answer?k=3&verbose=1 HTTP/1.1\r\n"
      "Content-Type: application/json\r\n"
      "Content-Length: 17\r\n"
      "\r\n"
      "{\"question\":\"q\"}!";
  auto consumed = parser.Feed(input);
  ASSERT_TRUE(consumed.ok()) << consumed.status().ToString();
  ASSERT_TRUE(parser.done());
  EXPECT_EQ(parser.request().path, "/answer");
  EXPECT_EQ(parser.request().query, "k=3&verbose=1");
  EXPECT_EQ(parser.request().body, "{\"question\":\"q\"}!");
}

TEST(HttpParserTest, ByteAtATimeMatchesWholeBuffer) {
  std::string input =
      "POST /sparql HTTP/1.1\r\n"
      "Host: localhost:8080\r\n"
      "Content-Length: 5\r\n"
      "Connection: keep-alive\r\n"
      "\r\n"
      "hello";
  HttpParser whole;
  ASSERT_TRUE(whole.Feed(input).ok());
  ASSERT_TRUE(whole.done());

  HttpParser bytewise;
  FeedBytewise(&bytewise, input);
  ASSERT_TRUE(bytewise.done());
  EXPECT_EQ(bytewise.request().method, whole.request().method);
  EXPECT_EQ(bytewise.request().target, whole.request().target);
  EXPECT_EQ(bytewise.request().headers, whole.request().headers);
  EXPECT_EQ(bytewise.request().body, whole.request().body);
}

TEST(HttpParserTest, StopsAtRequestBoundaryForPipelining) {
  HttpParser parser;
  std::string two = std::string(kSimpleGet) + "GET /stats HTTP/1.1\r\n\r\n";
  auto consumed = parser.Feed(two);
  ASSERT_TRUE(consumed.ok());
  // Exactly the first request is consumed; the second stays with the caller.
  EXPECT_EQ(*consumed, std::string(kSimpleGet).size());
  ASSERT_TRUE(parser.done());
  EXPECT_EQ(parser.request().path, "/healthz");

  parser.Reset();
  EXPECT_TRUE(parser.idle());
  auto second = parser.Feed(std::string_view(two).substr(*consumed));
  ASSERT_TRUE(second.ok());
  ASSERT_TRUE(parser.done());
  EXPECT_EQ(parser.request().path, "/stats");
}

TEST(HttpParserTest, ToleratesLeadingEmptyLines) {
  HttpParser parser;
  auto consumed = parser.Feed("\r\n\r\nGET / HTTP/1.1\r\n\r\n");
  ASSERT_TRUE(consumed.ok()) << consumed.status().ToString();
  EXPECT_TRUE(parser.done());
  EXPECT_EQ(parser.request().path, "/");
}

TEST(HttpParserTest, Http10DefaultsToClose) {
  HttpParser parser;
  ASSERT_TRUE(parser.Feed("GET / HTTP/1.0\r\n\r\n").ok());
  ASSERT_TRUE(parser.done());
  EXPECT_EQ(parser.request().version_minor, 0);
  EXPECT_FALSE(parser.request().keep_alive);

  parser.Reset();
  ASSERT_TRUE(
      parser.Feed("GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n").ok());
  ASSERT_TRUE(parser.done());
  EXPECT_TRUE(parser.request().keep_alive);
}

TEST(HttpParserTest, ConnectionCloseOverridesHttp11Default) {
  HttpParser parser;
  ASSERT_TRUE(
      parser.Feed("GET / HTTP/1.1\r\nConnection: close\r\n\r\n").ok());
  ASSERT_TRUE(parser.done());
  EXPECT_FALSE(parser.request().keep_alive);
}

TEST(HttpParserTest, RejectsUnsupportedVersion) {
  HttpParser parser;
  EXPECT_FALSE(parser.Feed("GET / HTTP/2.0\r\n\r\n").ok());
  EXPECT_TRUE(parser.failed());
  EXPECT_EQ(parser.suggested_status(), 505);
}

TEST(HttpParserTest, RejectsMalformedRequestLine) {
  for (const char* line :
       {"GET\r\n\r\n", "GET /\r\n\r\n", "G=T / HTTP/1.1\r\n\r\n",
        " GET / HTTP/1.1\r\n\r\n"}) {
    HttpParser parser;
    auto result = parser.Feed(line);
    EXPECT_FALSE(result.ok()) << "accepted: " << line;
    EXPECT_TRUE(parser.failed());
    EXPECT_EQ(parser.suggested_status(), 400) << line;
  }
  // An unparseable version token is a version problem, not a syntax one.
  HttpParser parser;
  EXPECT_FALSE(parser.Feed("GET / HTTP/1.x\r\n\r\n").ok());
  EXPECT_EQ(parser.suggested_status(), 505);
}

TEST(HttpParserTest, ToleratesBareLfLineEndings) {
  // Lenient per the robustness principle: the CR before LF is optional.
  HttpParser parser;
  auto consumed = parser.Feed("GET /healthz HTTP/1.1\nHost: x\n\n");
  ASSERT_TRUE(consumed.ok()) << consumed.status().ToString();
  ASSERT_TRUE(parser.done());
  EXPECT_EQ(parser.request().path, "/healthz");
  ASSERT_NE(parser.request().Header("host"), nullptr);
}

TEST(HttpParserTest, RejectsFoldedHeaders) {
  HttpParser parser;
  EXPECT_FALSE(
      parser.Feed("GET / HTTP/1.1\r\nA: b\r\n  folded\r\n\r\n").ok());
  EXPECT_TRUE(parser.failed());
}

TEST(HttpParserTest, RejectsHeaderWithoutColonOrBadName) {
  for (const char* input :
       {"GET / HTTP/1.1\r\nNoColonHere\r\n\r\n",
        "GET / HTTP/1.1\r\nBad Name: v\r\n\r\n",
        "GET / HTTP/1.1\r\n: empty\r\n\r\n"}) {
    HttpParser parser;
    EXPECT_FALSE(parser.Feed(input).ok()) << input;
    EXPECT_EQ(parser.suggested_status(), 400);
  }
}

TEST(HttpParserTest, EnforcesRequestLineLimit) {
  HttpParser::Limits limits;
  limits.max_request_line = 64;
  HttpParser parser(limits);
  std::string line = "GET /" + std::string(100, 'a') + " HTTP/1.1\r\n\r\n";
  EXPECT_FALSE(parser.Feed(line).ok());
  EXPECT_EQ(parser.suggested_status(), 414);
}

TEST(HttpParserTest, EnforcesHeaderByteAndCountLimits) {
  {
    HttpParser::Limits limits;
    limits.max_header_bytes = 64;
    HttpParser parser(limits);
    std::string input =
        "GET / HTTP/1.1\r\nX-Big: " + std::string(100, 'v') + "\r\n\r\n";
    EXPECT_FALSE(parser.Feed(input).ok());
    EXPECT_EQ(parser.suggested_status(), 431);
  }
  {
    HttpParser::Limits limits;
    limits.max_headers = 2;
    HttpParser parser(limits);
    EXPECT_FALSE(
        parser.Feed("GET / HTTP/1.1\r\nA: 1\r\nB: 2\r\nC: 3\r\n\r\n").ok());
    EXPECT_EQ(parser.suggested_status(), 431);
  }
}

TEST(HttpParserTest, EnforcesBodyCapWith413) {
  HttpParser::Limits limits;
  limits.max_body_bytes = 16;
  HttpParser parser(limits);
  auto result = parser.Feed("POST / HTTP/1.1\r\nContent-Length: 17\r\n\r\n");
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(parser.suggested_status(), 413);
}

TEST(HttpParserTest, RejectsBadContentLength) {
  for (const char* value : {"abc", "-1", "1x", "", "99999999999999999999"}) {
    HttpParser parser;
    std::string input = std::string("POST / HTTP/1.1\r\nContent-Length: ") +
                        value + "\r\n\r\n";
    EXPECT_FALSE(parser.Feed(input).ok()) << "accepted: " << value;
    EXPECT_TRUE(parser.failed());
  }
}

TEST(HttpParserTest, RejectsTransferEncodingAsNotImplemented) {
  HttpParser parser;
  auto result =
      parser.Feed("POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n");
  EXPECT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsNotSupported())
      << result.status().ToString();
  EXPECT_EQ(parser.suggested_status(), 501);
}

TEST(HttpParserTest, PoisonedUntilResetAfterError) {
  HttpParser parser;
  ASSERT_FALSE(parser.Feed("junk\r\n\r\n").ok());
  EXPECT_TRUE(parser.failed());
  // Further bytes keep failing without advancing.
  EXPECT_FALSE(parser.Feed(kSimpleGet).ok());
  parser.Reset();
  EXPECT_TRUE(parser.idle());
  ASSERT_TRUE(parser.Feed(kSimpleGet).ok());
  EXPECT_TRUE(parser.done());
}

TEST(HttpParserTest, IdleOnlyBeforeFirstByte) {
  HttpParser parser;
  EXPECT_TRUE(parser.idle());
  ASSERT_TRUE(parser.Feed("GE").ok());
  EXPECT_FALSE(parser.idle());
}

}  // namespace
}  // namespace server
}  // namespace ganswer
