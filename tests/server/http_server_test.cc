// HttpServer over real loopback sockets: routing, keep-alive pipelining,
// malformed-request handling, body caps, concurrency limits, and shutdown.
// Every test binds port 0 so parallel ctest runs never collide.

#include "server/http_server.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "server/http_client.h"

namespace ganswer {
namespace server {
namespace {

HttpServer::Options TestOptions() {
  HttpServer::Options options;
  options.port = 0;
  return options;
}

TEST(HttpServerTest, RoutesByMethodAndPath) {
  HttpServer srv(TestOptions());
  srv.Route("GET", "/ping", [](const HttpRequest&,
                               const HttpServer::ResponseWriter& w) {
    w.Send(HttpResponse::Json(200, "{\"pong\":true}"));
  });
  srv.Route("POST", "/echo", [](const HttpRequest& r,
                                const HttpServer::ResponseWriter& w) {
    HttpResponse resp;
    resp.content_type = "text/plain";
    resp.body = r.body;
    w.Send(std::move(resp));
  });
  ASSERT_TRUE(srv.Start().ok());

  BlockingHttpClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", srv.port()).ok());

  auto get = client.Get("/ping");
  ASSERT_TRUE(get.ok()) << get.status().ToString();
  EXPECT_EQ(get->status, 200);
  EXPECT_EQ(get->body, "{\"pong\":true}");
  ASSERT_NE(get->Header("content-type"), nullptr);
  EXPECT_EQ(*get->Header("content-type"), "application/json");

  auto post = client.Post("/echo", "round trip", "text/plain");
  ASSERT_TRUE(post.ok()) << post.status().ToString();
  EXPECT_EQ(post->body, "round trip");
  ASSERT_NE(post->Header("content-type"), nullptr);
  EXPECT_EQ(*post->Header("content-type"), "text/plain");

  // Unrouted path and unrouted method on a routed path both 404.
  auto missing = client.Get("/nope");
  ASSERT_TRUE(missing.ok());
  EXPECT_EQ(missing->status, 404);
  auto wrong_method = client.Get("/echo");
  ASSERT_TRUE(wrong_method.ok());
  EXPECT_EQ(wrong_method->status, 404);

  client.Close();
  srv.Shutdown();
}

TEST(HttpServerTest, KeepAliveServesManyRequestsOnOneConnection) {
  HttpServer srv(TestOptions());
  std::atomic<int> hits{0};
  srv.Route("GET", "/n", [&](const HttpRequest&,
                             const HttpServer::ResponseWriter& w) {
    w.Send(HttpResponse::Json(
        200, std::to_string(hits.fetch_add(1, std::memory_order_relaxed))));
  });
  ASSERT_TRUE(srv.Start().ok());

  BlockingHttpClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", srv.port()).ok());
  for (int i = 0; i < 20; ++i) {
    auto r = client.Get("/n");
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_EQ(r->body, std::to_string(i));
    EXPECT_TRUE(r->keep_alive);
  }
  // All twenty rode one accepted connection.
  EXPECT_EQ(srv.connections_accepted(), 1u);
  client.Close();
  srv.Shutdown();
}

TEST(HttpServerTest, PipelinedRequestsAnswerInOrder) {
  HttpServer srv(TestOptions());
  srv.Route("GET", "/a", [](const HttpRequest&,
                            const HttpServer::ResponseWriter& w) {
    w.Send(HttpResponse::Json(200, "\"a\""));
  });
  srv.Route("GET", "/b", [](const HttpRequest&,
                            const HttpServer::ResponseWriter& w) {
    w.Send(HttpResponse::Json(200, "\"b\""));
  });
  ASSERT_TRUE(srv.Start().ok());

  BlockingHttpClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", srv.port()).ok());
  // Two requests in one write; responses must come back in order.
  auto first = client.Raw(
      "GET /a HTTP/1.1\r\n\r\n"
      "GET /b HTTP/1.1\r\n\r\n");
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_EQ(first->body, "\"a\"");
  auto second = client.Raw("");
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  EXPECT_EQ(second->body, "\"b\"");
  client.Close();
  srv.Shutdown();
}

TEST(HttpServerTest, MalformedRequestGets400AndClose) {
  HttpServer srv(TestOptions());
  ASSERT_TRUE(srv.Start().ok());

  BlockingHttpClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", srv.port()).ok());
  auto r = client.Raw("THIS IS NOT HTTP\r\n\r\n");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->status, 400);
  EXPECT_FALSE(r->keep_alive);
  client.Close();
  srv.Shutdown();
}

TEST(HttpServerTest, OversizedBodyGets413) {
  HttpServer::Options options = TestOptions();
  options.limits.max_body_bytes = 32;
  HttpServer srv(options);
  srv.Route("POST", "/echo", [](const HttpRequest& r,
                                const HttpServer::ResponseWriter& w) {
    w.Send(HttpResponse::Json(200, r.body));
  });
  ASSERT_TRUE(srv.Start().ok());

  BlockingHttpClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", srv.port()).ok());
  auto r = client.Post("/echo", std::string(64, 'x'));
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->status, 413);
  client.Close();
  srv.Shutdown();
}

TEST(HttpServerTest, ChunkedUploadGets501) {
  HttpServer srv(TestOptions());
  ASSERT_TRUE(srv.Start().ok());
  BlockingHttpClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", srv.port()).ok());
  auto r = client.Raw(
      "POST /x HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"
      "5\r\nhello\r\n0\r\n\r\n");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->status, 501);
  client.Close();
  srv.Shutdown();
}

TEST(HttpServerTest, IdleConnectionsAreSweptByTheTimerWheel) {
  HttpServer::Options options = TestOptions();
  options.idle_timeout_ms = 100;
  HttpServer srv(options);
  ASSERT_TRUE(srv.Start().ok());

  BlockingHttpClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", srv.port()).ok());
  // Give the sweep a few wheel ticks past the timeout.
  for (int i = 0; i < 100 && srv.active_connections() > 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  EXPECT_EQ(srv.active_connections(), 0u);
  srv.Shutdown();
}

TEST(HttpServerTest, AsyncHandlerRespondsFromAnotherThread) {
  HttpServer srv(TestOptions());
  std::vector<std::thread> workers;
  srv.Route("GET", "/slow", [&](const HttpRequest&,
                                const HttpServer::ResponseWriter& w) {
    workers.emplace_back([w] {
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
      w.Send(HttpResponse::Json(200, "\"late\""));
    });
  });
  ASSERT_TRUE(srv.Start().ok());

  BlockingHttpClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", srv.port()).ok());
  auto r = client.Get("/slow");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->body, "\"late\"");
  client.Close();
  srv.Shutdown();
  for (auto& t : workers) t.join();
}

TEST(HttpServerTest, ShutdownDrainsInFlightResponses) {
  HttpServer srv(TestOptions());
  std::atomic<bool> release{false};
  std::vector<std::thread> workers;
  srv.Route("GET", "/held", [&](const HttpRequest&,
                                const HttpServer::ResponseWriter& w) {
    workers.emplace_back([&, w] {
      while (!release.load()) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
      w.Send(HttpResponse::Json(200, "\"drained\""));
    });
  });
  ASSERT_TRUE(srv.Start().ok());
  int port = srv.port();

  // The client round-trips on its own thread while we shut down.
  std::thread client_thread([&] {
    BlockingHttpClient client;
    ASSERT_TRUE(client.Connect("127.0.0.1", port).ok());
    auto r = client.Get("/held");
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_EQ(r->status, 200);
    EXPECT_EQ(r->body, "\"drained\"");
  });
  while (srv.requests_in_flight() == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  // New connections are refused once drain starts, but the held request
  // must still complete and flush before Shutdown returns.
  std::thread releaser([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    release.store(true);
  });
  srv.Shutdown();
  EXPECT_EQ(srv.requests_in_flight(), 0u);
  client_thread.join();
  releaser.join();
  for (auto& t : workers) t.join();

  BlockingHttpClient refused;
  EXPECT_FALSE(refused.Connect("127.0.0.1", port).ok());
}

TEST(HttpServerTest, ShutdownIsIdempotent) {
  HttpServer srv(TestOptions());
  ASSERT_TRUE(srv.Start().ok());
  srv.Shutdown();
  srv.Shutdown();  // second call must be a no-op, not a crash
}

}  // namespace
}  // namespace server
}  // namespace ganswer
