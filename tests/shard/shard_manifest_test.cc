// Property suite for the sharded-KB build step (store/sharded_kb.h): the
// partition → write N snapshots → reload round trip must lose nothing and
// invent nothing. Over random graphs, seeds and shard counts, raw and
// compressed containers:
//
//   * the union of owned triples across reloaded shards equals the
//     original graph's triple set exactly — no drops, no duplicates
//     (ownership is unambiguous even though shard graphs overlap);
//   * every shard replays the full term dictionary, so TermIds are global;
//   * the halo closure is a superset of the owned set and contains every
//     rdfs:subClassOf triple;
//   * the manifest rejects corruption (any flipped byte) and records
//     per-shard fingerprints matching the written snapshot files.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "nlp/lexicon.h"
#include "paraphrase/paraphrase_dictionary.h"
#include "prop/prop_support.h"
#include "rdf/rdf_graph.h"
#include "store/sharded_kb.h"
#include "store/snapshot.h"
#include "test_support.h"

namespace ganswer {
namespace testing {
namespace {

using store::ShardManifest;
using store::ShardSpec;

/// The graph's triples in the text form BuildRandomGraph records, so shard
/// contents compare against the generator's ground-truth list.
std::vector<RawTriple> TextTriples(const rdf::RdfGraph& g,
                                   const std::vector<rdf::Triple>& triples) {
  std::vector<RawTriple> out;
  out.reserve(triples.size());
  for (const rdf::Triple& t : triples) {
    RawTriple raw;
    raw.s = g.dict().text(t.subject);
    raw.p = g.dict().text(t.predicate);
    raw.o = g.dict().text(t.object);
    raw.object_kind = g.dict().kind(t.object);
    out.push_back(std::move(raw));
  }
  return out;
}

std::vector<rdf::Triple> AllTriples(const rdf::RdfGraph& g) {
  std::vector<rdf::Triple> out;
  for (rdf::TermId v = 0; v < g.dict().size(); ++v) {
    for (const rdf::Edge& e : g.OutEdges(v)) {
      out.push_back({v, e.predicate, e.neighbor});
    }
  }
  return out;
}

TEST(ShardOfTest, DeterministicAndInRange) {
  for (uint32_t n : {1u, 2u, 3u, 5u, 64u}) {
    for (rdf::TermId id = 0; id < 1000; ++id) {
      uint32_t shard = store::ShardOf(id, n);
      EXPECT_LT(shard, n);
      EXPECT_EQ(shard, store::ShardOf(id, n)) << "must be a pure function";
    }
  }
  // The mix actually spreads consecutive ids (no shard starves).
  std::vector<size_t> counts(4, 0);
  for (rdf::TermId id = 0; id < 4000; ++id) counts[store::ShardOf(id, 4)]++;
  for (size_t c : counts) EXPECT_GT(c, 500u);
}

// The core recoverability property, through the on-disk container: write
// shards (raw and compressed alternating by seed), reload each snapshot,
// and reassemble the original graph from owned triples alone.
TEST(ShardManifestTest, OwnedTriplesRoundTripThroughSnapshots) {
  ForEachSeed(9100, 24, [](uint64_t seed) {
    Rng rng(seed);
    RandomGraphOptions gopts;
    gopts.num_vertices = 8 + rng.Next(8);
    gopts.num_predicates = 2 + rng.Next(3);
    gopts.num_triples = 20 + rng.Next(30);
    gopts.literal_rate = 0.15;
    RandomGraphData data = BuildRandomGraph(seed * 17 + 5, gopts);
    std::vector<RawTriple> want =
        TextTriples(data.graph, AllTriples(data.graph));
    std::sort(want.begin(), want.end());

    const uint32_t shard_counts[] = {1, 2, 3, 5};
    const uint32_t num_shards = shard_counts[seed % 4];
    ShardSpec spec;
    spec.num_shards = num_shards;
    spec.halo_hops = 1 + static_cast<uint32_t>(rng.Next(6));
    store::SnapshotWriteOptions write_options;
    write_options.compress = (seed % 2) == 1;

    nlp::Lexicon lexicon;
    paraphrase::ParaphraseDictionary dict(&lexicon);
    const std::string base = "shard_manifest_rt_" + std::to_string(seed) +
                             "_" + std::to_string(num_shards) + ".snap";
    auto manifest =
        store::WriteShardedKb(data.graph, dict, base, spec, write_options);
    ASSERT_TRUE(manifest.ok()) << manifest.status().ToString();
    ASSERT_EQ(manifest->num_shards, num_shards);
    ASSERT_EQ(manifest->halo_hops, spec.halo_hops);
    ASSERT_EQ(manifest->shards.size(), num_shards);

    auto reread = store::ReadShardManifest(store::ShardManifestPath(base));
    ASSERT_TRUE(reread.ok()) << reread.status().ToString();
    ASSERT_EQ(reread->num_shards, num_shards);

    std::vector<RawTriple> reassembled;
    uint64_t owned_sum = 0;
    for (uint32_t shard = 0; shard < num_shards; ++shard) {
      const store::ShardInfo& info = reread->shards[shard];
      EXPECT_EQ(info.path, store::ShardSnapshotPath(base, shard, num_shards));
      nlp::Lexicon shard_lexicon;
      auto snapshot = store::ReadSnapshotFile(info.path, &shard_lexicon);
      ASSERT_TRUE(snapshot.ok()) << snapshot.status().ToString();
      EXPECT_EQ(snapshot->fingerprint, info.fingerprint)
          << "manifest fingerprint must match the written snapshot";
      const rdf::RdfGraph& sg = *snapshot->graph;
      // Global TermIds: the shard dictionary replays the full one.
      ASSERT_EQ(sg.dict().size(), data.graph.dict().size());
      for (rdf::TermId id = 0; id < sg.dict().size(); ++id) {
        ASSERT_EQ(sg.dict().text(id), data.graph.dict().text(id));
      }
      std::vector<rdf::Triple> owned =
          store::OwnedTriples(sg, shard, num_shards);
      EXPECT_EQ(owned.size(), info.owned_triples);
      EXPECT_EQ(sg.NumTriples(), info.total_triples);
      EXPECT_GE(info.total_triples, info.owned_triples)
          << "halo closure must be a superset of the owned set";
      owned_sum += owned.size();
      for (const rdf::Triple& t : owned) {
        EXPECT_EQ(store::ShardOf(t.subject, num_shards), shard);
      }
      std::vector<RawTriple> owned_text = TextTriples(sg, owned);
      reassembled.insert(reassembled.end(), owned_text.begin(),
                         owned_text.end());
      std::remove(info.path.c_str());
    }
    std::remove(store::ShardManifestPath(base).c_str());

    // No duplicates: each triple owned exactly once across all shards.
    EXPECT_EQ(owned_sum, reassembled.size());
    std::sort(reassembled.begin(), reassembled.end());
    EXPECT_TRUE(std::adjacent_find(reassembled.begin(), reassembled.end()) ==
                reassembled.end())
        << "two shards claim ownership of the same triple";
    EXPECT_EQ(reassembled, want) << "union of owned triples must reproduce "
                                    "the original graph exactly";
  });
}

// Every shard graph must embed the full class hierarchy and its own halo:
// matching does type checks and multi-hop walks locally.
TEST(ShardManifestTest, ShardGraphsReplicateSchemaAndContainOwned) {
  ForEachSeed(9200, 12, [](uint64_t seed) {
    RandomGraphOptions gopts;
    gopts.num_vertices = 12;
    gopts.num_triples = 40;
    gopts.type_rate = 0.5;
    RandomGraphData data = BuildRandomGraph(seed, gopts);
    // Add explicit subclass triples to a copy (BuildRandomGraph does not
    // emit them).
    rdf::RdfGraph g;
    for (const RawTriple& t : data.triples) {
      g.AddTriple(t.s, t.p, t.o, t.object_kind);
    }
    g.AddTriple("C0", std::string(rdf::kSubClassOfPredicate), "C1",
                rdf::TermKind::kIri);
    g.AddTriple("C1", std::string(rdf::kSubClassOfPredicate), "C2",
                rdf::TermKind::kIri);
    ASSERT_TRUE(g.Finalize().ok());

    ShardSpec spec;
    spec.num_shards = 3;
    spec.halo_hops = 2;
    auto shards = store::BuildShardGraphs(g, spec);
    ASSERT_TRUE(shards.ok()) << shards.status().ToString();
    ASSERT_EQ(shards->size(), 3u);

    const auto subclass = g.Find(std::string(rdf::kSubClassOfPredicate));
    ASSERT_TRUE(subclass.has_value());
    for (uint32_t shard = 0; shard < 3; ++shard) {
      const rdf::RdfGraph& sg = (*shards)[shard];
      // Subclass triples replicate everywhere.
      size_t subclass_edges = 0;
      for (rdf::TermId v = 0; v < sg.dict().size(); ++v) {
        for (const rdf::Edge& e : sg.OutEdges(v)) {
          if (e.predicate == *subclass) ++subclass_edges;
        }
      }
      EXPECT_EQ(subclass_edges, 2u) << "shard " << shard;
      // Owned triples of the full graph all appear in the shard graph.
      for (const rdf::Triple& t : AllTriples(g)) {
        if (store::ShardOf(t.subject, 3) != shard) continue;
        bool found = false;
        for (const rdf::Edge& e : sg.OutEdges(t.subject)) {
          if (e.predicate == t.predicate && e.neighbor == t.object) {
            found = true;
          }
        }
        EXPECT_TRUE(found) << "owned triple missing from shard " << shard;
      }
    }
  });
}

TEST(ShardManifestTest, CorruptManifestIsRejected) {
  RandomGraphData data = BuildRandomGraph(77);
  nlp::Lexicon lexicon;
  paraphrase::ParaphraseDictionary dict(&lexicon);
  ShardSpec spec;
  spec.num_shards = 2;
  const std::string base = "shard_manifest_corrupt.snap";
  auto manifest = store::WriteShardedKb(data.graph, dict, base, spec);
  ASSERT_TRUE(manifest.ok()) << manifest.status().ToString();
  const std::string path = store::ShardManifestPath(base);

  std::string bytes;
  {
    std::ifstream in(path, std::ios::binary);
    bytes.assign(std::istreambuf_iterator<char>(in),
                 std::istreambuf_iterator<char>());
  }
  ASSERT_FALSE(bytes.empty());
  // Flip one byte at a spread of offsets: header, body and CRC corruption
  // must all be caught (CRC covers everything before it).
  for (size_t offset : {size_t{0}, bytes.size() / 3, bytes.size() / 2,
                        bytes.size() - 1}) {
    std::string mutated = bytes;
    mutated[offset] ^= 0x5a;
    {
      std::ofstream out(path, std::ios::binary | std::ios::trunc);
      out.write(mutated.data(),
                static_cast<std::streamsize>(mutated.size()));
    }
    auto bad = store::ReadShardManifest(path);
    EXPECT_FALSE(bad.ok()) << "flipped byte at " << offset << " accepted";
  }
  // Truncation is rejected too.
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size() / 2));
  }
  EXPECT_FALSE(store::ReadShardManifest(path).ok());

  for (uint32_t shard = 0; shard < 2; ++shard) {
    std::remove(store::ShardSnapshotPath(base, shard, 2).c_str());
  }
  std::remove(path.c_str());
}

TEST(ShardManifestTest, RejectsBadSpecs) {
  RandomGraphData data = BuildRandomGraph(5);
  ShardSpec spec;
  spec.num_shards = 0;
  EXPECT_FALSE(store::BuildShardGraphs(data.graph, spec).ok());
  spec.num_shards = 100000;
  EXPECT_FALSE(store::BuildShardGraphs(data.graph, spec).ok());
  rdf::RdfGraph unfinalized;
  unfinalized.AddTriple("a", "p", "b", rdf::TermKind::kIri);
  spec.num_shards = 2;
  EXPECT_FALSE(store::BuildShardGraphs(unfinalized, spec).ok());
}

}  // namespace
}  // namespace testing
}  // namespace ganswer
