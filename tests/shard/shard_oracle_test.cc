// The sharded-vs-single differential oracle: scatter-gather over
// halo-replicated shards must reproduce the single-snapshot matcher's
// answers exactly.
//
// Three layers, increasingly end-to-end:
//
//   1. In-process: BuildShardGraphs + per-shard TopKMatcher (exactly the
//      worker's matcher configuration) + MergeShardTopK vs one TopKMatcher
//      over the full graph — 40 random seeds, shard counts {1,2,3,5},
//      halo set to the *tight* bound reach + L + 1, so the test also pins
//      that the documented exactness condition is not off by one.
//   2. Over the wire: real ShardWorkers serving written shard snapshots,
//      ShardClient::ScatterMatch through the binary RPC, same comparison;
//      plus ScatterSparql union semantics vs the full-graph SparqlEngine.
//   3. Full service: a sharded QaService (router + N workers) vs an
//      unsharded one over the same snapshot, comparing cached /answer
//      response bodies byte for byte across a generated gold workload.
//
// Score note: a shard scores a match as the same sum of log-confidences,
// but possibly accumulated in a different expansion order, so raw doubles
// can differ in the last ulp. Layers 1-2 therefore compare scores with a
// 1e-9 tolerance and assignments exactly (block-wise within near-ties, as
// the match oracle does); layer 3 compares serving bytes, where %.6g
// formatting makes ulp noise invisible.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "match/query_graph.h"
#include "match/top_k_matcher.h"
#include "nlp/lexicon.h"
#include "paraphrase/paraphrase_dictionary.h"
#include "prop/prop_support.h"
#include "rdf/graph_stats.h"
#include "rdf/signature_index.h"
#include "rdf/sparql_engine.h"
#include "server/http_client.h"
#include "server/qa_service.h"
#include "server/shard_client.h"
#include "server/shard_worker.h"
#include "store/sharded_kb.h"
#include "store/snapshot.h"
#include "test_support.h"

namespace ganswer {
namespace testing {
namespace {

using match::Match;
using match::QueryEdge;
using match::QueryGraph;
using match::QueryVertex;

constexpr double kScoreTol = 1e-9;

std::vector<rdf::TermId> PresentTerms(const rdf::RdfGraph& g,
                                      const char* prefix, size_t count) {
  std::vector<rdf::TermId> out;
  for (size_t i = 0; i < count; ++i) {
    auto id = g.Find(std::string(prefix) + std::to_string(i));
    if (id.has_value()) out.push_back(*id);
  }
  return out;
}

/// Random *connected* query graph over the generated vocabulary — the
/// shape scatter serves (the router falls back locally for disconnected
/// queries). Mirrors the match-oracle generator: entity lists, classes,
/// wildcards, single predicates and 2-step paths, path/triangle topology.
QueryGraph RandomQueryGraph(Rng& rng, const rdf::RdfGraph& g,
                            const RandomGraphOptions& gopts) {
  QueryGraph query;
  const double confs[] = {0.9, 0.8, 0.7, 0.5, 0.4};
  const std::vector<rdf::TermId> vertices =
      PresentTerms(g, "v", gopts.num_vertices);
  const std::vector<rdf::TermId> predicates =
      PresentTerms(g, "p", gopts.num_predicates);
  const std::vector<rdf::TermId> classes =
      PresentTerms(g, "C", gopts.num_classes);

  auto make_vertex = [&](bool allow_wildcard) {
    QueryVertex v;
    if (allow_wildcard && rng.Chance(0.35)) {
      v.wildcard = true;
      return v;
    }
    if (!classes.empty() && rng.Chance(0.3)) {
      linking::LinkCandidate c;
      c.vertex = rng.Pick(classes);
      c.is_class = true;
      c.confidence = confs[rng.Next(5)];
      v.candidates.push_back(c);
      return v;
    }
    size_t n = 1 + rng.Next(3);
    for (size_t i = 0; i < n; ++i) {
      linking::LinkCandidate c;
      c.vertex = rng.Pick(vertices);
      c.confidence = confs[rng.Next(5)];
      v.candidates.push_back(c);
    }
    return v;
  };
  auto make_edge = [&](int from, int to) {
    QueryEdge e;
    e.from = from;
    e.to = to;
    if (rng.Chance(0.12)) {
      e.wildcard = true;
      return e;
    }
    size_t n = 1 + rng.Next(2);
    for (size_t i = 0; i < n; ++i) {
      paraphrase::ParaphraseEntry entry;
      rdf::TermId p = rng.Pick(predicates);
      if (rng.Chance(0.25)) {
        rdf::TermId p2 = rng.Pick(predicates);
        entry.path.steps = {{p, rng.Chance(0.5)}, {p2, rng.Chance(0.5)}};
      } else {
        entry.path.steps = {{p, true}};
      }
      entry.confidence = confs[rng.Next(5)];
      e.candidates.push_back(entry);
    }
    return e;
  };

  size_t num_vertices = 2 + rng.Next(2);
  query.vertices.push_back(make_vertex(/*allow_wildcard=*/false));
  for (size_t i = 1; i < num_vertices; ++i) {
    query.vertices.push_back(make_vertex(/*allow_wildcard=*/true));
  }
  for (size_t i = 1; i < num_vertices; ++i) {
    int from = static_cast<int>(i - 1), to = static_cast<int>(i);
    if (rng.Chance(0.5)) std::swap(from, to);
    query.edges.push_back(make_edge(from, to));
  }
  if (num_vertices == 3 && rng.Chance(0.3)) {
    query.edges.push_back(make_edge(2, 0));
  }
  return query;
}

/// The tight halo for \p query: reach + L + 1 (see store/sharded_kb.h).
uint32_t TightHalo(const QueryGraph& query) {
  uint64_t reach = 0, longest = 0;
  for (const QueryEdge& e : query.edges) {
    uint64_t len = 1;
    for (const paraphrase::ParaphraseEntry& c : e.candidates) {
      len = std::max<uint64_t>(len, c.path.steps.size());
    }
    reach += len;
    longest = std::max(longest, len);
  }
  return static_cast<uint32_t>(reach + longest + 1);
}

/// Exactly the matcher configuration ShardWorker::Evaluate builds per
/// request: defaults + the graph's own signature index and statistics,
/// serial execution.
std::vector<Match> WorkerTopK(const rdf::RdfGraph& g, const QueryGraph& query,
                              size_t k) {
  rdf::SignatureIndex signatures(g);
  rdf::GraphStats stats = rdf::GraphStats::Compute(g);
  match::TopKMatcher::Options options;
  options.k = k;
  options.signatures = &signatures;
  options.stats = &stats;
  options.exec.threads = 1;
  auto got = match::TopKMatcher(&g, options).FindTopK(query);
  if (!got.ok()) ADD_FAILURE() << got.status().ToString();
  return got.ok() ? *got : std::vector<Match>{};
}

/// Rank-by-rank equality with ulp-tolerant scores: assignments compare as
/// sets within each near-equal-score block (cross-shard accumulation order
/// can perturb the last ulp, which may reorder exact ties).
void ExpectSameTopK(const std::vector<Match>& got,
                    const std::vector<Match>& want) {
  ASSERT_EQ(got.size(), want.size());
  size_t i = 0;
  while (i < got.size()) {
    size_t j = i;
    while (j < got.size() &&
           std::abs(want[j].score - want[i].score) <= kScoreTol) {
      ++j;
    }
    std::vector<std::vector<rdf::TermId>> ga, wa;
    for (size_t t = i; t < j; ++t) {
      EXPECT_NEAR(got[t].score, want[t].score, kScoreTol) << "rank " << t;
      ga.push_back(got[t].assignment);
      wa.push_back(want[t].assignment);
    }
    std::sort(ga.begin(), ga.end());
    std::sort(wa.begin(), wa.end());
    EXPECT_EQ(ga, wa) << "assignment block starting at rank " << i;
    i = j;
  }
}

// Layer 1: 40 seeds x shard counts {1,2,3,5}, halo at the tight bound.
TEST(ShardOracleTest, ScatterEqualsSingleSnapshotMatcher) {
  ForEachSeed(9300, 40, [](uint64_t seed) {
    Rng rng(seed);
    RandomGraphOptions gopts;
    gopts.num_vertices = 7 + rng.Next(5);
    gopts.num_predicates = 2 + rng.Next(2);
    gopts.num_triples = 16 + rng.Next(16);
    RandomGraphData data = BuildRandomGraph(seed * 31 + 3, gopts);
    QueryGraph query = RandomQueryGraph(rng, data.graph, gopts);
    size_t k = 1 + rng.Next(8);

    std::vector<Match> single = WorkerTopK(data.graph, query, k);

    for (uint32_t num_shards : {1u, 2u, 3u, 5u}) {
      SCOPED_TRACE("num_shards=" + std::to_string(num_shards));
      store::ShardSpec spec;
      spec.num_shards = num_shards;
      spec.halo_hops = TightHalo(query);
      auto shards = store::BuildShardGraphs(data.graph, spec);
      ASSERT_TRUE(shards.ok()) << shards.status().ToString();
      std::vector<std::vector<Match>> per_shard;
      for (const rdf::RdfGraph& sg : *shards) {
        per_shard.push_back(WorkerTopK(sg, query, k));
      }
      std::vector<Match> merged = match::MergeShardTopK(per_shard, k);
      ExpectSameTopK(merged, single);
    }
  });
}

// Layer 2: the same oracle through written snapshots, live ShardWorkers
// and the binary RPC — what the router actually executes.
TEST(ShardOracleTest, RpcScatterEqualsSingleSnapshotMatcher) {
  ForEachSeed(9400, 6, [](uint64_t seed) {
    Rng rng(seed);
    RandomGraphOptions gopts;
    gopts.num_vertices = 9;
    gopts.num_predicates = 3;
    gopts.num_triples = 30;
    RandomGraphData data = BuildRandomGraph(seed * 13 + 1, gopts);
    QueryGraph query = RandomQueryGraph(rng, data.graph, gopts);
    size_t k = 1 + rng.Next(8);
    const uint32_t num_shards = 3;

    store::ShardSpec spec;
    spec.num_shards = num_shards;
    spec.halo_hops = TightHalo(query);
    nlp::Lexicon lexicon;
    paraphrase::ParaphraseDictionary dict(&lexicon);
    const std::string base = "shard_oracle_rpc_" + std::to_string(seed) +
                             ".snap";
    auto manifest = store::WriteShardedKb(data.graph, dict, base, spec);
    ASSERT_TRUE(manifest.ok()) << manifest.status().ToString();

    std::vector<std::unique_ptr<server::ShardWorker>> workers;
    server::ShardClient::Options client_options;
    for (uint32_t shard = 0; shard < num_shards; ++shard) {
      server::ShardWorker::Options worker_options;
      worker_options.snapshot_path = manifest->shards[shard].path;
      worker_options.shard_id = shard;
      worker_options.num_shards = num_shards;
      worker_options.halo_hops = manifest->halo_hops;
      auto worker =
          std::make_unique<server::ShardWorker>(std::move(worker_options));
      ASSERT_TRUE(worker->Start().ok());
      client_options.endpoints.push_back({"127.0.0.1", worker->port()});
      workers.push_back(std::move(worker));
    }
    client_options.halo_hops = manifest->halo_hops;
    server::ShardClient client(std::move(client_options));

    // Ping: every worker reports the manifest's identity.
    for (uint32_t shard = 0; shard < num_shards; ++shard) {
      auto ping = client.Ping(shard);
      ASSERT_TRUE(ping.ok()) << ping.status().ToString();
      EXPECT_EQ(ping->shard_id, shard);
      EXPECT_EQ(ping->num_shards, num_shards);
      EXPECT_EQ(ping->fingerprint, manifest->shards[shard].fingerprint);
      EXPECT_EQ(ping->total_triples, manifest->shards[shard].total_triples);
    }

    ASSERT_TRUE(client.ShouldScatter(query))
        << "tight-halo query must be scatter-safe";
    auto outcome = client.ScatterMatch(query, k);
    ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
    EXPECT_EQ(outcome->ok_shards, num_shards);
    EXPECT_EQ(outcome->failed_shards, 0u);
    EXPECT_FALSE(outcome->partial());

    std::vector<Match> single = WorkerTopK(data.graph, query, k);
    ExpectSameTopK(outcome->matches, single);

    // ScatterSparql: union of per-shard rows == full-graph evaluation.
    auto p0 = data.graph.Find("p0");
    if (p0.has_value()) {
      rdf::SparqlEngine engine(data.graph);
      auto full = engine.ExecuteText(
          "SELECT ?x ?y WHERE { ?x <p0> ?y }");
      ASSERT_TRUE(full.ok()) << full.status().ToString();
      auto scattered = client.ScatterSparql(
          "SELECT ?x ?y WHERE { ?x <p0> ?y }");
      ASSERT_TRUE(scattered.ok()) << scattered.status().ToString();
      EXPECT_FALSE(scattered->partial());
      std::vector<std::vector<rdf::TermId>> want = full->rows;
      std::sort(want.begin(), want.end());
      want.erase(std::unique(want.begin(), want.end()), want.end());
      EXPECT_EQ(scattered->result.rows, want);
      EXPECT_EQ(scattered->result.var_names, full->var_names);
    }

    for (auto& worker : workers) worker->Shutdown();
    for (uint32_t shard = 0; shard < num_shards; ++shard) {
      std::remove(manifest->shards[shard].path.c_str());
    }
    std::remove(store::ShardManifestPath(base).c_str());
  });
}

// Layer 3: sharded QaService vs unsharded QaService over the same
// snapshot and gold workload. The second (cached) response has zeroed
// stage timers, so the bodies must be byte-identical — ids, scores,
// order, SPARQL, everything.
TEST(ShardOracleTest, ShardedServiceServesByteIdenticalAnswers) {
  const SharedWorld& world = World();
  const std::string base = "shard_oracle_e2e.snap";
  ASSERT_TRUE(
      store::WriteSnapshotFile(world.kb.graph, *world.verified, base).ok());
  store::ShardSpec spec;
  spec.num_shards = 3;
  auto manifest =
      store::WriteShardedKb(world.kb.graph, *world.verified, base, spec);
  ASSERT_TRUE(manifest.ok()) << manifest.status().ToString();

  std::vector<std::unique_ptr<server::ShardWorker>> workers;
  std::vector<server::ShardClient::Endpoint> endpoints;
  for (uint32_t shard = 0; shard < spec.num_shards; ++shard) {
    server::ShardWorker::Options worker_options;
    worker_options.snapshot_path = manifest->shards[shard].path;
    worker_options.shard_id = shard;
    worker_options.num_shards = spec.num_shards;
    worker_options.halo_hops = manifest->halo_hops;
    auto worker =
        std::make_unique<server::ShardWorker>(std::move(worker_options));
    ASSERT_TRUE(worker->Start().ok());
    endpoints.push_back({"127.0.0.1", worker->port()});
    workers.push_back(std::move(worker));
  }

  server::QaService::Options sharded_options;
  sharded_options.snapshot_path = base;
  sharded_options.port = 0;
  sharded_options.threads = 2;
  sharded_options.shard_endpoints = endpoints;
  sharded_options.shard_halo_hops = manifest->halo_hops;
  server::QaService sharded(sharded_options);
  ASSERT_TRUE(sharded.Start().ok());

  server::QaService::Options single_options;
  single_options.snapshot_path = base;
  single_options.port = 0;
  single_options.threads = 2;
  server::QaService single(single_options);
  ASSERT_TRUE(single.Start().ok());

  server::BlockingHttpClient sharded_client, single_client;
  ASSERT_TRUE(sharded_client.Connect("127.0.0.1", sharded.port()).ok());
  ASSERT_TRUE(single_client.Connect("127.0.0.1", single.port()).ok());

  size_t compared = 0;
  for (const auto& gold : world.workload) {
    if (compared >= 24) break;
    ++compared;
    const std::string body = "{\"question\": \"" + gold.text + "\"}";
    // First request computes (scattering on the sharded side) and fills
    // the cache; the second is served from the cache with zeroed timers —
    // those bytes must agree exactly.
    for (int round = 0; round < 2; ++round) {
      auto from_sharded = sharded_client.Post("/answer", body);
      auto from_single = single_client.Post("/answer", body);
      ASSERT_TRUE(from_sharded.ok()) << from_sharded.status().ToString();
      ASSERT_TRUE(from_single.ok()) << from_single.status().ToString();
      ASSERT_EQ(from_sharded->status, 200);
      ASSERT_EQ(from_single->status, 200);
      if (round == 1) {
        EXPECT_EQ(from_sharded->body, from_single->body)
            << "question: " << gold.text;
      }
    }
  }
  ASSERT_GT(compared, 0u);

  // The oracle is only meaningful if scatter actually served queries.
  ASSERT_NE(sharded.shard_client(), nullptr);
  EXPECT_GT(sharded.shard_client()->scattered_calls(), 0u)
      << "no query scattered — the differential would be vacuous";
  EXPECT_EQ(sharded.partial_answers(), 0u);
  for (size_t i = 0; i < endpoints.size(); ++i) {
    server::ShardClient::ShardCounters counters =
        sharded.shard_client()->counters(i);
    EXPECT_GT(counters.requests, 0u);
    EXPECT_EQ(counters.errors, 0u);
    EXPECT_EQ(counters.timeouts, 0u);
  }

  sharded.Shutdown();
  single.Shutdown();
  for (auto& worker : workers) worker->Shutdown();
  for (uint32_t shard = 0; shard < spec.num_shards; ++shard) {
    std::remove(manifest->shards[shard].path.c_str());
  }
  std::remove(store::ShardManifestPath(base).c_str());
  std::remove(base.c_str());
}

}  // namespace
}  // namespace testing
}  // namespace ganswer
