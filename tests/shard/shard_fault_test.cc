// Fault-injection suite for scatter-gather serving: shard workers that
// drop responses, delay them past the router's timeout, or truncate them
// mid-frame must degrade the router to partial (or locally-served) answers
// — never to hangs, crashes or 5xx. Each failure mode must also be
// visible: `"partial":true` in the /answer body, per-shard error/timeout
// counters in /stats, and partial answers kept out of the question cache.
//
// Faults are deterministic (seeded per worker), so every run exercises
// the same drop/delay/truncate sequence.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/timer.h"
#include "server/http_client.h"
#include "server/qa_service.h"
#include "server/shard_client.h"
#include "server/shard_worker.h"
#include "store/sharded_kb.h"
#include "store/snapshot.h"
#include "test_support.h"

namespace ganswer {
namespace testing {
namespace {

/// One router + N fault-injected workers over a freshly sharded copy of
/// the shared demo world. Files are unique per cluster name so parallel
/// ctest invocations never collide.
class Cluster {
 public:
  Cluster(const std::string& name,
          const std::vector<server::ShardWorker::FaultInjection>& faults,
          int timeout_ms, size_t cache_capacity) {
    Setup(name, faults, timeout_ms, cache_capacity);
  }

  /// ASSERT-compatible (void) setup; check ok() before using the cluster.
  void Setup(const std::string& name,
             const std::vector<server::ShardWorker::FaultInjection>& faults,
             int timeout_ms, size_t cache_capacity) {
    const SharedWorld& world = World();
    base_ = "shard_fault_" + name + ".snap";
    Status written =
        store::WriteSnapshotFile(world.kb.graph, *world.verified, base_);
    ASSERT_TRUE(written.ok()) << written.ToString();
    store::ShardSpec spec;
    spec.num_shards = static_cast<uint32_t>(faults.size());
    auto manifest =
        store::WriteShardedKb(world.kb.graph, *world.verified, base_, spec);
    ASSERT_TRUE(manifest.ok()) << manifest.status().ToString();
    manifest_ = *manifest;

    server::QaService::Options options;
    options.snapshot_path = base_;
    options.port = 0;
    options.threads = 2;
    options.question_cache_capacity = cache_capacity;
    options.shard_timeout_ms = timeout_ms;
    options.shard_halo_hops = manifest_.halo_hops;
    for (uint32_t shard = 0; shard < manifest_.num_shards; ++shard) {
      server::ShardWorker::Options worker_options;
      worker_options.snapshot_path = manifest_.shards[shard].path;
      worker_options.shard_id = shard;
      worker_options.num_shards = manifest_.num_shards;
      worker_options.halo_hops = manifest_.halo_hops;
      worker_options.fault = faults[shard];
      auto worker =
          std::make_unique<server::ShardWorker>(std::move(worker_options));
      ASSERT_TRUE(worker->Start().ok());
      options.shard_endpoints.push_back({"127.0.0.1", worker->port()});
      workers_.push_back(std::move(worker));
    }
    service_ = std::make_unique<server::QaService>(options);
    ASSERT_TRUE(service_->Start().ok());
    ok_ = true;
  }

  bool ok() const { return ok_; }

  ~Cluster() {
    if (service_) service_->Shutdown();
    for (auto& worker : workers_) worker->Shutdown();
    for (const store::ShardInfo& shard : manifest_.shards) {
      std::remove(shard.path.c_str());
    }
    std::remove(store::ShardManifestPath(base_).c_str());
    std::remove(base_.c_str());
  }

  server::QaService& service() { return *service_; }
  server::ShardClient& client() { return *service_->shard_client(); }
  server::ShardWorker& worker(size_t i) { return *workers_[i]; }

  /// POSTs /answer; every response must be HTTP 200 no matter the faults.
  std::string Ask(server::BlockingHttpClient& http, const std::string& q) {
    auto r = http.Post("/answer", "{\"question\": \"" + q + "\"}");
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    if (!r.ok()) return "";
    EXPECT_EQ(r->status, 200) << r->body;
    return r->body;
  }

  /// Asks workload questions until one actually scatters AND comes back
  /// partial; returns its body. The demo workload has plenty of
  /// scatter-safe questions, so running dry is a real failure.
  std::string AskUntilPartial(server::BlockingHttpClient& http) {
    for (const auto& gold : World().workload) {
      if (gold.is_ask) continue;
      uint64_t before = client().partial_results();
      std::string body = Ask(http, gold.text);
      if (client().partial_results() > before) {
        EXPECT_NE(body.find("\"partial\":true"), std::string::npos) << body;
        return body;
      }
    }
    ADD_FAILURE() << "no workload question produced a partial result";
    return "";
  }

 private:
  bool ok_ = false;
  std::string base_;
  store::ShardManifest manifest_;
  std::vector<std::unique_ptr<server::ShardWorker>> workers_;
  std::unique_ptr<server::QaService> service_;
};

server::ShardWorker::FaultInjection NoFault() { return {}; }

TEST(ShardFaultTest, DroppedShardYieldsPartialAnswer) {
  server::ShardWorker::FaultInjection drop;
  drop.drop_fraction = 1.0;
  Cluster cluster("drop", {NoFault(), drop, NoFault()},
                  /*timeout_ms=*/300, /*cache_capacity=*/0);
  ASSERT_TRUE(cluster.ok());
  server::BlockingHttpClient http;
  ASSERT_TRUE(http.Connect("127.0.0.1", cluster.service().port()).ok());

  cluster.AskUntilPartial(http);

  // The dropped shard shows up as a timeout (its response never arrives);
  // the healthy shards stay clean.
  EXPECT_GT(cluster.worker(1).faults_injected(), 0u);
  EXPECT_GT(cluster.client().counters(1).timeouts, 0u);
  EXPECT_EQ(cluster.client().counters(0).errors, 0u);
  EXPECT_EQ(cluster.client().counters(2).errors, 0u);
  EXPECT_GT(cluster.service().partial_answers(), 0u);

  // /stats exposes the whole picture for operators.
  auto stats = http.Get("/stats");
  ASSERT_TRUE(stats.ok());
  for (const char* key :
       {"\"shards\"", "\"scattered\"", "\"fallback_local\"",
        "\"partial_results\"", "\"partial_answers\"", "\"per_shard\"",
        "\"timeouts\"", "\"retries\""}) {
    EXPECT_NE(stats->body.find(key), std::string::npos)
        << "missing " << key << " in " << stats->body;
  }
}

TEST(ShardFaultTest, StragglerPastTimeoutIsAbandonedNotAwaited) {
  server::ShardWorker::FaultInjection straggle;
  straggle.delay_fraction = 1.0;
  straggle.delay_ms = 2000;  // far beyond the router's patience
  Cluster cluster("delay", {NoFault(), NoFault(), straggle},
                  /*timeout_ms=*/200, /*cache_capacity=*/0);
  ASSERT_TRUE(cluster.ok());
  server::BlockingHttpClient http;
  ASSERT_TRUE(http.Connect("127.0.0.1", cluster.service().port()).ok());

  WallTimer timer;
  cluster.AskUntilPartial(http);
  // The scatter deadline, not the straggler's 2s nap, bounds the request.
  EXPECT_LT(timer.ElapsedMillis(), 1800.0)
      << "router waited for a shard it should have abandoned";
  EXPECT_GT(cluster.client().counters(2).timeouts, 0u);
  EXPECT_GT(cluster.worker(2).faults_injected(), 0u);
}

TEST(ShardFaultTest, TruncatedFrameIsCountedAndRetried) {
  server::ShardWorker::FaultInjection truncate;
  truncate.truncate_fraction = 1.0;
  Cluster cluster("truncate", {truncate, NoFault(), NoFault()},
                  /*timeout_ms=*/500, /*cache_capacity=*/0);
  ASSERT_TRUE(cluster.ok());
  server::BlockingHttpClient http;
  ASSERT_TRUE(http.Connect("127.0.0.1", cluster.service().port()).ok());

  cluster.AskUntilPartial(http);

  // A truncated frame is a hard decode error; the router retries once on
  // a fresh connection (which truncates again) and then gives up on the
  // shard for this request.
  server::ShardClient::ShardCounters counters = cluster.client().counters(0);
  EXPECT_GT(counters.errors, 0u);
  EXPECT_GT(counters.retries, 0u);
  EXPECT_GT(cluster.worker(0).faults_injected(), 0u);
}

TEST(ShardFaultTest, AllShardsDownFallsBackToLocalExactAnswer) {
  server::ShardWorker::FaultInjection drop;
  drop.drop_fraction = 1.0;
  Cluster cluster("alldown", {drop, drop, drop},
                  /*timeout_ms=*/150, /*cache_capacity=*/0);
  ASSERT_TRUE(cluster.ok());
  server::BlockingHttpClient http;
  ASSERT_TRUE(http.Connect("127.0.0.1", cluster.service().port()).ok());

  // The router holds the full snapshot: with every shard dark it serves
  // the exact local answer, so this is NOT partial.
  std::string body =
      cluster.Ask(http, "Who is the spouse of Antonio_Banderas ?");
  EXPECT_NE(body.find("\"Melanie_Griffith\""), std::string::npos) << body;
  EXPECT_NE(body.find("\"partial\":false"), std::string::npos) << body;
  EXPECT_GT(cluster.client().fallback_calls(), 0u);
  EXPECT_EQ(cluster.service().partial_answers(), 0u);
}

TEST(ShardFaultTest, PartialAnswersAreNeverCached) {
  server::ShardWorker::FaultInjection drop;
  drop.drop_fraction = 1.0;
  Cluster cluster("nocache", {NoFault(), drop, NoFault()},
                  /*timeout_ms=*/300, /*cache_capacity=*/64);
  ASSERT_TRUE(cluster.ok());
  server::BlockingHttpClient http;
  ASSERT_TRUE(http.Connect("127.0.0.1", cluster.service().port()).ok());

  std::string first = cluster.AskUntilPartial(http);
  // Recover the question this body answered and ask it again: a partial
  // answer must not have been cached, so the repeat recomputes (and comes
  // back partial again) instead of serving a degraded answer as if final.
  for (const auto& gold : World().workload) {
    if (gold.is_ask) continue;
    if (first.find("\"question\":\"" + gold.text + "\"") ==
        std::string::npos) {
      continue;
    }
    uint64_t partials_before = cluster.client().partial_results();
    std::string second = cluster.Ask(http, gold.text);
    EXPECT_NE(second.find("\"cache_hit\":false"), std::string::npos)
        << second;
    EXPECT_NE(second.find("\"partial\":true"), std::string::npos) << second;
    EXPECT_GT(cluster.client().partial_results(), partials_before)
        << "repeat question must re-scatter, not hit the cache";
    return;
  }
  ADD_FAILURE() << "could not identify the partial question in: " << first;
}

// Mixed faults under concurrent load: every request completes (200), the
// service stays responsive afterwards, and nothing hangs or crashes. This
// is the "chaos" smoke over the whole scatter/fallback/partial machinery.
TEST(ShardFaultTest, MixedFaultHammeringNeverHangsTheRouter) {
  server::ShardWorker::FaultInjection flaky;
  flaky.drop_fraction = 0.3;
  flaky.truncate_fraction = 0.3;
  flaky.delay_fraction = 0.2;
  flaky.delay_ms = 600;
  flaky.seed = 42;
  server::ShardWorker::FaultInjection flakier = flaky;
  flakier.seed = 43;
  Cluster cluster("chaos", {flaky, NoFault(), flakier},
                  /*timeout_ms=*/120, /*cache_capacity=*/0);
  ASSERT_TRUE(cluster.ok());

  std::vector<std::string> questions;
  for (const auto& gold : World().workload) {
    if (!gold.is_ask) questions.push_back(gold.text);
    if (questions.size() >= 8) break;
  }
  ASSERT_FALSE(questions.empty());

  constexpr int kThreads = 2;
  constexpr int kPerThread = 20;
  std::vector<std::thread> threads;
  std::atomic<int> ok{0};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      server::BlockingHttpClient http;
      if (!http.Connect("127.0.0.1", cluster.service().port()).ok()) return;
      for (int i = 0; i < kPerThread; ++i) {
        auto r = http.Post(
            "/answer",
            "{\"question\": \"" +
                questions[static_cast<size_t>(t + i) % questions.size()] +
                "\"}");
        if (r.ok() && r->status == 200) ok.fetch_add(1);
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(ok.load(), kThreads * kPerThread)
      << "every request must complete with 200 despite shard chaos";

  // Still alive and serving after the storm.
  server::BlockingHttpClient http;
  ASSERT_TRUE(http.Connect("127.0.0.1", cluster.service().port()).ok());
  auto health = http.Get("/healthz");
  ASSERT_TRUE(health.ok());
  EXPECT_EQ(health->status, 200);
  EXPECT_GT(cluster.worker(0).faults_injected() +
                cluster.worker(2).faults_injected(),
            0u);
}

}  // namespace
}  // namespace testing
}  // namespace ganswer
