#include "linking/entity_linker.h"

#include <gtest/gtest.h>

#include "linking/entity_index.h"
#include "test_support.h"

namespace ganswer {
namespace linking {
namespace {

class EntityLinkerTest : public ::testing::Test {
 protected:
  EntityLinkerTest()
      : index_(ganswer::testing::World().kb.graph), linker_(&index_) {}

  std::vector<std::string> CandidateNames(const std::string& phrase) {
    std::vector<std::string> out;
    for (const LinkCandidate& c : linker_.Link(phrase)) {
      out.emplace_back(index_.graph().dict().text(c.vertex));
    }
    return out;
  }

  bool Has(const std::vector<std::string>& names, const std::string& name) {
    return std::find(names.begin(), names.end(), name) != names.end();
  }

  EntityIndex index_;
  EntityLinker linker_;
};

TEST_F(EntityLinkerTest, PhiladelphiaIsAmbiguousAcrossThreeEntities) {
  auto names = CandidateNames("Philadelphia");
  EXPECT_TRUE(Has(names, "Philadelphia"));
  EXPECT_TRUE(Has(names, "Philadelphia_(film)"));
  EXPECT_TRUE(Has(names, "Philadelphia_76ers"));
}

TEST_F(EntityLinkerTest, ExactMatchRanksAboveTokenMatch) {
  auto cands = linker_.Link("Philadelphia");
  ASSERT_GE(cands.size(), 2u);
  // The bare city (exact label match) outranks the film/team whose labels
  // only share tokens... but the film's stripped parenthetical also
  // normalizes to "philadelphia", so both can tie at full similarity. The
  // 76ers (partial token match) must rank strictly below.
  const auto& dict = index_.graph().dict();
  size_t seventysixers_rank = cands.size();
  size_t city_rank = cands.size();
  for (size_t i = 0; i < cands.size(); ++i) {
    if (dict.text(cands[i].vertex) == "Philadelphia_76ers") {
      seventysixers_rank = i;
    }
    if (dict.text(cands[i].vertex) == "Philadelphia") city_rank = i;
  }
  EXPECT_LT(city_rank, seventysixers_rank);
}

TEST_F(EntityLinkerTest, ActorLinksToClassAndEntity) {
  auto cands = linker_.Link("actor");
  bool saw_class = false, saw_book = false;
  const auto& dict = index_.graph().dict();
  for (const LinkCandidate& c : cands) {
    if (c.is_class && dict.text(c.vertex) == "Actor") saw_class = true;
    if (dict.text(c.vertex) == "An_Actor_Prepares") saw_book = true;
  }
  EXPECT_TRUE(saw_class) << "the class <Actor> must be a candidate";
  EXPECT_TRUE(saw_book) << "the paper's An_Actor_Prepares ambiguity";
}

TEST_F(EntityLinkerTest, PluralClassMentionLinksToClass) {
  auto cands = linker_.Link("movies");
  bool saw_film_class = false;
  for (const LinkCandidate& c : cands) {
    if (c.is_class && index_.graph().dict().text(c.vertex) == "Film") {
      saw_film_class = true;
    }
  }
  EXPECT_TRUE(saw_film_class);
}

TEST_F(EntityLinkerTest, MultiTokenNameResolves) {
  auto names = CandidateNames("Antonio Banderas");
  ASSERT_FALSE(names.empty());
  EXPECT_EQ(names[0], "Antonio_Banderas");
}

TEST_F(EntityLinkerTest, RdfsLabelAliasesWork) {
  // The_Prodigy carries rdfs:label "Prodigy".
  auto names = CandidateNames("Prodigy");
  EXPECT_TRUE(Has(names, "The_Prodigy"));
}

TEST_F(EntityLinkerTest, NameLikeLiteralsAreLinkable) {
  // "Scarface" is a nickname literal of Al_Capone.
  auto cands = linker_.Link("Scarface");
  ASSERT_FALSE(cands.empty());
  EXPECT_EQ(index_.graph().dict().text(cands[0].vertex), "Scarface");
  EXPECT_TRUE(index_.graph().dict().IsLiteral(cands[0].vertex));
}

TEST_F(EntityLinkerTest, UnknownPhraseGivesNoCandidates) {
  EXPECT_TRUE(linker_.Link("zxqv quux flibbertigibbet").empty());
  EXPECT_TRUE(linker_.Link("").empty());
}

TEST_F(EntityLinkerTest, CandidatesSortedByConfidenceAndCapped) {
  EntityLinker::Options opt;
  opt.max_candidates = 3;
  EntityLinker small(&index_, opt);
  auto cands = small.Link("Philadelphia");
  EXPECT_LE(cands.size(), 3u);
  for (size_t i = 1; i < cands.size(); ++i) {
    EXPECT_GE(cands[i - 1].confidence, cands[i].confidence);
  }
}

TEST_F(EntityLinkerTest, ConfidencesAreProbabilityLike) {
  for (const LinkCandidate& c : linker_.Link("Berlin")) {
    EXPECT_GT(c.confidence, 0.0);
    EXPECT_LE(c.confidence, 1.0);
  }
}

TEST(EntityIndexTest, IndexesIriAndLabelForms) {
  const auto& world = ganswer::testing::World();
  EntityIndex index(world.kb.graph);
  EXPECT_FALSE(index.ExactMatches("antonio banderas").empty());
  EXPECT_FALSE(index.ExactMatches("Antonio_Banderas").empty());
  EXPECT_FALSE(index.TokenMatches("banderas").empty());
  EXPECT_TRUE(index.ExactMatches("no such thing at all").empty());
  EXPECT_GT(index.NumIndexedVertices(), 1000u);
}

TEST(EntityIndexTest, ClassLabelsAreIndexed) {
  const auto& world = ganswer::testing::World();
  EntityIndex index(world.kb.graph);
  auto matches = index.ExactMatches("basketball team");
  ASSERT_FALSE(matches.empty());
  EXPECT_TRUE(world.kb.graph.IsClass(matches[0]));
}

TEST(EntityIndexTest, NumericLiteralsAreNotIndexed) {
  const auto& world = ganswer::testing::World();
  EntityIndex index(world.kb.graph);
  EXPECT_TRUE(index.ExactMatches("1.98").empty());
}

}  // namespace
}  // namespace linking
}  // namespace ganswer
