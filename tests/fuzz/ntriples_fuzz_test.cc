// Structured byte-fuzz driver for the N-Triples reader: corpus plus seeded
// mutations of valid documents. The reader must either accept the input or
// return an error Status — never crash, never throw — and a graph that
// accepted triples must still Finalize cleanly.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "fuzz/fuzz_support.h"
#include "prop/prop_support.h"
#include "rdf/ntriples.h"
#include "test_support.h"

namespace ganswer {
namespace testing {
namespace {

void DriveReader(const std::string& input) {
  rdf::RdfGraph graph;
  Status s = rdf::NTriplesReader::ParseString(input, &graph);
  // Whatever was (or was not) added, the graph must remain usable.
  EXPECT_TRUE(graph.Finalize().ok());
  (void)s;  // ok or error are both acceptable; crashing is not
}

TEST(NtriplesFuzzTest, SurvivesRegressionCorpus) {
  std::vector<CorpusEntry> corpus = LoadCorpus("ntriples");
  ASSERT_FALSE(corpus.empty());
  for (const CorpusEntry& e : corpus) {
    SCOPED_TRACE("corpus file: " + e.name);
    DriveReader(e.bytes);
  }
}

TEST(NtriplesFuzzTest, MalformedLinesReportLineNumbers) {
  rdf::RdfGraph graph;
  Status s = rdf::NTriplesReader::ParseString(
      "<a> <p> <b> .\nthis is not a triple\n", &graph);
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.ToString().find("line"), std::string::npos) << s.ToString();
}

TEST(NtriplesFuzzTest, SurvivesMutatedValidDocuments) {
  const std::string valid =
      "# generated corpus seed\n"
      "<v0> <p0> <v1> .\n"
      "<v1> <rdf:type> <C0> .\n"
      "<v1> <rdfs:label> \"vertex one\" .\n"
      "<v2> <p1> \"literal o\" .\n";
  ForEachSeed(4100, 80, [&](uint64_t seed) {
    Rng rng(seed);
    std::string mutated = MutateN(valid, rng, 1 + rng.Next(5));
    DriveReader(mutated);
  });
}

}  // namespace
}  // namespace testing
}  // namespace ganswer
