// Structured byte-fuzz driver for the HTTP/1.1 request parser: the
// regression corpus plus seeded mutations of valid requests must never
// crash, throw, over-consume, or loop — malformed bytes come back as a
// non-OK Status with a suggested 4xx/5xx answer. The same driver also
// stresses arbitrary re-fragmentation: any split of the byte stream must
// parse identically to the whole buffer. Runs under the sanitizer CI jobs;
// this is the no-UB contract for the network-facing boundary.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "fuzz/fuzz_support.h"
#include "prop/prop_support.h"
#include "server/http_parser.h"
#include "server/json_writer.h"
#include "test_support.h"

namespace ganswer {
namespace testing {
namespace {

// Feeds the input in rng-chosen fragments until the parser finishes,
// fails, or the bytes run out. Asserts the parser's bookkeeping invariants
// along the way and returns whether a full request was parsed.
bool DriveParser(const std::string& input, Rng& rng) {
  server::HttpParser parser;
  size_t offset = 0;
  while (offset < input.size() && !parser.done() && !parser.failed()) {
    size_t len = 1 + rng.Next(std::min<size_t>(64, input.size() - offset));
    auto consumed = parser.Feed(std::string_view(input).substr(offset, len));
    if (!consumed.ok()) {
      EXPECT_TRUE(parser.failed());
      int s = parser.suggested_status();
      EXPECT_TRUE(s == 400 || s == 413 || s == 414 || s == 431 || s == 501 ||
                  s == 505)
          << "suggested " << s;
      return false;
    }
    EXPECT_LE(*consumed, len) << "over-consumed";
    // Progress guarantee: unless the request just completed (pipelined
    // leftovers stay with the caller), every fed byte is consumed.
    if (!parser.done()) {
      EXPECT_EQ(*consumed, len);
    }
    offset += *consumed;
  }
  return parser.done();
}

// Whole-buffer reference result for differential fragmentation checks.
struct WholeParse {
  bool ok = false;
  server::HttpRequest request;
};

WholeParse ParseWhole(const std::string& input) {
  WholeParse out;
  server::HttpParser parser;
  auto consumed = parser.Feed(input);
  if (consumed.ok() && parser.done()) {
    out.ok = true;
    out.request = parser.request();
  }
  return out;
}

const std::vector<std::string>& ValidRequests() {
  static const std::vector<std::string>* requests =
      new std::vector<std::string>{
          "GET /healthz HTTP/1.1\r\nHost: localhost\r\n\r\n",
          "POST /answer HTTP/1.1\r\nContent-Type: application/json\r\n"
          "Content-Length: 21\r\n\r\n{\"question\": \"who?\"}!",
          "POST /sparql HTTP/1.0\r\nConnection: keep-alive\r\n"
          "Content-Length: 7\r\n\r\nseven b",
          "GET /stats?verbose=1&x=%20 HTTP/1.1\r\nAccept: */*\r\n"
          "X-Custom-Header: a,b;c=d\r\n\r\n",
      };
  return *requests;
}

TEST(HttpFuzzTest, SurvivesRegressionCorpus) {
  std::vector<CorpusEntry> corpus = LoadCorpus("http");
  ASSERT_FALSE(corpus.empty()) << "corpus missing — check "
                               << GANSWER_FUZZ_CORPUS_DIR;
  Rng rng(0x4774);
  for (const CorpusEntry& e : corpus) {
    SCOPED_TRACE("corpus file: " + e.name);
    DriveParser(e.bytes, rng);
  }
}

TEST(HttpFuzzTest, SurvivesMutatedValidRequests) {
  ForEachSeed(7000, 60, [&](uint64_t seed) {
    Rng rng(seed);
    for (const std::string& base : ValidRequests()) {
      std::string mutated = MutateN(base, rng, 1 + rng.Next(4));
      SCOPED_TRACE("input bytes: " + mutated);
      DriveParser(mutated, rng);
    }
  });
}

// Any fragmentation of a byte stream is equivalent to the whole buffer:
// same accept/reject verdict, and on accept the identical request. This is
// the property that makes the parser safe against TCP's arbitrary
// segmentation.
TEST(HttpFuzzTest, FragmentationIsTransparent) {
  ForEachSeed(7100, 40, [&](uint64_t seed) {
    Rng rng(seed);
    for (const std::string& base : ValidRequests()) {
      // Half the iterations parse the input pristine, half lightly mutated
      // (the verdict may flip to reject; it must do so in both modes).
      std::string input =
          rng.Next(2) == 0 ? base : MutateN(base, rng, 1 + rng.Next(2));
      SCOPED_TRACE("input bytes: " + input);
      WholeParse whole = ParseWhole(input);
      Rng frag_rng(seed ^ 0x9e3779b97f4a7c15ull);
      server::HttpParser parser;
      size_t offset = 0;
      while (offset < input.size() && !parser.done() && !parser.failed()) {
        size_t len =
            1 + frag_rng.Next(std::min<size_t>(16, input.size() - offset));
        auto consumed =
            parser.Feed(std::string_view(input).substr(offset, len));
        if (!consumed.ok()) break;
        offset += *consumed;
      }
      EXPECT_EQ(parser.done(), whole.ok) << "fragmented verdict diverged";
      if (whole.ok && parser.done()) {
        EXPECT_EQ(parser.request().method, whole.request.method);
        EXPECT_EQ(parser.request().target, whole.request.target);
        EXPECT_EQ(parser.request().headers, whole.request.headers);
        EXPECT_EQ(parser.request().body, whole.request.body);
        EXPECT_EQ(parser.request().keep_alive, whole.request.keep_alive);
      }
    }
  });
}

// JsonGetString sits on the same network boundary (request bodies); it must
// uphold the identical no-crash contract over mutated JSON.
TEST(HttpFuzzTest, JsonBodyExtractorSurvivesMutations) {
  const std::vector<std::string> valid = {
      "{\"question\": \"who was married to an actor ?\"}",
      "{\"query\": \"SELECT ?x WHERE { ?x <p> ?y }\", \"k\": 3}",
      "{\"a\": [1, {\"b\": null}], \"question\": \"x\\u00e9\\n\"}",
  };
  ForEachSeed(7200, 60, [&](uint64_t seed) {
    Rng rng(seed);
    for (const std::string& base : valid) {
      std::string mutated = MutateN(base, rng, 1 + rng.Next(4));
      SCOPED_TRACE("input bytes: " + mutated);
      auto result = server::JsonGetString(mutated, "question");
      if (!result.ok()) {
        EXPECT_TRUE(result.status().IsInvalidArgument() ||
                    result.status().IsNotFound())
            << result.status().ToString();
      }
    }
  });
}

}  // namespace
}  // namespace testing
}  // namespace ganswer
