// Byte-fuzz driver for the shard RPC codec (server/shard_rpc.h): the
// frame reassembler and both payload decoders sit directly on untrusted
// socket bytes, so they must reject truncated, oversized, CRC-broken or
// internally inconsistent input with Status::Corruption — never crash,
// never allocate absurdly, never read out of bounds. Valid request and
// response frames are built in memory, then attacked with every prefix
// truncation, seeded stacked mutations and arbitrary stream chunking; the
// .hex corpus pins handcrafted hostile frames (bad magic, lying length,
// wrong CRC, empty payload, unknown types).

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "common/binary_io.h"
#include "fuzz/fuzz_support.h"
#include "match/query_graph.h"
#include "prop/prop_support.h"
#include "server/shard_rpc.h"

namespace ganswer {
namespace testing {
namespace {

using server::FrameBuffer;
using server::ShardRequest;
using server::ShardResponse;
using server::ShardRpcType;

match::QueryGraph SampleQuery() {
  match::QueryGraph query;
  query.vertices.resize(3);
  query.vertices[0].candidates.push_back({.vertex = 7, .confidence = 0.9});
  query.vertices[0].candidates.push_back({.vertex = 8, .confidence = 0.5});
  query.vertices[1].wildcard = true;
  query.vertices[2].candidates.push_back(
      {.vertex = 3, .is_class = true, .confidence = 0.8});
  match::QueryEdge e01;
  e01.from = 0;
  e01.to = 1;
  paraphrase::ParaphraseEntry entry;
  entry.path.steps = {{5, true}, {6, false}};
  entry.confidence = 0.7;
  e01.candidates.push_back(entry);
  query.edges.push_back(e01);
  match::QueryEdge e12;
  e12.from = 1;
  e12.to = 2;
  e12.wildcard = true;
  query.edges.push_back(e12);
  return query;
}

/// Wire frames a healthy router/worker pair actually exchanges — the
/// mutation baseline (a fuzzer starting from valid bytes reaches far
/// deeper than one starting from noise).
std::vector<std::string> ValidFrames() {
  std::vector<std::string> frames;
  {
    ShardRequest ping;
    ping.request_id = 1;
    ping.type = ShardRpcType::kPing;
    frames.push_back(server::EncodeFrame(server::EncodeRequest(ping)));
  }
  {
    ShardRequest req;
    req.request_id = 2;
    req.type = ShardRpcType::kMatch;
    req.k = 5;
    req.query = SampleQuery();
    frames.push_back(server::EncodeFrame(server::EncodeRequest(req)));
  }
  {
    ShardRequest req;
    req.request_id = 3;
    req.type = ShardRpcType::kSparql;
    req.sparql_text = "SELECT ?x WHERE { ?x <p> <o> }";
    frames.push_back(server::EncodeFrame(server::EncodeRequest(req)));
  }
  {
    ShardResponse resp;
    resp.request_id = 2;
    resp.type = ShardRpcType::kMatch;
    match::Match m;
    m.assignment = {4, 9, 11};
    m.score = -0.25;
    resp.matches = {m, m};
    frames.push_back(server::EncodeFrame(server::EncodeResponse(resp)));
  }
  {
    ShardResponse resp;
    resp.request_id = 3;
    resp.type = ShardRpcType::kSparql;
    resp.sparql.var_names = {"x", "y"};
    resp.sparql.rows = {{1, 2}, {3, 4}};
    frames.push_back(server::EncodeFrame(server::EncodeResponse(resp)));
  }
  {
    ShardResponse resp;
    resp.request_id = 4;
    resp.type = ShardRpcType::kSparql;
    resp.status = server::ShardRpcStatus::kInvalidArgument;
    resp.error = "parse error";
    frames.push_back(server::EncodeFrame(server::EncodeResponse(resp)));
  }
  return frames;
}

struct DriveResult {
  bool framing_error = false;
  size_t frames = 0;           ///< complete frames extracted
  size_t decoded = 0;          ///< payloads some decoder accepted
};

/// Feeds \p bytes through FrameBuffer (in random chunks when \p rng is
/// given — the reassembler must not care how the stream is sliced) and
/// runs both payload decoders over every extracted frame. Anything the
/// decoders accept must respect the documented caps.
DriveResult Drive(const std::string& bytes, Rng* rng = nullptr) {
  DriveResult result;
  FrameBuffer buffer;
  size_t fed = 0;
  while (fed < bytes.size() || fed == 0) {
    size_t chunk = bytes.size() - fed;
    if (rng != nullptr && chunk > 0) chunk = 1 + rng->Next(chunk);
    buffer.Append(std::string_view(bytes).substr(fed, chunk));
    fed += chunk;
    while (true) {
      std::string payload;
      auto next = buffer.Next(&payload);
      if (!next.ok()) {
        EXPECT_TRUE(next.status().IsCorruption()) << next.status().ToString();
        result.framing_error = true;
        return result;
      }
      if (!*next) break;
      ++result.frames;
      if (auto req = server::DecodeRequest(payload); req.ok()) {
        ++result.decoded;
        EXPECT_LE(req->query.vertices.size(), server::kMaxQueryVertices);
        EXPECT_LE(req->query.edges.size(), server::kMaxQueryEdges);
        // Whatever decodes must re-encode without tripping any invariant.
        server::EncodeRequest(*req);
      }
      if (auto resp = server::DecodeResponse(payload); resp.ok()) {
        ++result.decoded;
        EXPECT_LE(resp->matches.size(), server::kMaxMatches);
        EXPECT_LE(resp->sparql.var_names.size(), server::kMaxSparqlVars);
        EXPECT_LE(resp->sparql.rows.size(), server::kMaxSparqlRows);
        server::EncodeResponse(*resp);
      }
    }
    if (bytes.empty()) break;
  }
  return result;
}

TEST(ShardRpcFuzzTest, ValidFramesRoundTrip) {
  Rng rng(99);
  for (const std::string& frame : ValidFrames()) {
    DriveResult whole = Drive(frame);
    EXPECT_FALSE(whole.framing_error);
    EXPECT_EQ(whole.frames, 1u);
    EXPECT_GE(whole.decoded, 1u);
    // Same frame through adversarial stream chunking.
    DriveResult chunked = Drive(frame, &rng);
    EXPECT_EQ(chunked.frames, 1u);
  }
  // All frames back to back on one stream, sliced arbitrarily.
  std::string stream;
  for (const std::string& frame : ValidFrames()) stream += frame;
  DriveResult all = Drive(stream, &rng);
  EXPECT_FALSE(all.framing_error);
  EXPECT_EQ(all.frames, ValidFrames().size());
}

// The checked-in corpus: `reject_*` files must fail (framing or decode),
// `pending_*` files are incomplete frames the reassembler must keep
// waiting on without error.
TEST(ShardRpcFuzzTest, SurvivesRegressionCorpus) {
  std::vector<CorpusEntry> corpus = LoadCorpus("shard_rpc");
  ASSERT_FALSE(corpus.empty());
  for (const CorpusEntry& e : corpus) {
    SCOPED_TRACE("corpus file: " + e.name);
    DriveResult result = Drive(e.bytes);
    if (e.name.rfind("reject_", 0) == 0) {
      EXPECT_TRUE(result.framing_error || result.decoded == 0)
          << "hostile frame was accepted";
    } else if (e.name.rfind("pending_", 0) == 0) {
      EXPECT_FALSE(result.framing_error) << "incomplete != corrupt";
      EXPECT_EQ(result.frames, 0u);
    }
  }
}

TEST(ShardRpcFuzzTest, SurvivesEveryTruncation) {
  for (const std::string& frame : ValidFrames()) {
    for (size_t n = 0; n < frame.size(); ++n) {
      DriveResult result = Drive(frame.substr(0, n));
      // A proper prefix never yields a complete frame: either the header
      // is short (reassembler waits) or the payload is (ditto). It must
      // never be misread as done.
      EXPECT_EQ(result.frames, 0u) << "accepted a " << n << "-byte prefix";
    }
  }
}

TEST(ShardRpcFuzzTest, SurvivesMutatedFrames) {
  const std::vector<std::string> frames = ValidFrames();
  ForEachSeed(8700, 120, [&](uint64_t seed) {
    Rng rng(seed);
    const std::string& base = frames[rng.Next(frames.size())];
    Drive(MutateN(base, rng, 1 + rng.Next(6)), &rng);
  });
}

// Mutate only the payload and re-frame it with a fresh, *valid* CRC: this
// drives mutated bytes past the checksum into the request/response
// decoders themselves, where the per-field bounds checks must hold.
TEST(ShardRpcFuzzTest, SurvivesMutatedPayloadsBehindValidCrc) {
  ShardRequest req;
  req.request_id = 11;
  req.type = ShardRpcType::kMatch;
  req.k = 3;
  req.query = SampleQuery();
  const std::string request_payload = server::EncodeRequest(req);
  ShardResponse resp;
  resp.request_id = 11;
  resp.type = ShardRpcType::kMatch;
  match::Match m;
  m.assignment = {1, 2, 3};
  m.score = -1.5;
  resp.matches = {m};
  const std::string response_payload = server::EncodeResponse(resp);
  ForEachSeed(8800, 120, [&](uint64_t seed) {
    Rng rng(seed);
    const std::string& base =
        rng.Chance(0.5) ? request_payload : response_payload;
    std::string mutated = MutateN(base, rng, 1 + rng.Next(4));
    if (mutated.size() > server::kMaxFrameBytes) return;
    DriveResult result = Drive(server::EncodeFrame(mutated));
    EXPECT_FALSE(result.framing_error) << "re-framed payload has valid CRC";
  });
}

// The query-graph codec, hit directly (it nests deepest inside kMatch).
TEST(ShardRpcFuzzTest, QueryGraphDecoderNeverOverreads) {
  BinaryWriter writer;
  server::EncodeQueryGraph(SampleQuery(), &writer);
  const std::string valid = writer.buffer();
  {
    BinaryReader reader(valid);
    match::QueryGraph out;
    ASSERT_TRUE(server::DecodeQueryGraph(&reader, &out).ok());
    EXPECT_EQ(out.vertices.size(), 3u);
    EXPECT_EQ(out.edges.size(), 2u);
  }
  ForEachSeed(8900, 150, [&](uint64_t seed) {
    Rng rng(seed);
    std::string bytes;
    if (rng.Chance(0.5)) {
      bytes = MutateN(valid, rng, 1 + rng.Next(5));
    } else {
      size_t len = rng.Next(120);
      for (size_t i = 0; i < len; ++i) {
        bytes.push_back(static_cast<char>(rng.Next(256)));
      }
    }
    BinaryReader reader(bytes);
    match::QueryGraph out;
    Status s = server::DecodeQueryGraph(&reader, &out);
    if (s.ok()) {
      EXPECT_LE(out.vertices.size(), server::kMaxQueryVertices);
      EXPECT_LE(out.edges.size(), server::kMaxQueryEdges);
      for (const match::QueryEdge& edge : out.edges) {
        EXPECT_GE(edge.from, 0);
        EXPECT_GE(edge.to, 0);
        EXPECT_LT(static_cast<size_t>(edge.from), out.vertices.size());
        EXPECT_LT(static_cast<size_t>(edge.to), out.vertices.size());
      }
    } else {
      EXPECT_TRUE(s.IsCorruption()) << s.ToString();
    }
  });
}

}  // namespace
}  // namespace testing
}  // namespace ganswer
