// Structured byte-fuzz driver for the snapshot container and the
// bounds-checked binary reader underneath it. A valid snapshot is built in
// memory once, then attacked with truncation and seeded byte mutations; the
// loader must return Status::Corruption (or, for a lucky mutation that
// keeps the CRCs valid, a fully-formed bundle) — never crash, never
// allocate absurdly, never read out of bounds. The .hex corpus pins
// handcrafted corrupt headers (bad magic, foreign byte order, stale
// version, lying section tables).

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "common/binary_io.h"
#include "fuzz/fuzz_support.h"
#include "paraphrase/paraphrase_dictionary.h"
#include "prop/prop_support.h"
#include "store/snapshot.h"
#include "test_support.h"

namespace ganswer {
namespace testing {
namespace {

struct SnapshotFixture {
  nlp::Lexicon lexicon;
  std::string bytes;             // v3 raw (the default writer output)
  std::string compressed_bytes;  // v3 with every compressible section packed
};

const SnapshotFixture& Fixture() {
  static SnapshotFixture* fx = [] {
    auto* f = new SnapshotFixture();
    RandomGraphData data = BuildRandomGraph(1234);
    paraphrase::ParaphraseDictionary dict(&f->lexicon);
    if (!store::WriteSnapshot(data.graph, dict, &f->bytes).ok()) {
      std::abort();
    }
    if (!store::WriteSnapshot(data.graph, dict, &f->compressed_bytes, nullptr,
                              {.compress = true})
             .ok()) {
      std::abort();
    }
    return f;
  }();
  return *fx;
}

void DriveLoader(const std::string& bytes) {
  const SnapshotFixture& fx = Fixture();
  auto snap = store::ReadSnapshot(bytes, &fx.lexicon);
  if (snap.ok()) {
    // A mutation that survived every CRC must still hand back a finalized,
    // internally consistent bundle.
    ASSERT_NE(snap->graph, nullptr);
    EXPECT_TRUE(snap->graph->finalized());
  }
}

TEST(SnapshotFuzzTest, SurvivesRegressionCorpus) {
  std::vector<CorpusEntry> corpus = LoadCorpus("snapshot");
  ASSERT_FALSE(corpus.empty());
  for (const CorpusEntry& e : corpus) {
    SCOPED_TRACE("corpus file: " + e.name);
    auto snap = store::ReadSnapshot(e.bytes, &Fixture().lexicon);
    EXPECT_FALSE(snap.ok()) << e.name << " was crafted to be rejected";
  }
}

TEST(SnapshotFuzzTest, SurvivesEveryTruncation) {
  const std::string& bytes = Fixture().bytes;
  // Every prefix around the header plus sampled interior cuts.
  for (size_t n = 0; n < std::min<size_t>(bytes.size(), 64); ++n) {
    auto snap = store::ReadSnapshot(bytes.substr(0, n), &Fixture().lexicon);
    EXPECT_FALSE(snap.ok()) << "accepted a " << n << "-byte prefix";
  }
  for (size_t n = 64; n < bytes.size(); n += 97) {
    auto snap = store::ReadSnapshot(bytes.substr(0, n), &Fixture().lexicon);
    EXPECT_FALSE(snap.ok()) << "accepted a " << n << "-byte prefix";
  }
}

TEST(SnapshotFuzzTest, SurvivesMutatedSnapshots) {
  ForEachSeed(4200, 80, [](uint64_t seed) {
    Rng rng(seed);
    DriveLoader(MutateN(Fixture().bytes, rng, 1 + rng.Next(6)));
  });
}

// The compressed sections route mutated bytes into the delta-varint and
// front-coding decoders (when the mutation dodges the section CRC), which
// must reject or survive like the raw path.
TEST(SnapshotFuzzTest, SurvivesMutatedCompressedSnapshots) {
  ForEachSeed(4250, 80, [](uint64_t seed) {
    Rng rng(seed);
    DriveLoader(MutateN(Fixture().compressed_bytes, rng, 1 + rng.Next(6)));
  });
}

TEST(SnapshotFuzzTest, SurvivesEveryCompressedTruncation) {
  const std::string& bytes = Fixture().compressed_bytes;
  for (size_t n = 0; n < std::min<size_t>(bytes.size(), 64); ++n) {
    auto snap = store::ReadSnapshot(bytes.substr(0, n), &Fixture().lexicon);
    EXPECT_FALSE(snap.ok()) << "accepted a " << n << "-byte prefix";
  }
  for (size_t n = 64; n < bytes.size(); n += 89) {
    auto snap = store::ReadSnapshot(bytes.substr(0, n), &Fixture().lexicon);
    EXPECT_FALSE(snap.ok()) << "accepted a " << n << "-byte prefix";
  }
}

// Mutations through the mmap loader: the zero-copy path must validate
// exactly as strictly as the copying one.
TEST(SnapshotFuzzTest, SurvivesMutatedSnapshotsUnderMmap) {
  const std::string path = "snapshot_fuzz_mmap.snap";
  ForEachSeed(4270, 30, [&](uint64_t seed) {
    Rng rng(seed);
    std::string mutated = MutateN(Fixture().bytes, rng, 1 + rng.Next(6));
    {
      std::ofstream out(path, std::ios::binary);
      out.write(mutated.data(), static_cast<std::streamsize>(mutated.size()));
    }
    auto snap = store::ReadSnapshotFile(path, &Fixture().lexicon,
                                        store::SnapshotLoadMode::kMmap);
    if (snap.ok()) {
      ASSERT_NE(snap->graph, nullptr);
      EXPECT_TRUE(snap->graph->finalized());
    }
  });
  std::remove(path.c_str());
}

// The decoder under the container: a primitive-read loop over arbitrary
// bytes must consume input without crashing and fail cleanly at the end.
TEST(SnapshotFuzzTest, BinaryReaderNeverOverreads) {
  ForEachSeed(4300, 40, [](uint64_t seed) {
    Rng rng(seed);
    std::string junk;
    size_t len = rng.Next(200);
    for (size_t i = 0; i < len; ++i) {
      junk.push_back(static_cast<char>(rng.Next(256)));
    }
    BinaryReader reader(junk);
    while (!reader.AtEnd()) {
      Status s;
      switch (rng.Next(6)) {
        case 0: {
          uint8_t v;
          s = reader.ReadU8(&v);
          break;
        }
        case 1: {
          uint32_t v;
          s = reader.ReadU32(&v);
          break;
        }
        case 2: {
          uint64_t v;
          s = reader.ReadU64(&v);
          break;
        }
        case 3: {
          uint64_t v;
          s = reader.ReadVarint(&v);
          break;
        }
        case 4: {
          std::string v;
          s = reader.ReadString(&v);
          break;
        }
        default: {
          std::vector<uint32_t> v;
          s = reader.ReadPodVector(&v);
          break;
        }
      }
      if (!s.ok()) {
        EXPECT_TRUE(s.IsCorruption()) << s.ToString();
        break;
      }
    }
  });
}

}  // namespace
}  // namespace testing
}  // namespace ganswer
