#ifndef GANSWER_TESTS_FUZZ_FUZZ_SUPPORT_H_
#define GANSWER_TESTS_FUZZ_FUZZ_SUPPORT_H_

// Support for the structured byte-fuzz drivers.
//
// Two input sources feed every driver:
//   1. The checked-in regression corpus under tests/fuzz_corpus/<area>/ —
//      inputs that previously crashed, hung, or mis-parsed, kept forever.
//      Text corpora are stored verbatim; binary corpora as hex (.hex) so
//      diffs stay reviewable.
//   2. Seeded mutations of valid inputs (bit flips, byte smashes,
//      truncations, splices), deterministic per seed so a failure replays
//      with GANSWER_PROP_SEED like any property test.
//
// The drivers assert the no-crash/no-UB contract: parsers must return an
// error Status on malformed bytes, never throw, never read out of bounds
// (the sanitizer jobs run these same tests under ASan/UBSan).

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/random.h"

#ifndef GANSWER_FUZZ_CORPUS_DIR
#error "GANSWER_FUZZ_CORPUS_DIR must be defined by the build"
#endif

namespace ganswer {
namespace testing {

struct CorpusEntry {
  std::string name;
  std::string bytes;
};

inline std::string HexDecode(const std::string& text) {
  std::string out;
  int hi = -1;
  for (char c : text) {
    int v;
    if (c >= '0' && c <= '9') {
      v = c - '0';
    } else if (c >= 'a' && c <= 'f') {
      v = c - 'a' + 10;
    } else if (c >= 'A' && c <= 'F') {
      v = c - 'A' + 10;
    } else {
      continue;  // whitespace / separators between byte pairs
    }
    if (hi < 0) {
      hi = v;
    } else {
      out.push_back(static_cast<char>((hi << 4) | v));
      hi = -1;
    }
  }
  return out;
}

/// All corpus entries under tests/fuzz_corpus/<area>, sorted by file name.
/// Files ending in .hex are hex-decoded; everything else is read raw.
inline std::vector<CorpusEntry> LoadCorpus(const std::string& area) {
  namespace fs = std::filesystem;
  std::vector<CorpusEntry> entries;
  fs::path dir = fs::path(GANSWER_FUZZ_CORPUS_DIR) / area;
  if (!fs::exists(dir)) return entries;
  for (const fs::directory_entry& e : fs::directory_iterator(dir)) {
    if (!e.is_regular_file()) continue;
    std::ifstream in(e.path(), std::ios::binary);
    std::ostringstream buf;
    buf << in.rdbuf();
    CorpusEntry entry;
    entry.name = e.path().filename().string();
    entry.bytes = e.path().extension() == ".hex" ? HexDecode(buf.str())
                                                 : buf.str();
    entries.push_back(std::move(entry));
  }
  std::sort(entries.begin(), entries.end(),
            [](const CorpusEntry& a, const CorpusEntry& b) {
              return a.name < b.name;
            });
  return entries;
}

/// One deterministic structured mutation of \p input.
inline std::string Mutate(const std::string& input, Rng& rng) {
  std::string s = input;
  switch (rng.Next(5)) {
    case 0:  // flip a bit
      if (!s.empty()) {
        size_t i = rng.Next(s.size());
        s[i] = static_cast<char>(s[i] ^ (1u << rng.Next(8)));
      }
      break;
    case 1:  // smash a byte
      if (!s.empty()) s[rng.Next(s.size())] = static_cast<char>(rng.Next(256));
      break;
    case 2:  // truncate
      if (!s.empty()) s.resize(rng.Next(s.size()));
      break;
    case 3: {  // splice a chunk of itself somewhere else
      if (s.size() > 1) {
        size_t from = rng.Next(s.size());
        size_t len = 1 + rng.Next(std::min<size_t>(8, s.size() - from));
        size_t at = rng.Next(s.size());
        s.insert(at, s.substr(from, len));
      }
      break;
    }
    default: {  // insert random bytes
      size_t at = s.empty() ? 0 : rng.Next(s.size() + 1);
      size_t len = 1 + rng.Next(6);
      std::string junk;
      for (size_t i = 0; i < len; ++i) {
        junk.push_back(static_cast<char>(rng.Next(256)));
      }
      s.insert(at, junk);
      break;
    }
  }
  return s;
}

/// \p rounds stacked mutations (each round may compound the previous).
inline std::string MutateN(const std::string& input, Rng& rng, size_t rounds) {
  std::string s = input;
  for (size_t i = 0; i < rounds; ++i) s = Mutate(s, rng);
  return s;
}

}  // namespace testing
}  // namespace ganswer

#endif  // GANSWER_TESTS_FUZZ_FUZZ_SUPPORT_H_
