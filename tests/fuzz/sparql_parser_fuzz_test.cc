// Structured byte-fuzz driver for SparqlParser: the whole regression
// corpus plus seeded mutations of valid queries must never crash or throw,
// and malformed inputs must come back as InvalidArgument carrying a byte
// offset. Run under the sanitizer CI jobs, this is the no-UB contract.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "fuzz/fuzz_support.h"
#include "prop/prop_support.h"
#include "rdf/sparql_parser.h"
#include "test_support.h"

namespace ganswer {
namespace testing {
namespace {

// Parsing never throws; a failure Status must be InvalidArgument and must
// name the byte offset (satellite requirement: position info on every
// parse error path).
void DriveParser(const std::string& input) {
  auto result = rdf::SparqlParser::Parse(input);
  if (result.ok()) {
    // A parsed query must survive the ToString round trip.
    auto again = rdf::SparqlParser::Parse(result->ToString());
    EXPECT_TRUE(again.ok()) << "reparse of ToString failed: "
                            << again.status().ToString();
    return;
  }
  EXPECT_TRUE(result.status().IsInvalidArgument())
      << result.status().ToString();
  EXPECT_NE(result.status().ToString().find("at byte"), std::string::npos)
      << "parse error lost its position info: " << result.status().ToString();
}

TEST(SparqlParserFuzzTest, SurvivesRegressionCorpus) {
  std::vector<CorpusEntry> corpus = LoadCorpus("sparql");
  ASSERT_FALSE(corpus.empty()) << "corpus missing — check "
                               << GANSWER_FUZZ_CORPUS_DIR;
  for (const CorpusEntry& e : corpus) {
    SCOPED_TRACE("corpus file: " + e.name);
    DriveParser(e.bytes);
  }
}

TEST(SparqlParserFuzzTest, SurvivesMutatedValidQueries) {
  const std::vector<std::string> valid = {
      "SELECT ?x WHERE { ?x <knows> ?y . }",
      "SELECT DISTINCT ?a ?b WHERE { ?a <p> ?b . ?b <q> <v0> . } "
      "ORDER BY DESC(?a) LIMIT 10 OFFSET 2",
      "ASK WHERE { <v1> <p> \"literal value\" . }",
      "SELECT * WHERE { ?s ?p ?o . }",
  };
  ForEachSeed(4000, 60, [&](uint64_t seed) {
    Rng rng(seed);
    for (const std::string& base : valid) {
      std::string mutated = MutateN(base, rng, 1 + rng.Next(4));
      SCOPED_TRACE("input bytes: " + mutated);
      DriveParser(mutated);
    }
  });
}

}  // namespace
}  // namespace testing
}  // namespace ganswer
