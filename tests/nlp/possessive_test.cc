#include <gtest/gtest.h>

#include "nlp/dependency_parser.h"
#include "qa/ganswer.h"
#include "test_support.h"

namespace ganswer {
namespace nlp {
namespace {

class PossessiveTest : public ::testing::Test {
 protected:
  PossessiveTest() : parser_(lexicon_) {}

  DependencyTree Parse(const std::string& q) {
    auto tree = parser_.Parse(q);
    EXPECT_TRUE(tree.ok());
    return std::move(tree).value();
  }

  static int NodeOf(const DependencyTree& t, const std::string& w) {
    for (int i = 0; i < static_cast<int>(t.size()); ++i) {
      if (t.node(i).token.text == w) return i;
    }
    return -1;
  }

  Lexicon lexicon_;
  DependencyParser parser_;
};

TEST_F(PossessiveTest, CliticStrippedAndPossAttached) {
  DependencyTree t = Parse("Who is Barack Obama's wife ?");
  int obama = NodeOf(t, "Obama");
  int wife = NodeOf(t, "wife");
  int barack = NodeOf(t, "Barack");
  ASSERT_GE(obama, 0);
  ASSERT_GE(wife, 0);
  EXPECT_EQ(t.node(obama).parent, wife);
  EXPECT_EQ(t.node(obama).relation, dep::kPoss);
  EXPECT_EQ(t.node(barack).parent, obama) << "name parts compound under the possessor";
  EXPECT_EQ(t.node(barack).relation, dep::kNn);
}

TEST_F(PossessiveTest, PossIsSubjectLikePerThePaper) {
  EXPECT_TRUE(dep::IsSubjectLike(dep::kPoss));
}

TEST_F(PossessiveTest, ProperNounHeadsAreNotSplit) {
  // "Chicago Bulls": NNP head, no possessive misanalysis.
  DependencyTree t = Parse("Who plays for the Chicago Bulls ?");
  int chicago = NodeOf(t, "Chicago");
  ASSERT_GE(chicago, 0);
  EXPECT_EQ(t.node(chicago).relation, dep::kNn);
}

TEST_F(PossessiveTest, DigitLedHeadsAreNotSplit) {
  // "76ers" is a common-noun-tagged token but not a lowercase word; the
  // possessive rule must not split the team name.
  DependencyTree t = Parse("Who plays for the Frostholm Bay 76ers ?");
  int bay = NodeOf(t, "Bay");
  ASSERT_GE(bay, 0);
  EXPECT_NE(t.node(bay).relation, dep::kPoss);
}

class PossessiveEndToEndTest : public ::testing::Test {
 protected:
  PossessiveEndToEndTest()
      : world_(ganswer::testing::World()),
        system_(&world_.kb.graph, &world_.lexicon, world_.verified.get()) {}

  const ganswer::testing::SharedWorld& world_;
  qa::GAnswer system_;
};

TEST_F(PossessiveEndToEndTest, PossessiveSpouseQuestion) {
  auto r = system_.Ask("Who is Barack Obama's wife ?");
  ASSERT_TRUE(r.ok());
  ASSERT_FALSE(r->answers.empty());
  EXPECT_EQ(r->answers[0].text, "Michelle_Obama");
}

TEST_F(PossessiveEndToEndTest, PossessiveCapitalQuestion) {
  auto r = system_.Ask("What is Canada's capital ?");
  ASSERT_TRUE(r.ok());
  ASSERT_FALSE(r->answers.empty());
  EXPECT_EQ(r->answers[0].text, "Ottawa");
}

}  // namespace
}  // namespace nlp
}  // namespace ganswer
