#include "nlp/lexicon.h"

#include <gtest/gtest.h>

#include <sstream>

namespace ganswer {
namespace nlp {
namespace {

class LexiconTest : public ::testing::Test {
 protected:
  Lexicon lex_;
};

TEST_F(LexiconTest, ClosedClassMembership) {
  EXPECT_TRUE(lex_.IsWhWord("who"));
  EXPECT_TRUE(lex_.IsWhWord("which"));
  EXPECT_FALSE(lex_.IsWhWord("actor"));
  EXPECT_TRUE(lex_.IsAux("was"));
  EXPECT_TRUE(lex_.IsAux("did"));
  EXPECT_FALSE(lex_.IsAux("play"));
  EXPECT_TRUE(lex_.IsDeterminer("the"));
  EXPECT_TRUE(lex_.IsDeterminer("all"));
  EXPECT_TRUE(lex_.IsPreposition("in"));
  EXPECT_TRUE(lex_.IsPreposition("through"));
  EXPECT_TRUE(lex_.IsPronoun("me"));
  EXPECT_TRUE(lex_.IsPronoun("that"));
  EXPECT_TRUE(lex_.IsConjunction("and"));
  EXPECT_FALSE(lex_.IsConjunction("in"));
  EXPECT_TRUE(lex_.IsAdjective("tall"));
  EXPECT_TRUE(lex_.IsAdjective("youngest"));
}

TEST_F(LexiconTest, NounsIncludingPlurals) {
  EXPECT_TRUE(lex_.IsNoun("actor"));
  EXPECT_TRUE(lex_.IsNoun("actors"));
  EXPECT_TRUE(lex_.IsNoun("movies"));
  EXPECT_TRUE(lex_.IsNoun("cities"));  // -ies -> y
  EXPECT_FALSE(lex_.IsNoun("zzzz"));
}

struct LemmaCase {
  const char* form;
  const char* lemma;
};

class LemmatizeTest : public ::testing::TestWithParam<LemmaCase> {
 protected:
  Lexicon lex_;
};

TEST_P(LemmatizeTest, ProducesBaseForm) {
  EXPECT_EQ(lex_.Lemmatize(GetParam().form), GetParam().lemma);
}

INSTANTIATE_TEST_SUITE_P(
    Verbs, LemmatizeTest,
    ::testing::Values(LemmaCase{"married", "marry"},
                      LemmaCase{"starred", "star"},
                      LemmaCase{"starring", "star"},
                      LemmaCase{"played", "play"},
                      LemmaCase{"plays", "play"},
                      LemmaCase{"was", "be"}, LemmaCase{"were", "be"},
                      LemmaCase{"is", "be"}, LemmaCase{"did", "do"},
                      LemmaCase{"born", "bear"},
                      LemmaCase{"wrote", "write"},
                      LemmaCase{"written", "write"},
                      LemmaCase{"died", "die"}, LemmaCase{"lived", "live"},
                      LemmaCase{"founded", "found"},
                      LemmaCase{"directed", "direct"},
                      LemmaCase{"developed", "develop"},
                      LemmaCase{"crosses", "cross"},
                      LemmaCase{"flows", "flow"}));

INSTANTIATE_TEST_SUITE_P(
    NounsAndUnknown, LemmatizeTest,
    ::testing::Values(LemmaCase{"movies", "movie"},
                      LemmaCase{"cities", "city"},
                      LemmaCase{"actors", "actor"},
                      LemmaCase{"members", "member"},
                      LemmaCase{"children", "children"},
                      LemmaCase{"philadelphia", "philadelphia"},
                      LemmaCase{"banderas", "banderas"}));

TEST_F(LexiconTest, VerbFormRecognition) {
  EXPECT_TRUE(lex_.IsVerbForm("played"));
  EXPECT_TRUE(lex_.IsVerbForm("starred"));
  EXPECT_TRUE(lex_.IsVerbForm("marry"));
  EXPECT_TRUE(lex_.IsVerbForm("born"));
  EXPECT_FALSE(lex_.IsVerbForm("philadelphia"));
  EXPECT_FALSE(lex_.IsVerbForm("quarreled")) << "unknown verb stays unknown";
}

TEST_F(LexiconTest, PastParticipleDetection) {
  EXPECT_TRUE(lex_.IsPastParticiple("married"));
  EXPECT_TRUE(lex_.IsPastParticiple("directed"));
  EXPECT_TRUE(lex_.IsPastParticiple("born"));
  EXPECT_TRUE(lex_.IsPastParticiple("written"));
  EXPECT_FALSE(lex_.IsPastParticiple("marry"));
  EXPECT_FALSE(lex_.IsPastParticiple("wrote"));
}

TEST_F(LexiconTest, VocabularyExtension) {
  EXPECT_FALSE(lex_.IsVerbForm("zonkify"));
  lex_.AddVerb("zonkify");
  EXPECT_TRUE(lex_.IsVerbForm("zonkify"));
  EXPECT_TRUE(lex_.IsVerbForm("zonkified"));
  EXPECT_EQ(lex_.Lemmatize("zonkified"), "zonkify");

  lex_.AddNoun("gadget");
  EXPECT_TRUE(lex_.IsNoun("gadgets"));
  lex_.AddAdjective("frumious");
  EXPECT_TRUE(lex_.IsAdjective("frumious"));
}

TEST_F(LexiconTest, LoadVocabularyFromStream) {
  std::istringstream in(
      "# domain vocabulary\n"
      "noun spaceship\n"
      "verb zorch\n"
      "adjective quantal\n"
      "\n");
  ASSERT_TRUE(lex_.LoadVocabulary(&in).ok());
  EXPECT_TRUE(lex_.IsNoun("spaceship"));
  EXPECT_TRUE(lex_.IsNoun("spaceships"));
  EXPECT_TRUE(lex_.IsVerbForm("zorched"));
  EXPECT_EQ(lex_.Lemmatize("zorched"), "zorch");
  EXPECT_TRUE(lex_.IsAdjective("quantal"));
}

TEST_F(LexiconTest, LoadVocabularyRejectsMalformed) {
  std::istringstream missing("noun\n");
  EXPECT_TRUE(lex_.LoadVocabulary(&missing).IsCorruption());
  std::istringstream kind("adverb quickly\n");
  EXPECT_TRUE(lex_.LoadVocabulary(&kind).IsCorruption());
  EXPECT_TRUE(lex_.LoadVocabulary(nullptr).IsInvalidArgument());
}

}  // namespace
}  // namespace nlp
}  // namespace ganswer
