#include "nlp/dependency_parser.h"

#include <gtest/gtest.h>

#include "datagen/workload.h"
#include "test_support.h"

namespace ganswer {
namespace nlp {
namespace {

class DependencyParserTest : public ::testing::Test {
 protected:
  DependencyParserTest() : parser_(lexicon_) {}

  DependencyTree Parse(const std::string& q) {
    auto tree = parser_.Parse(q);
    EXPECT_TRUE(tree.ok()) << q << ": " << tree.status().ToString();
    return std::move(tree).value();
  }

  // Index of the first token whose text equals w.
  static int NodeOf(const DependencyTree& t, const std::string& w) {
    for (int i = 0; i < static_cast<int>(t.size()); ++i) {
      if (t.node(i).token.text == w) return i;
    }
    ADD_FAILURE() << "token not found: " << w;
    return -1;
  }

  static void ExpectDep(const DependencyTree& t, const std::string& child,
                        const std::string& parent, std::string_view rel) {
    int c = NodeOf(t, child);
    int p = NodeOf(t, parent);
    ASSERT_GE(c, 0);
    ASSERT_GE(p, 0);
    EXPECT_EQ(t.node(c).parent, p)
        << child << " should attach to " << parent << "\n"
        << t.ToString();
    EXPECT_EQ(t.node(c).relation, rel) << t.ToString();
  }

  Lexicon lexicon_;
  DependencyParser parser_;
};

TEST_F(DependencyParserTest, RunningExampleMatchesFigure5) {
  DependencyTree t =
      Parse("Who was married to an actor that played in Philadelphia ?");
  EXPECT_EQ(t.node(t.root()).token.text, "married");
  ExpectDep(t, "Who", "married", dep::kNsubjPass);
  ExpectDep(t, "was", "married", dep::kAuxPass);
  ExpectDep(t, "to", "married", dep::kPrep);
  ExpectDep(t, "actor", "to", dep::kPobj);
  ExpectDep(t, "played", "actor", dep::kRcmod);
  ExpectDep(t, "that", "played", dep::kNsubj);
  ExpectDep(t, "in", "played", dep::kPrep);
  ExpectDep(t, "Philadelphia", "in", dep::kPobj);
}

TEST_F(DependencyParserTest, FrontedAndStrandedPrepositionsGiveSameTree) {
  DependencyTree stranded =
      Parse("Which movies did Antonio Banderas star in ?");
  DependencyTree fronted = Parse("In which movies did Antonio Banderas star ?");
  for (const DependencyTree* t : {&stranded, &fronted}) {
    EXPECT_EQ(t->node(t->root()).token.lower, "star");
    int in = NodeOf(*t, t == &stranded ? "in" : "In");
    int movies = NodeOf(*t, "movies");
    EXPECT_EQ(t->node(in).parent, t->root());
    EXPECT_EQ(t->node(movies).parent, in);
    EXPECT_EQ(t->node(movies).relation, dep::kPobj);
    int banderas = NodeOf(*t, "Banderas");
    EXPECT_EQ(t->node(banderas).relation, dep::kNsubj);
  }
}

TEST_F(DependencyParserTest, CopularQuestion) {
  DependencyTree t = Parse("Who is the mayor of Berlin ?");
  EXPECT_EQ(t.node(t.root()).token.text, "mayor");
  ExpectDep(t, "Who", "mayor", dep::kNsubj);
  ExpectDep(t, "is", "mayor", dep::kCop);
  ExpectDep(t, "the", "mayor", dep::kDet);
  ExpectDep(t, "of", "mayor", dep::kPrep);
  ExpectDep(t, "Berlin", "of", dep::kPobj);
}

TEST_F(DependencyParserTest, ImperativeWithParticipialModifier) {
  DependencyTree t =
      Parse("Give me all movies directed by Francis Ford Coppola .");
  EXPECT_EQ(t.node(t.root()).token.text, "Give");
  ExpectDep(t, "me", "Give", dep::kIobj);
  ExpectDep(t, "movies", "Give", dep::kDobj);
  ExpectDep(t, "directed", "movies", dep::kPartmod);
  ExpectDep(t, "by", "directed", dep::kPrep);
  ExpectDep(t, "Coppola", "by", dep::kPobj);
  ExpectDep(t, "Francis", "Coppola", dep::kNn);
}

TEST_F(DependencyParserTest, AdjectivePredicate) {
  DependencyTree t = Parse("How tall is Michael Jordan ?");
  EXPECT_EQ(t.node(t.root()).token.text, "tall");
  ExpectDep(t, "How", "tall", dep::kAdvmod);
  ExpectDep(t, "is", "tall", dep::kCop);
  ExpectDep(t, "Jordan", "tall", dep::kNsubj);
}

TEST_F(DependencyParserTest, YesNoCopular) {
  DependencyTree t = Parse("Is Michelle Obama the wife of Barack Obama ?");
  EXPECT_EQ(t.node(t.root()).token.text, "wife");
  ExpectDep(t, "Is", "wife", dep::kCop);
  int michelle_obama = 2;  // "Obama" of Michelle
  EXPECT_EQ(t.node(michelle_obama).relation, dep::kNsubj);
}

TEST_F(DependencyParserTest, CoordinatedVerbPhrases) {
  DependencyTree t =
      Parse("Give me all people that were born in Vienna and died in Berlin ?");
  ExpectDep(t, "born", "people", dep::kRcmod);
  ExpectDep(t, "that", "born", dep::kNsubjPass);
  ExpectDep(t, "died", "born", dep::kConj);
  ExpectDep(t, "and", "born", dep::kCc);
  // "Berlin" hangs off the SECOND "in", which itself attaches to "died".
  int berlin = NodeOf(t, "Berlin");
  ASSERT_GE(berlin, 0);
  EXPECT_EQ(t.node(berlin).relation, dep::kPobj);
  int in2 = t.node(berlin).parent;
  ASSERT_GE(in2, 0);
  EXPECT_EQ(t.node(in2).token.lower, "in");
  EXPECT_EQ(t.node(in2).parent, NodeOf(t, "died"));
}

TEST_F(DependencyParserTest, SubjectWithEmbeddedPp) {
  DependencyTree t = Parse("Which country does the creator of Miffy come from ?");
  EXPECT_EQ(t.node(t.root()).token.text, "come");
  ExpectDep(t, "creator", "come", dep::kNsubj);
  ExpectDep(t, "of", "creator", dep::kPrep);
  ExpectDep(t, "Miffy", "of", dep::kPobj);
  ExpectDep(t, "country", "from", dep::kPobj);
}

TEST_F(DependencyParserTest, SimpleWhSubjectVerbObject) {
  DependencyTree t = Parse("Who developed Minecraft ?");
  EXPECT_EQ(t.node(t.root()).token.text, "developed");
  ExpectDep(t, "Who", "developed", dep::kNsubj);
  ExpectDep(t, "Minecraft", "developed", dep::kDobj);
}

TEST_F(DependencyParserTest, WhenQuestionAdvmod) {
  DependencyTree t = Parse("When did Michael Jackson die ?");
  EXPECT_EQ(t.node(t.root()).token.lower, "die");
  ExpectDep(t, "When", "die", dep::kAdvmod);
  ExpectDep(t, "Jackson", "die", dep::kNsubj);
}

TEST_F(DependencyParserTest, NounAttachedPp) {
  DependencyTree t = Parse("Give me all companies in Munich .");
  ExpectDep(t, "in", "companies", dep::kPrep);
  ExpectDep(t, "Munich", "in", dep::kPobj);
}

TEST_F(DependencyParserTest, PassiveWithSubjectPp) {
  DependencyTree t = Parse("Which books by Kerouac were published by Viking Press ?");
  EXPECT_EQ(t.node(t.root()).token.text, "published");
  ExpectDep(t, "books", "published", dep::kNsubjPass);
  // First "by" modifies "books" (pobj Kerouac); the second modifies the
  // verb (pobj Press).
  int kerouac = NodeOf(t, "Kerouac");
  int press = NodeOf(t, "Press");
  EXPECT_EQ(t.node(kerouac).relation, dep::kPobj);
  EXPECT_EQ(t.node(t.node(kerouac).parent).parent, NodeOf(t, "books"));
  EXPECT_EQ(t.node(press).relation, dep::kPobj);
  EXPECT_EQ(t.node(t.node(press).parent).parent, t.root());
}

TEST_F(DependencyParserTest, EmptyQuestionFails) {
  EXPECT_FALSE(parser_.Parse("").ok());
  EXPECT_FALSE(parser_.Parse("???").ok());
}

TEST_F(DependencyParserTest, PunctuationAttachesToRoot) {
  DependencyTree t = Parse("Who developed Minecraft ?");
  int q = NodeOf(t, "?");
  EXPECT_EQ(t.node(q).parent, t.root());
  EXPECT_EQ(t.node(q).relation, dep::kPunct);
}

// Property: every question of the generated workload parses into a valid
// single-rooted tree (a statistical parser's totality, rule-based here).
class WorkloadParseTest : public ::testing::TestWithParam<size_t> {};

TEST_P(WorkloadParseTest, WorkloadQuestionsParseToValidTrees) {
  const auto& world = ganswer::testing::World();
  DependencyParser parser(world.lexicon);
  size_t chunk = GetParam();
  for (size_t i = chunk; i < world.workload.size(); i += 4) {
    const auto& q = world.workload[i];
    auto tree = parser.Parse(q.text);
    ASSERT_TRUE(tree.ok()) << q.text << ": " << tree.status().ToString();
    EXPECT_TRUE(tree->Validate().ok()) << q.text << "\n" << tree->ToString();
    EXPECT_EQ(tree->size(), Tokenizer::Tokenize(q.text).size());
  }
}

INSTANTIATE_TEST_SUITE_P(Chunks, WorkloadParseTest,
                         ::testing::Values(0, 1, 2, 3));

}  // namespace
}  // namespace nlp
}  // namespace ganswer
