#include "nlp/coreference.h"

#include <gtest/gtest.h>

#include "nlp/dependency_parser.h"

namespace ganswer {
namespace nlp {
namespace {

class CoreferenceTest : public ::testing::Test {
 protected:
  CoreferenceTest() : parser_(lexicon_) {}

  DependencyTree Parse(const std::string& q) {
    auto tree = parser_.Parse(q);
    EXPECT_TRUE(tree.ok()) << tree.status().ToString();
    return std::move(tree).value();
  }

  static int NodeOf(const DependencyTree& t, const std::string& w) {
    for (int i = 0; i < static_cast<int>(t.size()); ++i) {
      if (t.node(i).token.text == w) return i;
    }
    return -1;
  }

  Lexicon lexicon_;
  DependencyParser parser_;
};

TEST_F(CoreferenceTest, RelativeThatResolvesToModifiedNoun) {
  DependencyTree t =
      Parse("Who was married to an actor that played in Philadelphia ?");
  int that = NodeOf(t, "that");
  int actor = NodeOf(t, "actor");
  EXPECT_EQ(CoreferenceResolver::Antecedent(t, that), actor);
}

TEST_F(CoreferenceTest, MainClauseWhIsNotAnaphoric) {
  DependencyTree t = Parse("Who developed Minecraft ?");
  int who = NodeOf(t, "Who");
  EXPECT_EQ(CoreferenceResolver::Antecedent(t, who), -1);
}

TEST_F(CoreferenceTest, DeepRelativePronounStillResolves) {
  DependencyTree t =
      Parse("Give me all people that were born in Vienna and died in Berlin ?");
  int that = NodeOf(t, "that");
  int people = NodeOf(t, "people");
  EXPECT_EQ(CoreferenceResolver::Antecedent(t, that), people);
}

TEST_F(CoreferenceTest, NonPronounReturnsMinusOne) {
  DependencyTree t = Parse("Who is the mayor of Berlin ?");
  EXPECT_EQ(CoreferenceResolver::Antecedent(t, NodeOf(t, "Berlin")), -1);
  EXPECT_EQ(CoreferenceResolver::Antecedent(t, NodeOf(t, "mayor")), -1);
}

TEST_F(CoreferenceTest, OutOfRangeIsSafe) {
  DependencyTree t = Parse("Who developed Minecraft ?");
  EXPECT_EQ(CoreferenceResolver::Antecedent(t, -5), -1);
  EXPECT_EQ(CoreferenceResolver::Antecedent(t, 1000), -1);
}

}  // namespace
}  // namespace nlp
}  // namespace ganswer
