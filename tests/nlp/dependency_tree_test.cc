#include "nlp/dependency_tree.h"

#include <gtest/gtest.h>

#include "nlp/tokenizer.h"

namespace ganswer {
namespace nlp {
namespace {

DependencyTree MakeTree(const std::string& text) {
  return DependencyTree(Tokenizer::Tokenize(text));
}

TEST(DependencyTreeTest, AttachAndValidate) {
  DependencyTree t = MakeTree("a b c d");
  t.SetRoot(1);
  t.Attach(0, 1, dep::kNsubj);
  t.Attach(2, 1, dep::kDobj);
  t.Attach(3, 2, dep::kNn);
  EXPECT_TRUE(t.Validate().ok());
  EXPECT_EQ(t.node(0).parent, 1);
  EXPECT_EQ(t.node(0).relation, dep::kNsubj);
  EXPECT_EQ(t.node(1).children.size(), 2u);
}

TEST(DependencyTreeTest, ValidateRejectsUnattachedNodes) {
  DependencyTree t = MakeTree("a b c");
  t.SetRoot(0);
  t.Attach(1, 0, dep::kDobj);
  Status s = t.Validate();
  EXPECT_TRUE(s.IsInternal());
  EXPECT_NE(s.message().find("unattached"), std::string::npos);
}

TEST(DependencyTreeTest, ValidateRejectsMissingRoot) {
  DependencyTree t = MakeTree("a b");
  EXPECT_FALSE(t.Validate().ok());
}

TEST(DependencyTreeTest, ReattachMovesChild) {
  DependencyTree t = MakeTree("a b c");
  t.SetRoot(0);
  t.Attach(1, 0, dep::kDobj);
  t.Attach(2, 1, dep::kNn);
  // Move node 2 under the root.
  t.Attach(2, 0, dep::kDep);
  EXPECT_TRUE(t.Validate().ok());
  EXPECT_EQ(t.node(2).parent, 0);
  EXPECT_TRUE(t.node(1).children.empty());
}

TEST(DependencyTreeTest, SubtreeAndDescendants) {
  DependencyTree t = MakeTree("a b c d e");
  t.SetRoot(0);
  t.Attach(1, 0, dep::kDobj);
  t.Attach(2, 1, dep::kNn);
  t.Attach(3, 1, dep::kAmod);
  t.Attach(4, 0, dep::kPunct);
  EXPECT_EQ(t.Subtree(1), (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(t.Subtree(0), (std::vector<int>{0, 1, 2, 3, 4}));
  EXPECT_TRUE(t.IsDescendant(2, 0));
  EXPECT_TRUE(t.IsDescendant(2, 1));
  EXPECT_FALSE(t.IsDescendant(4, 1));
  EXPECT_TRUE(t.IsDescendant(1, 1)) << "a node descends from itself";
}

TEST(DependencyTreeTest, ToStringShowsStructure) {
  DependencyTree t = MakeTree("runs dog");
  t.SetRoot(0);
  t.Attach(1, 0, dep::kNsubj);
  std::string s = t.ToString();
  EXPECT_NE(s.find("runs [root"), std::string::npos) << s;
  EXPECT_NE(s.find("  dog [nsubj"), std::string::npos) << s;
}

TEST(DependencyTreeTest, SubjectObjectRelationSets) {
  for (const char* r : {"subj", "nsubj", "nsubjpass", "csubj", "csubjpass",
                        "xsubj", "poss"}) {
    EXPECT_TRUE(dep::IsSubjectLike(r)) << r;
  }
  for (const char* r : {"obj", "pobj", "dobj", "iobj"}) {
    EXPECT_TRUE(dep::IsObjectLike(r)) << r;
  }
  EXPECT_FALSE(dep::IsSubjectLike("dobj"));
  EXPECT_FALSE(dep::IsObjectLike("nsubj"));
  EXPECT_TRUE(dep::IsLightRelation(dep::kPrep));
  EXPECT_TRUE(dep::IsLightRelation(dep::kAuxPass));
  EXPECT_FALSE(dep::IsLightRelation(dep::kDobj));
}

TEST(DependencyTreeTest, EmptyTreeIsValid) {
  DependencyTree t;
  EXPECT_TRUE(t.Validate().ok());
  EXPECT_TRUE(t.empty());
}

}  // namespace
}  // namespace nlp
}  // namespace ganswer
