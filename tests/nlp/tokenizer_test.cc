#include "nlp/tokenizer.h"

#include <gtest/gtest.h>

namespace ganswer {
namespace nlp {
namespace {

std::vector<std::string> Texts(const std::vector<Token>& toks) {
  std::vector<std::string> out;
  for (const Token& t : toks) out.push_back(t.text);
  return out;
}

TEST(TokenizerTest, SplitsWordsAndPunctuation) {
  auto toks = Tokenizer::Tokenize("Who is the mayor of Berlin?");
  EXPECT_EQ(Texts(toks), (std::vector<std::string>{"Who", "is", "the", "mayor",
                                                   "of", "Berlin", "?"}));
}

TEST(TokenizerTest, PunctuationTokensAreTagged) {
  auto toks = Tokenizer::Tokenize("Really ?");
  ASSERT_EQ(toks.size(), 2u);
  EXPECT_EQ(toks[1].pos, PosTag::kPunct);
}

TEST(TokenizerTest, LowercaseIsFilled) {
  auto toks = Tokenizer::Tokenize("Antonio Banderas");
  EXPECT_EQ(toks[0].lower, "antonio");
  EXPECT_EQ(toks[1].lower, "banderas");
}

TEST(TokenizerTest, FirstTokenIsSentenceInitial) {
  auto toks = Tokenizer::Tokenize("Give me all movies .");
  EXPECT_TRUE(toks[0].sentence_initial);
  for (size_t i = 1; i < toks.size(); ++i) {
    EXPECT_FALSE(toks[i].sentence_initial);
  }
}

TEST(TokenizerTest, StripsPossessiveClitic) {
  auto toks = Tokenizer::Tokenize("Obama's wife");
  EXPECT_EQ(toks[0].text, "Obama");
  EXPECT_EQ(toks[1].text, "wife");
}

TEST(TokenizerTest, KeepsHyphensAndDigitsInsideWords) {
  auto toks = Tokenizer::Tokenize("76ers played in mid-town");
  EXPECT_EQ(toks[0].text, "76ers");
  EXPECT_EQ(toks[3].text, "mid-town");
}

TEST(TokenizerTest, EmptyAndWhitespaceInput) {
  EXPECT_TRUE(Tokenizer::Tokenize("").empty());
  EXPECT_TRUE(Tokenizer::Tokenize("   \t\n").empty());
}

TEST(TokenizerTest, MultiplePunctuationSeparated) {
  auto toks = Tokenizer::Tokenize("really?!");
  EXPECT_EQ(Texts(toks), (std::vector<std::string>{"really", "?", "!"}));
}

}  // namespace
}  // namespace nlp
}  // namespace ganswer
