#include "nlp/pos_tagger.h"

#include <gtest/gtest.h>

#include "nlp/tokenizer.h"

namespace ganswer {
namespace nlp {
namespace {

std::vector<Token> Tag(const std::string& text) {
  static Lexicon lexicon;
  PosTagger tagger(lexicon);
  std::vector<Token> toks = Tokenizer::Tokenize(text);
  tagger.Tag(&toks);
  return toks;
}

std::vector<PosTag> Tags(const std::string& text) {
  std::vector<PosTag> out;
  for (const Token& t : Tag(text)) out.push_back(t.pos);
  return out;
}

TEST(PosTaggerTest, WhQuestion) {
  EXPECT_EQ(Tags("Who is the mayor of Berlin ?"),
            (std::vector<PosTag>{PosTag::kWhWord, PosTag::kAux,
                                 PosTag::kDeterminer, PosTag::kNoun,
                                 PosTag::kPreposition, PosTag::kProperNoun,
                                 PosTag::kPunct}));
}

TEST(PosTaggerTest, PassiveWithParticiple) {
  auto toks = Tag("Who was married to an actor ?");
  EXPECT_EQ(toks[1].pos, PosTag::kAux);
  EXPECT_EQ(toks[2].pos, PosTag::kVerb);
  EXPECT_TRUE(toks[2].is_participle);
  EXPECT_EQ(toks[2].lemma, "marry");
}

TEST(PosTaggerTest, ThatAsRelativePronounAfterNoun) {
  auto toks = Tag("an actor that played in Philadelphia");
  EXPECT_EQ(toks[2].pos, PosTag::kPronoun) << "'that' after noun is relative";
  auto toks2 = Tag("that actor played");
  EXPECT_EQ(toks2[0].pos, PosTag::kDeterminer) << "'that' sentence-initial";
}

TEST(PosTaggerTest, CapitalizedMidSentenceIsProperNoun) {
  auto toks = Tag("films starring Antonio Banderas");
  EXPECT_EQ(toks[2].pos, PosTag::kProperNoun);
  EXPECT_EQ(toks[3].pos, PosTag::kProperNoun);
}

TEST(PosTaggerTest, SentenceInitialNameIsProperNoun) {
  auto toks = Tag("Sean Parnell is the governor");
  EXPECT_EQ(toks[0].pos, PosTag::kProperNoun);
}

TEST(PosTaggerTest, SentenceInitialVerbStaysVerb) {
  auto toks = Tag("Give me all movies");
  EXPECT_EQ(toks[0].pos, PosTag::kVerb);
}

TEST(PosTaggerTest, NounVerbAmbiguityResolvedByContext) {
  // "flow" after a proper noun is a verb; "name" after a noun compound is a
  // noun.
  auto flow = Tag("does the Weser flow through cities ?");
  EXPECT_EQ(flow[3].pos, PosTag::kVerb);
  auto name = Tag("the birth name of Angela");
  EXPECT_EQ(name[2].pos, PosTag::kNoun);
}

TEST(PosTaggerTest, NumbersAndConjunctions) {
  auto toks = Tag("born in 1950 and died");
  EXPECT_EQ(toks[2].pos, PosTag::kNumber);
  EXPECT_EQ(toks[3].pos, PosTag::kConj);
}

TEST(PosTaggerTest, HowIsWhWord) {
  auto toks = Tag("How tall is Michael Jordan ?");
  EXPECT_EQ(toks[0].pos, PosTag::kWhWord);
  EXPECT_EQ(toks[1].pos, PosTag::kAdjective);
}

TEST(PosTaggerTest, UnknownLowercaseWordDefaultsToNoun) {
  auto toks = Tag("the blorple of Berlin");
  EXPECT_EQ(toks[1].pos, PosTag::kNoun);
}

TEST(PosTaggerTest, LemmaFilledForAllTokens) {
  for (const Token& t : Tag("Which movies did Antonio Banderas star in ?")) {
    EXPECT_FALSE(t.lemma.empty()) << t.text;
  }
}

}  // namespace
}  // namespace nlp
}  // namespace ganswer
