#ifndef GANSWER_TESTS_TEST_SUPPORT_H_
#define GANSWER_TESTS_TEST_SUPPORT_H_

#include <algorithm>
#include <cstdlib>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/random.h"
#include "datagen/kb_generator.h"
#include "datagen/phrase_dataset_generator.h"
#include "datagen/workload.h"
#include "nlp/lexicon.h"
#include "paraphrase/dictionary_builder.h"
#include "paraphrase/paraphrase_dictionary.h"
#include "rdf/rdf_graph.h"

namespace ganswer {
namespace testing {

// ---------------------------------------------------------------------------
// Seed plumbing (property tests / randomized oracles)
// ---------------------------------------------------------------------------

/// The GANSWER_PROP_SEED environment override, when set to a parsable
/// integer. Property tests run exactly this one seed instead of their fixed
/// seed range, which is how a failure printed as
/// "GANSWER_PROP_SEED=<seed>" is replayed.
inline std::optional<uint64_t> PropSeedOverride() {
  const char* env = std::getenv("GANSWER_PROP_SEED");
  if (env == nullptr || *env == '\0') return std::nullopt;
  char* end = nullptr;
  unsigned long long v = std::strtoull(env, &end, 10);
  if (end == env || *end != '\0') return std::nullopt;
  return static_cast<uint64_t>(v);
}

// ---------------------------------------------------------------------------
// Random raw graphs (oracle / differential tests)
// ---------------------------------------------------------------------------

/// One triple as added, in text form. The raw list is the ground truth the
/// reference oracles evaluate against, independent of RdfGraph's CSR.
struct RawTriple {
  std::string s;
  std::string p;
  std::string o;
  rdf::TermKind object_kind = rdf::TermKind::kIri;

  friend bool operator==(const RawTriple&, const RawTriple&) = default;
  friend auto operator<=>(const RawTriple&, const RawTriple&) = default;
};

struct RandomGraphOptions {
  size_t num_vertices = 10;
  size_t num_predicates = 3;
  size_t num_triples = 24;
  /// Class vertices "C0".."C{n-1}"; typed vertices get rdf:type edges.
  size_t num_classes = 2;
  /// Probability that a vertex receives an rdf:type triple.
  double type_rate = 0.3;
  /// Probability that a triple's object is a literal term.
  double literal_rate = 0.0;
  /// Probability that a generated triple duplicates the previous one
  /// (exercises Finalize()'s dedup).
  double duplicate_rate = 0.1;
};

struct RandomGraphData {
  rdf::RdfGraph graph;
  /// Deduplicated, sorted list of exactly the triples added.
  std::vector<RawTriple> triples;
};

/// Deterministic random multigraph: vertices "v0"..,"p0".. predicates,
/// optional classes and literals. Same seed + options => same graph,
/// byte for byte.
inline RandomGraphData BuildRandomGraph(uint64_t seed,
                                        const RandomGraphOptions& opts = {}) {
  Rng rng(seed);
  RandomGraphData out;
  std::vector<std::string> vs, ps;
  for (size_t i = 0; i < opts.num_vertices; ++i) {
    vs.push_back("v" + std::to_string(i));
  }
  for (size_t i = 0; i < opts.num_predicates; ++i) {
    ps.push_back("p" + std::to_string(i));
  }

  auto add = [&](RawTriple t) {
    out.graph.AddTriple(t.s, t.p, t.o, t.object_kind);
    out.triples.push_back(std::move(t));
  };

  for (size_t i = 0; i < opts.num_triples; ++i) {
    if (!out.triples.empty() && rng.Chance(opts.duplicate_rate)) {
      add(out.triples.back());
      continue;
    }
    RawTriple t;
    t.s = rng.Pick(vs);
    t.p = rng.Pick(ps);
    if (rng.Chance(opts.literal_rate)) {
      t.o = "lit" + std::to_string(rng.Next(opts.num_vertices));
      t.object_kind = rdf::TermKind::kLiteral;
    } else {
      t.o = rng.Pick(vs);
    }
    add(std::move(t));
  }
  if (opts.num_classes > 0) {
    for (const std::string& v : vs) {
      if (!rng.Chance(opts.type_rate)) continue;
      RawTriple t{v, std::string(rdf::kTypePredicate),
                  "C" + std::to_string(rng.Next(opts.num_classes)),
                  rdf::TermKind::kIri};
      add(std::move(t));
    }
  }
  std::sort(out.triples.begin(), out.triples.end());
  out.triples.erase(std::unique(out.triples.begin(), out.triples.end()),
                    out.triples.end());
  if (!out.graph.Finalize().ok()) std::abort();
  return out;
}

// ---------------------------------------------------------------------------
// Random generated KBs (pipeline-level tests)
// ---------------------------------------------------------------------------

/// Scaled-down KbGenerator options shared by the determinism / property
/// tests: big enough that mining and matching have real work, small enough
/// that a test binary can afford several generations.
inline datagen::KbGenerator::Options SmallKbOptions(uint64_t seed = 42) {
  datagen::KbGenerator::Options opt;
  opt.seed = seed;
  opt.num_families = 80;
  opt.num_films = 60;
  opt.num_cities = 30;
  opt.num_companies = 30;
  return opt;
}

/// A complete mini QA world — KB, mined dictionary, gold workload — built
/// from one seed. Everything downstream of the seed is deterministic.
struct MiniWorld {
  datagen::KbGenerator::GeneratedKb kb;
  nlp::Lexicon lexicon;
  std::unique_ptr<paraphrase::ParaphraseDictionary> dict;
  std::vector<datagen::GoldQuestion> workload;
};

inline std::unique_ptr<MiniWorld> BuildMiniWorld(uint64_t seed) {
  auto w = std::make_unique<MiniWorld>();
  auto kb = datagen::KbGenerator::Generate(SmallKbOptions(seed));
  if (!kb.ok()) std::abort();
  w->kb = std::move(kb).value();
  datagen::PhraseDatasetGenerator::Options popt;
  popt.num_filler_phrases = 25;
  auto phrases = datagen::PhraseDatasetGenerator::Generate(w->kb, popt);
  auto dataset = datagen::PhraseDatasetGenerator::StripGold(phrases);
  w->dict = std::make_unique<paraphrase::ParaphraseDictionary>(&w->lexicon);
  paraphrase::DictionaryBuilder::Options bopt;
  bopt.max_path_length = 3;
  paraphrase::DictionaryBuilder builder(bopt);
  if (!builder.Build(w->kb.graph, dataset, w->dict.get()).ok()) std::abort();
  datagen::WorkloadGenerator::Options wopt;
  wopt.seed = seed + 1;
  w->workload = datagen::WorkloadGenerator::Generate(w->kb, wopt);
  return w;
}

// ---------------------------------------------------------------------------
// The default shared world (built once per test binary)
// ---------------------------------------------------------------------------

/// Shared, lazily built artifacts so a test binary generates the KB and
/// mines the dictionary once. All pieces are deterministic (fixed seeds).
struct SharedWorld {
  datagen::KbGenerator::GeneratedKb kb;
  std::vector<datagen::PhraseWithGold> phrases;
  nlp::Lexicon lexicon;
  /// Raw Algorithm-1 output.
  std::unique_ptr<paraphrase::ParaphraseDictionary> mined;
  /// After the simulated human-verification pass (the online dictionary).
  std::unique_ptr<paraphrase::ParaphraseDictionary> verified;
  std::vector<datagen::GoldQuestion> workload;
};

inline const SharedWorld& World() {
  static SharedWorld* world = [] {
    auto* w = new SharedWorld();
    datagen::KbGenerator::Options kopt;
    auto kb = datagen::KbGenerator::Generate(kopt);
    if (!kb.ok()) std::abort();
    w->kb = std::move(kb).value();
    w->phrases = datagen::PhraseDatasetGenerator::Generate(w->kb, {});
    auto dataset = datagen::PhraseDatasetGenerator::StripGold(w->phrases);
    w->mined = std::make_unique<paraphrase::ParaphraseDictionary>(&w->lexicon);
    paraphrase::DictionaryBuilder::Options bopt;
    bopt.max_path_length = 3;
    paraphrase::DictionaryBuilder builder(bopt);
    if (!builder.Build(w->kb.graph, dataset, w->mined.get()).ok()) {
      std::abort();
    }
    w->verified =
        std::make_unique<paraphrase::ParaphraseDictionary>(&w->lexicon);
    datagen::VerifyDictionary(w->phrases, w->kb.graph, *w->mined,
                              w->verified.get());
    w->workload = datagen::WorkloadGenerator::Generate(w->kb, {});
    return w;
  }();
  return *world;
}

}  // namespace testing
}  // namespace ganswer

#endif  // GANSWER_TESTS_TEST_SUPPORT_H_
