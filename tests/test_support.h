#ifndef GANSWER_TESTS_TEST_SUPPORT_H_
#define GANSWER_TESTS_TEST_SUPPORT_H_

#include <memory>

#include "datagen/kb_generator.h"
#include "datagen/phrase_dataset_generator.h"
#include "datagen/workload.h"
#include "nlp/lexicon.h"
#include "paraphrase/dictionary_builder.h"
#include "paraphrase/paraphrase_dictionary.h"

namespace ganswer {
namespace testing {

/// Shared, lazily built artifacts so a test binary generates the KB and
/// mines the dictionary once. All pieces are deterministic (fixed seeds).
struct SharedWorld {
  datagen::KbGenerator::GeneratedKb kb;
  std::vector<datagen::PhraseWithGold> phrases;
  nlp::Lexicon lexicon;
  /// Raw Algorithm-1 output.
  std::unique_ptr<paraphrase::ParaphraseDictionary> mined;
  /// After the simulated human-verification pass (the online dictionary).
  std::unique_ptr<paraphrase::ParaphraseDictionary> verified;
  std::vector<datagen::GoldQuestion> workload;
};

inline const SharedWorld& World() {
  static SharedWorld* world = [] {
    auto* w = new SharedWorld();
    datagen::KbGenerator::Options kopt;
    auto kb = datagen::KbGenerator::Generate(kopt);
    if (!kb.ok()) std::abort();
    w->kb = std::move(kb).value();
    w->phrases = datagen::PhraseDatasetGenerator::Generate(w->kb, {});
    auto dataset = datagen::PhraseDatasetGenerator::StripGold(w->phrases);
    w->mined = std::make_unique<paraphrase::ParaphraseDictionary>(&w->lexicon);
    paraphrase::DictionaryBuilder::Options bopt;
    bopt.max_path_length = 3;
    paraphrase::DictionaryBuilder builder(bopt);
    if (!builder.Build(w->kb.graph, dataset, w->mined.get()).ok()) {
      std::abort();
    }
    w->verified =
        std::make_unique<paraphrase::ParaphraseDictionary>(&w->lexicon);
    datagen::VerifyDictionary(w->phrases, w->kb.graph, *w->mined,
                              w->verified.get());
    w->workload = datagen::WorkloadGenerator::Generate(w->kb, {});
    return w;
  }();
  return *world;
}

}  // namespace testing
}  // namespace ganswer

#endif  // GANSWER_TESTS_TEST_SUPPORT_H_
