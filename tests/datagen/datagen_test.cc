#include <gtest/gtest.h>

#include <cstring>
#include <sstream>
#include <map>
#include <set>

#include "common/string_util.h"

#include "datagen/kb_generator.h"
#include "datagen/phrase_dataset_generator.h"
#include "datagen/schema.h"
#include "datagen/workload.h"
#include "test_support.h"

namespace ganswer {
namespace datagen {
namespace {

using ganswer::testing::World;

TEST(KbGeneratorTest, DeterministicForSeed) {
  KbGenerator::Options opt;
  opt.num_families = 20;
  opt.num_films = 10;
  auto a = KbGenerator::Generate(opt);
  auto b = KbGenerator::Generate(opt);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->graph.NumTriples(), b->graph.NumTriples());
  EXPECT_EQ(a->people, b->people);
  EXPECT_EQ(a->films, b->films);
}

TEST(KbGeneratorTest, SeedEntitiesArePresent) {
  const auto& kb = World().kb;
  for (const char* e :
       {"Antonio_Banderas", "Melanie_Griffith", "Philadelphia",
        "Philadelphia_(film)", "Philadelphia_76ers", "Berlin",
        "Klaus_Wowereit", "Minecraft", "Mojang", "Mount_Everest",
        "John_F._Kennedy", "Ted_Kennedy", "The_Prodigy"}) {
    EXPECT_TRUE(kb.graph.Find(e).has_value()) << e;
  }
}

TEST(KbGeneratorTest, RunningExampleSubgraphIsExact) {
  const auto& g = World().kb.graph;
  auto mel = *g.Find("Melanie_Griffith");
  auto ant = *g.Find("Antonio_Banderas");
  auto film = *g.Find("Philadelphia_(film)");
  EXPECT_TRUE(g.HasTriple(mel, *g.Find("spouse"), ant));
  EXPECT_TRUE(g.HasTriple(film, *g.Find("starring"), ant));
  EXPECT_TRUE(g.IsInstanceOf(ant, *g.Find("Actor")));
}

TEST(KbGeneratorTest, EveryEntityRosterMemberIsTyped) {
  const auto& kb = World().kb;
  auto check = [&](const std::vector<std::string>& roster,
                   std::string_view cls_name) {
    auto cls = kb.graph.Find(cls_name);
    ASSERT_TRUE(cls.has_value());
    for (const std::string& e : roster) {
      auto id = kb.graph.Find(e);
      ASSERT_TRUE(id.has_value()) << e;
      EXPECT_TRUE(kb.graph.IsInstanceOf(*id, *cls)) << e;
    }
  };
  check(kb.films, cls::kFilm);
  check(kb.cities, cls::kCity);
  check(kb.countries, cls::kCountry);
  check(kb.companies, cls::kCompany);
  check(kb.actors, cls::kActor);
  check(kb.rivers, cls::kRiver);
}

TEST(KbGeneratorTest, ScaleKnobsControlSize) {
  KbGenerator::Options small;
  small.num_families = 10;
  small.num_films = 5;
  small.num_cities = 10;
  small.num_companies = 5;
  KbGenerator::Options big = small;
  big.num_families = 100;
  auto s = KbGenerator::Generate(small);
  auto b = KbGenerator::Generate(big);
  ASSERT_TRUE(s.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_GT(b->graph.NumTriples(), s->graph.NumTriples());
  EXPECT_GT(b->people.size(), s->people.size());
}

TEST(KbGeneratorTest, AmbiguousFilmNamesExist) {
  const auto& kb = World().kb;
  size_t ambiguous = 0;
  for (const std::string& f : kb.films) {
    if (f.find("_(film)") != std::string::npos) ++ambiguous;
  }
  EXPECT_GT(ambiguous, 5u) << "city-named films drive linker ambiguity";
}

TEST(PhraseDatasetTest, SupportPairsMostlyInGraph) {
  const auto& world = World();
  size_t total = 0, in_graph = 0;
  for (const auto& spec : world.phrases) {
    for (const auto& [a, b] : spec.phrase.support) {
      ++total;
      if (world.kb.graph.Find(a) && world.kb.graph.Find(b)) ++in_graph;
    }
  }
  ASSERT_GT(total, 100u);
  // The paper reports ~67% of Patty pairs occur in DBpedia; ours are
  // sampled from the graph with noise, so well above that.
  EXPECT_GT(static_cast<double>(in_graph) / total, 0.67);
}

TEST(PhraseDatasetTest, GoldPathsResolveInGraph) {
  const auto& world = World();
  for (const auto& spec : world.phrases) {
    for (const auto& gold : spec.gold) {
      EXPECT_TRUE(GoldToPath(gold, world.kb.graph).has_value())
          << spec.phrase.text;
    }
  }
}

TEST(PhraseDatasetTest, CorePhrasesIncludePaperExamples) {
  const auto& world = World();
  std::set<std::string> texts;
  for (const auto& spec : world.phrases) texts.insert(spec.phrase.text);
  for (const char* p : {"be married to", "play in", "uncle of", "be born in",
                        "mayor of"}) {
    EXPECT_TRUE(texts.count(p)) << p;
  }
}

TEST(PhraseDatasetTest, PlayInIsAmbiguousByConstruction) {
  const auto& world = World();
  for (const auto& spec : world.phrases) {
    if (spec.phrase.text != "play in") continue;
    EXPECT_EQ(spec.gold.size(), 2u) << "starring and playForTeam";
    return;
  }
  FAIL() << "'play in' missing";
}

TEST(WorkloadTest, GeneratesRequestedQuestionCount) {
  const auto& world = World();
  EXPECT_EQ(world.workload.size(), 100u);
  std::set<std::string> ids;
  for (const auto& q : world.workload) ids.insert(q.id);
  EXPECT_EQ(ids.size(), world.workload.size()) << "unique ids";
}

TEST(WorkloadTest, CategoryMixMatchesPlan) {
  const auto& world = World();
  std::map<QuestionCategory, size_t> counts;
  for (const auto& q : world.workload) ++counts[q.category];
  EXPECT_EQ(counts[QuestionCategory::kSimpleRelation], 30u);
  EXPECT_EQ(counts[QuestionCategory::kTypeConstrained], 15u);
  EXPECT_EQ(counts[QuestionCategory::kMultiEdge], 12u);
  EXPECT_GE(counts[QuestionCategory::kPredicatePath], 4u);
  EXPECT_EQ(counts[QuestionCategory::kYesNo], 8u);
  EXPECT_EQ(counts[QuestionCategory::kLiteral], 12u);
  EXPECT_EQ(counts[QuestionCategory::kAggregation], 8u);
  EXPECT_EQ(counts[QuestionCategory::kEntityHard], 5u);
  EXPECT_EQ(counts[QuestionCategory::kRelationHard], 4u);
}

TEST(WorkloadTest, NonAskQuestionsHaveGoldAnswers) {
  const auto& world = World();
  for (const auto& q : world.workload) {
    if (q.is_ask) continue;
    EXPECT_FALSE(q.gold_answers.empty()) << q.id << " " << q.text;
  }
}

TEST(WorkloadTest, GoldAnswersNameGraphTerms) {
  const auto& world = World();
  for (const auto& q : world.workload) {
    // Count-question golds are cardinalities, not graph terms.
    if (q.category == QuestionCategory::kAggregation &&
        q.text.rfind("How many", 0) == 0) {
      continue;
    }
    for (const std::string& a : q.gold_answers) {
      // Gold answers may be entities or literal values (heights, dates).
      EXPECT_TRUE(world.kb.graph.FindTerm(a).has_value())
          << q.id << " gold '" << a << "'";
    }
  }
}

TEST(WorkloadTest, ExpectedFailuresAreOnlyHardCategories) {
  const auto& world = World();
  for (const auto& q : world.workload) {
    bool hard = q.category == QuestionCategory::kAggregation ||
                q.category == QuestionCategory::kEntityHard ||
                q.category == QuestionCategory::kRelationHard;
    EXPECT_EQ(q.expected_failure, hard) << q.id;
  }
}

TEST(WorkloadTest, DeterministicForSeed) {
  const auto& world = World();
  auto again = WorkloadGenerator::Generate(world.kb, {});
  ASSERT_EQ(again.size(), world.workload.size());
  for (size_t i = 0; i < again.size(); ++i) {
    EXPECT_EQ(again[i].text, world.workload[i].text);
    EXPECT_EQ(again[i].gold_answers, world.workload[i].gold_answers);
  }
}

TEST(WorkloadTest, GoldConsistentWithGraphSpotCheck) {
  const auto& world = World();
  // Re-derive gold for the mayor questions directly.
  for (const auto& q : world.workload) {
    if (q.text.rfind("Who is the mayor of ", 0) != 0) continue;
    std::string mention =
        q.text.substr(strlen("Who is the mayor of "),
                      q.text.size() - strlen("Who is the mayor of ") - 2);
    // The mention maps back to some city whose mayors equal the gold.
    std::string iri = ReplaceAll(mention, " ", "_");
    auto city = world.kb.graph.Find(iri);
    if (!city) continue;  // mention was normalized differently
    std::vector<std::string> expect;
    for (auto m :
         world.kb.graph.Objects(*city, *world.kb.graph.Find("mayor"))) {
      expect.emplace_back(world.kb.graph.dict().text(m));
    }
    std::sort(expect.begin(), expect.end());
    EXPECT_EQ(q.gold_answers, expect) << q.text;
  }
}

TEST(WorkloadIoTest, SaveLoadRoundTrip) {
  const auto& world = World();
  std::ostringstream out;
  ASSERT_TRUE(SaveWorkload(world.workload, &out).ok());
  std::istringstream in(out.str());
  auto loaded = LoadWorkload(&in);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded->size(), world.workload.size());
  for (size_t i = 0; i < loaded->size(); ++i) {
    const GoldQuestion& a = (*loaded)[i];
    const GoldQuestion& b = world.workload[i];
    EXPECT_EQ(a.id, b.id);
    EXPECT_EQ(a.text, b.text);
    EXPECT_EQ(a.category, b.category);
    EXPECT_EQ(a.is_ask, b.is_ask);
    EXPECT_EQ(a.gold_ask, b.gold_ask);
    EXPECT_EQ(a.expected_failure, b.expected_failure);
    EXPECT_EQ(a.gold_answers, b.gold_answers);
  }
}

TEST(WorkloadIoTest, LoadRejectsMalformedLines) {
  std::istringstream missing_cols("Q1\tsimple-relation\t0");
  EXPECT_TRUE(LoadWorkload(&missing_cols).status().IsCorruption());
  std::istringstream bad_category(
      "Q1\tnot-a-category\t0\t0\t0\tWho ?\tX");
  EXPECT_TRUE(LoadWorkload(&bad_category).status().IsCorruption());
}

TEST(WorkloadIoTest, CommentsAndBlankLinesSkipped) {
  std::istringstream in(
      "# header comment\n\n"
      "Q1\tsimple-relation\t0\t0\t0\tWho is X ?\tA|B\n");
  auto loaded = LoadWorkload(&in);
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded->size(), 1u);
  EXPECT_EQ((*loaded)[0].gold_answers,
            (std::vector<std::string>{"A", "B"}));
}

}  // namespace
}  // namespace datagen
}  // namespace ganswer
