#include "datagen/schema_rename.h"

#include <gtest/gtest.h>

#include "paraphrase/dictionary_builder.h"
#include "qa/ganswer.h"
#include "test_support.h"

namespace ganswer {
namespace datagen {
namespace {

using ganswer::testing::World;

TEST(SchemaRenameTest, PreservesStructureAndEntities) {
  const auto& world = World();
  auto renamed = RenameSchema(world.kb, YagoRenames());
  ASSERT_TRUE(renamed.ok()) << renamed.status().ToString();
  EXPECT_EQ(renamed->graph.NumTriples(), world.kb.graph.NumTriples());
  EXPECT_TRUE(renamed->graph.Find("Antonio_Banderas").has_value());
  EXPECT_FALSE(renamed->graph.Find("spouse").has_value() &&
               renamed->graph.PredicateFrequency(
                   *renamed->graph.Find("spouse")) > 0)
      << "old predicate names carry no triples";
  auto married = renamed->graph.Find("isMarriedTo");
  ASSERT_TRUE(married.has_value());
  EXPECT_GT(renamed->graph.PredicateFrequency(*married), 0u);
  // The running-example triple survives under the new name.
  EXPECT_TRUE(renamed->graph.HasTriple(
      *renamed->graph.Find("Melanie_Griffith"), *married,
      *renamed->graph.Find("Antonio_Banderas")));
}

TEST(SchemaRenameTest, ClassHierarchyAndLabelsSurvive) {
  const auto& world = World();
  auto renamed = RenameSchema(world.kb, YagoRenames());
  ASSERT_TRUE(renamed.ok());
  auto actor_cls = renamed->graph.Find("wordnet_actor");
  ASSERT_TRUE(actor_cls.has_value());
  EXPECT_TRUE(renamed->graph.IsClass(*actor_cls));
  EXPECT_TRUE(renamed->graph.IsInstanceOf(
      *renamed->graph.Find("Antonio_Banderas"), *actor_cls));
  // The rdfs:label "actor" is preserved, so linking still works.
  auto labels = renamed->graph.Objects(*actor_cls,
                                       renamed->graph.label_predicate());
  bool has_actor_label = false;
  for (auto l : labels) {
    if (renamed->graph.dict().text(l) == "actor") has_actor_label = true;
  }
  EXPECT_TRUE(has_actor_label);
}

TEST(SchemaRenameTest, RenameGoldRewritesSteps) {
  const auto& world = World();
  auto gold = RenameGold(world.phrases, YagoRenames());
  bool saw = false;
  for (const auto& p : gold) {
    if (p.phrase.text != "be married to") continue;
    for (const auto& g : p.gold) {
      for (const auto& step : g) {
        EXPECT_NE(step.predicate, "spouse");
        if (step.predicate == "isMarriedTo") saw = true;
      }
    }
  }
  EXPECT_TRUE(saw);
}

// The paper's Yago2 sentence: the whole pipeline — mining, verification,
// understanding, matching — works identically over the renamed vocabulary
// because nothing is keyed to predicate spellings.
TEST(SchemaRenameTest, EndToEndAccuracyCarriesOverToYagoVocabulary) {
  const auto& world = World();
  auto renamed = RenameSchema(world.kb, YagoRenames());
  ASSERT_TRUE(renamed.ok());
  auto gold_phrases = RenameGold(world.phrases, YagoRenames());
  auto dataset = PhraseDatasetGenerator::StripGold(gold_phrases);

  nlp::Lexicon lexicon;
  paraphrase::ParaphraseDictionary mined(&lexicon);
  paraphrase::DictionaryBuilder::Options mopt;
  mopt.max_path_length = 3;
  ASSERT_TRUE(paraphrase::DictionaryBuilder(mopt)
                  .Build(renamed->graph, dataset, &mined)
                  .ok());
  paraphrase::ParaphraseDictionary dict(&lexicon);
  VerifyDictionary(gold_phrases, renamed->graph, mined, &dict);

  qa::GAnswer system(&renamed->graph, &lexicon, &dict);
  size_t right = 0, total = 0;
  for (const auto& q : world.workload) {
    if (q.expected_failure) continue;
    ++total;
    auto r = system.Ask(q.text);
    if (!r.ok()) continue;
    std::vector<std::string> answers;
    for (const auto& a : r->answers) answers.push_back(a.text);
    std::sort(answers.begin(), answers.end());
    std::vector<std::string> gold = q.gold_answers;
    std::sort(gold.begin(), gold.end());
    if (q.is_ask ? (r->is_ask && r->ask_result == q.gold_ask)
                 : (answers == gold)) {
      ++right;
    }
  }
  ASSERT_GT(total, 70u);
  EXPECT_GT(static_cast<double>(right) / total, 0.7)
      << right << "/" << total << " on the YAGO-named graph";
}

TEST(SchemaRenameTest, RequiresFinalizedGraph) {
  KbGenerator::GeneratedKb kb;
  kb.graph.AddTriple("a", "p", "b");
  EXPECT_TRUE(RenameSchema(kb, YagoRenames()).status().IsInvalidArgument());
}

}  // namespace
}  // namespace datagen
}  // namespace ganswer
