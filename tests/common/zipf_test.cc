#include "common/zipf.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

namespace ganswer {
namespace {

TEST(ZipfTest, ProbabilitiesSumToOneAndDecay) {
  ZipfGenerator zipf(100, 1.1, 7);
  double sum = 0;
  for (size_t i = 0; i < zipf.n(); ++i) {
    sum += zipf.Probability(i);
    if (i > 0) {
      EXPECT_LT(zipf.Probability(i), zipf.Probability(i - 1))
          << "popularity must strictly decay with rank";
    }
  }
  EXPECT_NEAR(sum, 1.0, 1e-9);
  // Zipf(1.1) over 100 ranks concentrates: the head outweighs the tail.
  EXPECT_GT(zipf.Probability(0), 0.15);
  EXPECT_LT(zipf.Probability(99), 0.01);
}

TEST(ZipfTest, SameSeedSameSequence) {
  ZipfGenerator a(64, 1.1, 42);
  ZipfGenerator b(64, 1.1, 42);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_EQ(a.Next(), b.Next()) << "draw " << i;
  }
  ZipfGenerator c(64, 1.1, 43);
  bool diverged = false;
  ZipfGenerator a2(64, 1.1, 42);
  for (int i = 0; i < 1000 && !diverged; ++i) {
    diverged = a2.Next() != c.Next();
  }
  EXPECT_TRUE(diverged) << "different seeds should give different streams";
}

// Frequency test: with N draws, the observed count for rank i is
// Binomial(N, p_i); mean N*p_i, stddev sqrt(N*p_i*(1-p_i)). A 5-sigma
// band makes the test deterministic-in-practice for a fixed seed while
// still failing loudly if the CDF inversion is off by a rank.
TEST(ZipfTest, ObservedFrequenciesMatchProbabilities) {
  const size_t n = 32;
  const size_t draws = 200'000;
  ZipfGenerator zipf(n, 1.1, 12345);
  std::vector<size_t> counts(n, 0);
  for (size_t i = 0; i < draws; ++i) {
    size_t rank = zipf.Next();
    ASSERT_LT(rank, n);
    ++counts[rank];
  }
  double chi2 = 0;
  for (size_t i = 0; i < n; ++i) {
    double p = zipf.Probability(i);
    double mean = static_cast<double>(draws) * p;
    double sigma = std::sqrt(mean * (1.0 - p));
    EXPECT_NEAR(static_cast<double>(counts[i]), mean, 5.0 * sigma)
        << "rank " << i;
    chi2 += (counts[i] - mean) * (counts[i] - mean) / mean;
  }
  // Chi-square with 31 dof: mean 31, stddev sqrt(62); 100 is far beyond
  // any plausible statistical excursion but catches systematic skew.
  EXPECT_LT(chi2, 100.0);
}

TEST(ZipfTest, SingleElementAlwaysZero) {
  ZipfGenerator zipf(1, 1.1, 9);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(zipf.Next(), 0u);
  EXPECT_NEAR(zipf.Probability(0), 1.0, 1e-12);
}

TEST(ZipfTest, SkewZeroIsUniform) {
  const size_t n = 8;
  ZipfGenerator zipf(n, 0.0, 3);
  for (size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(zipf.Probability(i), 1.0 / n, 1e-12);
  }
  std::vector<size_t> counts(n, 0);
  const size_t draws = 80'000;
  for (size_t i = 0; i < draws; ++i) ++counts[zipf.Next()];
  for (size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(static_cast<double>(counts[i]),
                static_cast<double>(draws) / n, 5.0 * std::sqrt(10000.0));
  }
}

}  // namespace
}  // namespace ganswer
