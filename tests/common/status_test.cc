#include "common/status.h"

#include <gtest/gtest.h>

namespace ganswer {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
  EXPECT_EQ(s.message(), "");
}

TEST(StatusTest, FactoryConstructorsSetCodeAndMessage) {
  EXPECT_TRUE(Status::InvalidArgument("x").IsInvalidArgument());
  EXPECT_TRUE(Status::NotFound("x").IsNotFound());
  EXPECT_TRUE(Status::Corruption("x").IsCorruption());
  EXPECT_TRUE(Status::NotSupported("x").IsNotSupported());
  EXPECT_TRUE(Status::IoError("x").IsIoError());
  EXPECT_TRUE(Status::Internal("x").IsInternal());
  EXPECT_FALSE(Status::Internal("x").ok());
  EXPECT_EQ(Status::NotFound("missing thing").message(), "missing thing");
}

TEST(StatusTest, ToStringIncludesCodeAndMessage) {
  EXPECT_EQ(Status::InvalidArgument("bad arg").ToString(),
            "InvalidArgument: bad arg");
  EXPECT_EQ(Status::Corruption("").ToString(), "Corruption");
}

TEST(StatusTest, CodePredicatesAreExclusive) {
  Status s = Status::NotFound("x");
  EXPECT_FALSE(s.IsInvalidArgument());
  EXPECT_FALSE(s.IsCorruption());
  EXPECT_FALSE(s.IsInternal());
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v(42);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 42);
  EXPECT_EQ(v.value(), 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v(Status::NotFound("gone"));
  EXPECT_FALSE(v.ok());
  EXPECT_TRUE(v.status().IsNotFound());
}

TEST(StatusOrTest, MoveOutValue) {
  StatusOr<std::string> v(std::string("payload"));
  std::string s = std::move(v).value();
  EXPECT_EQ(s, "payload");
}

TEST(StatusOrTest, ArrowOperator) {
  StatusOr<std::string> v(std::string("abc"));
  EXPECT_EQ(v->size(), 3u);
}

Status FailsThrough() {
  GANSWER_RETURN_NOT_OK(Status::IoError("disk"));
  return Status::Ok();
}

Status Passes() {
  GANSWER_RETURN_NOT_OK(Status::Ok());
  return Status::NotFound("end");
}

TEST(StatusMacroTest, ReturnNotOkPropagates) {
  EXPECT_TRUE(FailsThrough().IsIoError());
  EXPECT_TRUE(Passes().IsNotFound());
}

}  // namespace
}  // namespace ganswer
