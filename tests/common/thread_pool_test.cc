#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

namespace ganswer {
namespace {

TEST(ThreadPoolTest, ResolveThreads) {
  EXPECT_EQ(ThreadPool::ResolveThreads(1), 1);
  EXPECT_EQ(ThreadPool::ResolveThreads(7), 7);
  EXPECT_EQ(ThreadPool::ResolveThreads(-3), 1);
  EXPECT_GE(ThreadPool::ResolveThreads(0), 1)
      << "0 resolves to hardware_concurrency, at least 1";
}

TEST(ThreadPoolTest, SubmitReturnsValueThroughFuture) {
  ThreadPool pool(2);
  EXPECT_EQ(pool.size(), 2);
  auto f = pool.Submit([] { return 6 * 7; });
  EXPECT_EQ(f.get(), 42);
}

TEST(ThreadPoolTest, ManySubmittedTasksAllComplete) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 200; ++i) {
    futures.push_back(pool.Submit([&count] { ++count; }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(count.load(), 200);
}

TEST(ThreadPoolTest, SubmitPropagatesExceptionThroughFuture) {
  ThreadPool pool(2);
  auto f = pool.Submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
  // The pool survives a throwing task.
  EXPECT_EQ(pool.Submit([] { return 1; }).get(), 1);
}

TEST(ThreadPoolTest, DestructorRunsQueuedTasks) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) {
      pool.Submit([&count] { ++count; });
    }
  }  // destructor joins after draining
  EXPECT_EQ(count.load(), 50);
}

TEST(ThreadPoolTest, ParallelForEmptyRange) {
  ThreadPool pool(4);
  std::atomic<int> calls{0};
  pool.ParallelFor(0, 0, [&](size_t) { ++calls; });
  pool.ParallelFor(5, 5, [&](size_t) { ++calls; });
  pool.ParallelFor(7, 3, [&](size_t) { ++calls; });  // inverted = empty
  EXPECT_EQ(calls.load(), 0);
}

TEST(ThreadPoolTest, ParallelForCoversOddRangesExactlyOnce) {
  ThreadPool pool(4);
  // Ranges that do not divide evenly by the worker count, including a
  // single-element range and ranges smaller than the pool.
  for (size_t n : {1u, 2u, 3u, 5u, 17u, 101u}) {
    std::vector<std::atomic<int>> hits(n);
    for (auto& h : hits) h = 0;
    pool.ParallelFor(0, n, [&](size_t i) { ++hits[i]; });
    for (size_t i = 0; i < n; ++i) {
      EXPECT_EQ(hits[i].load(), 1) << "index " << i << " of range " << n;
    }
  }
}

TEST(ThreadPoolTest, ParallelForNonZeroBegin) {
  ThreadPool pool(3);
  std::mutex mu;
  std::set<size_t> seen;
  pool.ParallelFor(10, 25, [&](size_t i) {
    std::lock_guard<std::mutex> lock(mu);
    seen.insert(i);
  });
  EXPECT_EQ(seen.size(), 15u);
  EXPECT_EQ(*seen.begin(), 10u);
  EXPECT_EQ(*seen.rbegin(), 24u);
}

TEST(ThreadPoolTest, ParallelForRethrowsFirstException) {
  ThreadPool pool(4);
  std::atomic<int> completed{0};
  EXPECT_THROW(
      pool.ParallelFor(0, 100,
                       [&](size_t i) {
                         if (i == 13) throw std::runtime_error("bad index");
                         ++completed;
                       }),
      std::runtime_error);
  // The throwing block abandons its remaining indices; every other block
  // runs to completion (ParallelFor waits for all blocks before
  // rethrowing). 4 workers x 100 items = 25-item blocks, so at least the
  // three other blocks' 75 items completed.
  EXPECT_GE(completed.load(), 75);
  EXPECT_LT(completed.load(), 100);
}

TEST(ThreadPoolTest, RunSerialFallbackStaysOnCallingThread) {
  std::thread::id caller = std::this_thread::get_id();
  std::vector<std::thread::id> ids(4);
  ThreadPool::Run(1, 0, 4,
                  [&](size_t i) { ids[i] = std::this_thread::get_id(); });
  for (const auto& id : ids) {
    EXPECT_EQ(id, caller) << "threads=1 must run inline, in order";
  }
}

TEST(ThreadPoolTest, RunParallelCoversRange) {
  std::vector<std::atomic<int>> hits(37);
  for (auto& h : hits) h = 0;
  ThreadPool::Run(4, 0, hits.size(), [&](size_t i) { ++hits[i]; });
  int total = 0;
  for (auto& h : hits) total += h.load();
  EXPECT_EQ(total, 37);
}

}  // namespace
}  // namespace ganswer
