#include "common/lru_cache.h"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

namespace ganswer {
namespace {

using Cache = ShardedLruCache<std::string>;

TEST(ShardedLruCacheTest, MissThenHit) {
  Cache cache(Cache::Options{8, 1});
  EXPECT_EQ(cache.Get("a"), nullptr);
  cache.Put("a", "alpha");
  auto hit = cache.Get("a");
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(*hit, "alpha");
  auto stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.entries, 1u);
}

TEST(ShardedLruCacheTest, PutReplacesExistingValue) {
  Cache cache(Cache::Options{8, 1});
  cache.Put("k", "old");
  cache.Put("k", "new");
  auto hit = cache.Get("k");
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(*hit, "new");
  EXPECT_EQ(cache.stats().entries, 1u);
}

TEST(ShardedLruCacheTest, EvictsLeastRecentlyUsed) {
  // One shard of capacity 2 makes the eviction order deterministic.
  Cache cache(Cache::Options{2, 1});
  cache.Put("a", "1");
  cache.Put("b", "2");
  ASSERT_NE(cache.Get("a"), nullptr);  // "a" is now most recent
  cache.Put("c", "3");                 // evicts "b"
  EXPECT_EQ(cache.Get("b"), nullptr);
  EXPECT_NE(cache.Get("a"), nullptr);
  EXPECT_NE(cache.Get("c"), nullptr);
  EXPECT_EQ(cache.stats().evictions, 1u);
}

TEST(ShardedLruCacheTest, EvictedValueSurvivesWhileHeld) {
  Cache cache(Cache::Options{1, 1});
  cache.Put("a", "alpha");
  std::shared_ptr<const std::string> held = cache.Get("a");
  ASSERT_NE(held, nullptr);
  cache.Put("b", "beta");  // evicts "a"
  EXPECT_EQ(cache.Get("a"), nullptr);
  EXPECT_EQ(*held, "alpha");  // the reader's copy is unaffected
}

TEST(ShardedLruCacheTest, ClearDropsEntriesKeepsCounters) {
  Cache cache(Cache::Options{8, 2});
  cache.Put("a", "1");
  cache.Put("b", "2");
  ASSERT_NE(cache.Get("a"), nullptr);
  cache.Clear();
  EXPECT_EQ(cache.Get("a"), nullptr);
  EXPECT_EQ(cache.Get("b"), nullptr);
  auto stats = cache.stats();
  EXPECT_EQ(stats.entries, 0u);
  EXPECT_EQ(stats.hits, 1u);  // counters are cumulative across Clear
}

TEST(ShardedLruCacheTest, CapacityRoundsUpToShardCount) {
  Cache cache(Cache::Options{2, 8});
  EXPECT_EQ(cache.options().capacity, 8u);
  EXPECT_EQ(cache.options().shards, 8u);
}

TEST(ShardedLruCacheTest, ConcurrentMixedUseIsSafe) {
  Cache cache(Cache::Options{64, 8});
  std::vector<std::thread> workers;
  for (int t = 0; t < 4; ++t) {
    workers.emplace_back([&cache, t] {
      for (int i = 0; i < 500; ++i) {
        std::string key = "k" + std::to_string((t * 31 + i) % 100);
        if (auto hit = cache.Get(key)) {
          EXPECT_FALSE(hit->empty());
        } else {
          cache.Put(key, "v" + std::to_string(i));
        }
      }
    });
  }
  for (auto& w : workers) w.join();
  auto stats = cache.stats();
  EXPECT_EQ(stats.hits + stats.misses, 4u * 500u);
  EXPECT_LE(stats.entries, 64u);
}

}  // namespace
}  // namespace ganswer
