#include "common/random.h"

#include <gtest/gtest.h>

namespace ganswer {
namespace {

TEST(RngTest, DeterministicForSeed) {
  Rng a(99), b(99);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(1000), b.Next(1000));
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  bool diverged = false;
  for (int i = 0; i < 50 && !diverged; ++i) {
    diverged = a.Next(1 << 30) != b.Next(1 << 30);
  }
  EXPECT_TRUE(diverged);
}

TEST(RngTest, NextStaysInBound) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.Next(17), 17u);
  }
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(rng.Next(1), 0u);
  }
}

TEST(RngTest, RangeInclusive) {
  Rng rng(7);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    int64_t v = rng.Range(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    saw_lo |= v == -2;
    saw_hi |= v == 2;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, ChanceExtremes) {
  Rng rng(3);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Chance(0.0));
    EXPECT_TRUE(rng.Chance(1.0));
  }
}

TEST(RngTest, SkewedIndexFavorsSmallValues) {
  Rng rng(11);
  size_t low = 0;
  const size_t n = 100;
  const int trials = 10000;
  for (int i = 0; i < trials; ++i) {
    size_t idx = rng.SkewedIndex(n);
    ASSERT_LT(idx, n);
    if (idx < n / 4) ++low;
  }
  // A uniform draw would put ~25% in the first quartile; the skew should
  // put clearly more.
  EXPECT_GT(low, trials / 3u);
}

TEST(RngTest, PickAndShuffle) {
  Rng rng(5);
  std::vector<int> v{1, 2, 3, 4, 5};
  for (int i = 0; i < 50; ++i) {
    int x = rng.Pick(v);
    EXPECT_GE(x, 1);
    EXPECT_LE(x, 5);
  }
  std::vector<int> shuffled = v;
  rng.Shuffle(&shuffled);
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, v) << "shuffle is a permutation";
}

}  // namespace
}  // namespace ganswer
