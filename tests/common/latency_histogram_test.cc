#include "common/latency_histogram.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <random>
#include <vector>

namespace ganswer {
namespace {

TEST(LatencyHistogramTest, EmptyHistogramIsZero) {
  LatencyHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.ValueAtQuantile(0.5), 0u);
  EXPECT_EQ(h.QuantileMillis(0.99), 0.0);
  EXPECT_EQ(h.mean_us(), 0.0);
}

TEST(LatencyHistogramTest, SmallValuesAreExact) {
  // Values below 2^precision_bits land in width-1 buckets: no error.
  LatencyHistogram h(6);
  for (uint64_t v = 0; v < 64; ++v) h.Record(v);
  EXPECT_EQ(h.count(), 64u);
  EXPECT_EQ(h.min_us(), 0u);
  EXPECT_EQ(h.max_us(), 63u);
  // Rank ceil(0.5 * 64) = 32 -> the 32nd smallest value, which is 31.
  EXPECT_EQ(h.ValueAtQuantile(0.5), 31u);
  EXPECT_EQ(h.ValueAtQuantile(1.0), 63u);
}

/// Oracle: exact quantile over the sorted sample at rank ceil(q*n).
uint64_t ExactQuantile(std::vector<uint64_t> values, double q) {
  std::sort(values.begin(), values.end());
  size_t rank = static_cast<size_t>(
      std::ceil(q * static_cast<double>(values.size())));
  if (rank == 0) rank = 1;
  if (rank > values.size()) rank = values.size();
  return values[rank - 1];
}

// The log-linear layout guarantees relative error <= 2^-precision_bits
// per bucket; the histogram returns the bucket's inclusive upper bound,
// so: exact <= approx <= exact * (1 + 2^-p) + 1.
TEST(LatencyHistogramTest, QuantilesMatchSortedOracleWithinBound) {
  std::mt19937_64 rng(99);
  // Log-uniform values spanning 1us .. ~100s: sub-bucket-exact through
  // deep log-linear decades.
  std::vector<uint64_t> values;
  LatencyHistogram h(6);
  for (int i = 0; i < 20'000; ++i) {
    double exponent = std::uniform_real_distribution<double>(0, 8)(rng);
    uint64_t v = static_cast<uint64_t>(std::pow(10.0, exponent));
    values.push_back(v);
    h.Record(v);
  }
  EXPECT_EQ(h.count(), values.size());
  const double rel = 1.0 / 64.0;  // 2^-6
  for (double q : {0.01, 0.1, 0.25, 0.5, 0.9, 0.95, 0.99, 0.999, 1.0}) {
    uint64_t exact = ExactQuantile(values, q);
    uint64_t approx = h.ValueAtQuantile(q);
    EXPECT_GE(approx, exact) << "q=" << q;
    EXPECT_LE(static_cast<double>(approx),
              static_cast<double>(exact) * (1.0 + rel) + 1.0)
        << "q=" << q;
  }
  uint64_t sum = 0;
  for (uint64_t v : values) sum += v;
  double exact_mean = static_cast<double>(sum) / values.size();
  EXPECT_NEAR(h.mean_us(), exact_mean, 1e-6) << "mean is tracked exactly";
}

TEST(LatencyHistogramTest, MergeEqualsRecordingEverythingInOne) {
  std::mt19937_64 rng(7);
  LatencyHistogram combined(6);
  LatencyHistogram a(6);
  LatencyHistogram b(6);
  for (int i = 0; i < 5'000; ++i) {
    uint64_t v = rng() % 1'000'000;
    combined.Record(v);
    (i % 2 == 0 ? a : b).Record(v);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), combined.count());
  EXPECT_EQ(a.min_us(), combined.min_us());
  EXPECT_EQ(a.max_us(), combined.max_us());
  EXPECT_EQ(a.mean_us(), combined.mean_us());
  for (double q : {0.5, 0.9, 0.99, 0.999}) {
    EXPECT_EQ(a.ValueAtQuantile(q), combined.ValueAtQuantile(q)) << q;
  }
}

TEST(LatencyHistogramTest, RecordMillisClampsGarbage) {
  LatencyHistogram h;
  h.RecordMillis(-5.0);
  h.RecordMillis(std::nan(""));
  h.RecordMillis(1.5);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(h.min_us(), 0u) << "negative and NaN clamp to 0";
  EXPECT_EQ(h.max_us(), 1500u);
}

TEST(LatencyHistogramTest, HugeValuesSaturateInsteadOfOverflowing) {
  LatencyHistogram h;
  h.Record(UINT64_MAX);
  h.Record(1u << 30);
  EXPECT_EQ(h.count(), 2u);
  // The saturated sample still sorts above the 2^30 one.
  EXPECT_GE(h.ValueAtQuantile(1.0), h.ValueAtQuantile(0.5));
  EXPECT_GE(h.ValueAtQuantile(0.5), 1u << 30);
}

TEST(LatencyHistogramTest, ClearResetsEverything) {
  LatencyHistogram h;
  h.Record(123);
  h.Record(456);
  h.Clear();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.ValueAtQuantile(0.99), 0u);
  h.Record(10);
  EXPECT_EQ(h.ValueAtQuantile(1.0), 10u);
}

TEST(LatencyHistogramTest, QuantileIsMonotoneInQ) {
  std::mt19937_64 rng(3);
  LatencyHistogram h;
  for (int i = 0; i < 10'000; ++i) h.Record(rng() % 10'000'000);
  uint64_t prev = 0;
  for (double q = 0.05; q <= 1.0; q += 0.05) {
    uint64_t v = h.ValueAtQuantile(q);
    EXPECT_GE(v, prev) << "q=" << q;
    prev = v;
  }
}

}  // namespace
}  // namespace ganswer
