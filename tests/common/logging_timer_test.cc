#include <gtest/gtest.h>

#include <thread>

#include "common/logging.h"
#include "common/timer.h"

namespace ganswer {
namespace {

TEST(LoggingTest, LevelGateRoundTrips) {
  LogLevel before = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  // Below-threshold messages are dropped (no crash, no way to observe the
  // write here beyond it not aborting).
  GANSWER_LOG(Debug) << "dropped " << 42;
  GANSWER_LOG(Error) << "emitted " << 1.5;
  SetLogLevel(before);
}

TEST(LoggingTest, StreamAcceptsMixedTypes) {
  SetLogLevel(LogLevel::kError);  // keep test output clean
  GANSWER_LOG(Info) << "s" << 1 << ' ' << 2.5 << true;
  SetLogLevel(LogLevel::kInfo);
}

TEST(WallTimerTest, MeasuresElapsedTime) {
  WallTimer t;
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  double ms = t.ElapsedMillis();
  EXPECT_GE(ms, 4.0);
  EXPECT_LT(ms, 5000.0);
  EXPECT_NEAR(t.ElapsedSeconds() * 1e3, t.ElapsedMillis(), 50.0);
  t.Restart();
  EXPECT_LT(t.ElapsedMillis(), 100.0);
}

TEST(WallTimerTest, UnitsAreConsistent) {
  WallTimer t;
  double us = t.ElapsedMicros();
  double ms = t.ElapsedMillis();
  EXPECT_GE(us, 0.0);
  EXPECT_GE(ms, 0.0);
}

}  // namespace
}  // namespace ganswer
