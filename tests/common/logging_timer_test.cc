#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/logging.h"
#include "common/timer.h"

namespace ganswer {
namespace {

TEST(LoggingTest, LevelGateRoundTrips) {
  LogLevel before = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  // Below-threshold messages are dropped (no crash, no way to observe the
  // write here beyond it not aborting).
  GANSWER_LOG(Debug) << "dropped " << 42;
  GANSWER_LOG(Error) << "emitted " << 1.5;
  SetLogLevel(before);
}

TEST(LoggingTest, StreamAcceptsMixedTypes) {
  SetLogLevel(LogLevel::kError);  // keep test output clean
  GANSWER_LOG(Info) << "s" << 1 << ' ' << 2.5 << true;
  SetLogLevel(LogLevel::kInfo);
}

TEST(LoggingTest, SinkCapturesMessagesAndLevel) {
  std::vector<std::pair<LogLevel, std::string>> captured;
  SetLogSink([&](LogLevel level, const std::string& message) {
    captured.emplace_back(level, message);
  });
  GANSWER_LOG(Info) << "hello " << 7;
  GANSWER_LOG(Warn) << "careful";
  SetLogSink(nullptr);  // restore the stderr default

  ASSERT_EQ(captured.size(), 2u);
  EXPECT_EQ(captured[0].first, LogLevel::kInfo);
  EXPECT_EQ(captured[0].second, "hello 7");
  EXPECT_EQ(captured[1].first, LogLevel::kWarn);
  EXPECT_EQ(captured[1].second, "careful");

  // After restore, the custom sink no longer sees anything.
  SetLogLevel(LogLevel::kError);
  GANSWER_LOG(Info) << "not captured";
  SetLogLevel(LogLevel::kInfo);
  EXPECT_EQ(captured.size(), 2u);
}

// The server logs from the event-loop thread and every worker at once; the
// sink contract is strict serialization — each invocation completes before
// the next begins, and no message is lost.
TEST(LoggingTest, ConcurrentLoggingSerializesSinkCalls) {
  constexpr int kThreads = 8;
  constexpr int kPerThread = 200;
  std::atomic<int> in_sink{0};
  std::atomic<bool> overlapped{false};
  std::vector<std::string> messages;
  SetLogSink([&](LogLevel, const std::string& message) {
    if (in_sink.fetch_add(1) != 0) overlapped.store(true);
    messages.push_back(message);  // safe only because calls are serialized
    in_sink.fetch_sub(1);
  });

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t] {
      for (int i = 0; i < kPerThread; ++i) {
        GANSWER_LOG(Info) << "t" << t << " m" << i;
      }
    });
  }
  for (auto& thread : threads) thread.join();
  FlushLogs();
  SetLogSink(nullptr);

  EXPECT_FALSE(overlapped.load()) << "sink invocations overlapped";
  EXPECT_EQ(messages.size(), static_cast<size_t>(kThreads * kPerThread));
}

TEST(LoggingTest, FlushLogsIsSafeAnytime) {
  FlushLogs();  // default sink
  SetLogSink([](LogLevel, const std::string&) {});
  FlushLogs();  // custom sink: flush is a no-op but must not crash
  SetLogSink(nullptr);
}

TEST(WallTimerTest, MeasuresElapsedTime) {
  WallTimer t;
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  double ms = t.ElapsedMillis();
  EXPECT_GE(ms, 4.0);
  EXPECT_LT(ms, 5000.0);
  EXPECT_NEAR(t.ElapsedSeconds() * 1e3, t.ElapsedMillis(), 50.0);
  t.Restart();
  EXPECT_LT(t.ElapsedMillis(), 100.0);
}

TEST(WallTimerTest, UnitsAreConsistent) {
  WallTimer t;
  double us = t.ElapsedMicros();
  double ms = t.ElapsedMillis();
  EXPECT_GE(us, 0.0);
  EXPECT_GE(ms, 0.0);
}

}  // namespace
}  // namespace ganswer
