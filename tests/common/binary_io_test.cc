#include "common/binary_io.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace ganswer {
namespace {

TEST(Crc32Test, KnownVectors) {
  // The IEEE 802.3 check value for "123456789".
  EXPECT_EQ(Crc32("123456789", 9), 0xcbf43926u);
  EXPECT_EQ(Crc32("", 0), 0u);
}

TEST(Crc32Test, ChainingMatchesOneShot) {
  const std::string data = "the quick brown fox jumps over the lazy dog";
  uint32_t one_shot = Crc32(data.data(), data.size());
  uint32_t chained = Crc32(data.data(), 10);
  chained = Crc32(data.data() + 10, data.size() - 10, chained);
  EXPECT_EQ(chained, one_shot);
}

TEST(BinaryIoTest, PrimitivesRoundTrip) {
  BinaryWriter w;
  w.WriteU8(0xab);
  w.WriteU32(0xdeadbeefu);
  w.WriteU64(0x0123456789abcdefull);
  w.WriteDouble(3.5);
  w.WriteString("hello");
  std::string bytes = w.Release();

  BinaryReader r(bytes);
  uint8_t u8 = 0;
  uint32_t u32 = 0;
  uint64_t u64 = 0;
  double d = 0;
  std::string s;
  ASSERT_TRUE(r.ReadU8(&u8).ok());
  ASSERT_TRUE(r.ReadU32(&u32).ok());
  ASSERT_TRUE(r.ReadU64(&u64).ok());
  ASSERT_TRUE(r.ReadDouble(&d).ok());
  ASSERT_TRUE(r.ReadString(&s).ok());
  EXPECT_EQ(u8, 0xab);
  EXPECT_EQ(u32, 0xdeadbeefu);
  EXPECT_EQ(u64, 0x0123456789abcdefull);
  EXPECT_EQ(d, 3.5);
  EXPECT_EQ(s, "hello");
  EXPECT_TRUE(r.AtEnd());
}

TEST(BinaryIoTest, VarintBoundaries) {
  const uint64_t values[] = {0,
                             1,
                             127,
                             128,
                             16383,
                             16384,
                             (1ull << 32) - 1,
                             1ull << 32,
                             std::numeric_limits<uint64_t>::max()};
  BinaryWriter w;
  for (uint64_t v : values) w.WriteVarint(v);
  std::string bytes = w.Release();
  BinaryReader r(bytes);
  for (uint64_t v : values) {
    uint64_t got = 0;
    ASSERT_TRUE(r.ReadVarint(&got).ok());
    EXPECT_EQ(got, v);
  }
  EXPECT_TRUE(r.AtEnd());
}

TEST(BinaryIoTest, PodVectorRoundTrip) {
  struct Pair {
    uint32_t a;
    uint32_t b;
  };
  std::vector<Pair> in = {{1, 2}, {3, 4}, {0xffffffffu, 0}};
  BinaryWriter w;
  w.WritePodVector(in);
  std::string bytes = w.Release();
  BinaryReader r(bytes);
  std::vector<Pair> out;
  ASSERT_TRUE(r.ReadPodVector(&out).ok());
  ASSERT_EQ(out.size(), in.size());
  for (size_t i = 0; i < in.size(); ++i) {
    EXPECT_EQ(out[i].a, in[i].a);
    EXPECT_EQ(out[i].b, in[i].b);
  }
}

TEST(BinaryIoTest, BoolVectorRoundTrip) {
  for (size_t n : {0u, 1u, 7u, 8u, 9u, 64u, 100u}) {
    std::vector<bool> in(n);
    for (size_t i = 0; i < n; ++i) in[i] = (i % 3) == 0;
    BinaryWriter w;
    w.WriteBoolVector(in);
    std::string bytes = w.Release();
    BinaryReader r(bytes);
    std::vector<bool> out;
    ASSERT_TRUE(r.ReadBoolVector(&out).ok());
    EXPECT_EQ(out, in) << "n=" << n;
  }
}

TEST(BinaryIoTest, TruncatedReadsFailWithCorruption) {
  BinaryWriter w;
  w.WriteU64(42);
  w.WriteString("payload");
  std::string bytes = w.Release();
  // Every proper prefix must fail cleanly, never read out of bounds.
  for (size_t cut = 0; cut < bytes.size(); ++cut) {
    BinaryReader r(std::string_view(bytes).substr(0, cut));
    uint64_t v = 0;
    std::string s;
    Status st = r.ReadU64(&v);
    if (st.ok()) st = r.ReadString(&s);
    EXPECT_FALSE(st.ok()) << "prefix length " << cut;
  }
}

TEST(BinaryIoTest, CorruptCountIsRejectedBeforeAllocation) {
  // A varint count far larger than the remaining bytes must not resize.
  BinaryWriter w;
  w.WriteVarint(std::numeric_limits<uint64_t>::max() / 2);
  std::string bytes = w.Release();
  BinaryReader r(bytes);
  std::vector<uint64_t> out;
  Status st = r.ReadPodVector(&out);
  EXPECT_FALSE(st.ok());
  EXPECT_TRUE(out.empty());
}

TEST(BinaryIoTest, OverlongVarintIsRejected) {
  // 10 continuation bytes encode more than 64 bits.
  std::string bytes(11, static_cast<char>(0x80));
  bytes.back() = 0x01;
  BinaryReader r(bytes);
  uint64_t v = 0;
  EXPECT_FALSE(r.ReadVarint(&v).ok());
}

TEST(BinaryIoTest, ReadStringViewIsZeroCopy) {
  BinaryWriter w;
  w.WriteString("abcdef");
  std::string bytes = w.Release();
  BinaryReader r(bytes);
  std::string_view sv;
  ASSERT_TRUE(r.ReadStringView(&sv).ok());
  EXPECT_EQ(sv, "abcdef");
  EXPECT_GE(sv.data(), bytes.data());
  EXPECT_LT(sv.data(), bytes.data() + bytes.size());
}

}  // namespace
}  // namespace ganswer
