#include "common/string_util.h"

#include <gtest/gtest.h>

namespace ganswer {
namespace {

TEST(StringUtilTest, ToLower) {
  EXPECT_EQ(ToLower("AbC dEf"), "abc def");
  EXPECT_EQ(ToLower(""), "");
  EXPECT_EQ(ToLower("123-X"), "123-x");
}

TEST(StringUtilTest, Trim) {
  EXPECT_EQ(Trim("  x  "), "x");
  EXPECT_EQ(Trim("x"), "x");
  EXPECT_EQ(Trim("   "), "");
  EXPECT_EQ(Trim("\ta b\n"), "a b");
}

TEST(StringUtilTest, SplitDropsEmptyByDefault) {
  EXPECT_EQ(Split("a,b,,c", ','), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(Split("a,b,,c", ',', true),
            (std::vector<std::string>{"a", "b", "", "c"}));
  EXPECT_TRUE(Split("", ',').empty());
  EXPECT_EQ(Split(",", ',', true), (std::vector<std::string>{"", ""}));
}

TEST(StringUtilTest, SplitWhitespace) {
  EXPECT_EQ(SplitWhitespace("  a \t b\nc "),
            (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_TRUE(SplitWhitespace("   ").empty());
}

TEST(StringUtilTest, Join) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Join({"x"}, ","), "x");
}

TEST(StringUtilTest, StartsEndsWith) {
  EXPECT_TRUE(StartsWith("prefix-rest", "prefix"));
  EXPECT_FALSE(StartsWith("pre", "prefix"));
  EXPECT_TRUE(EndsWith("name.cc", ".cc"));
  EXPECT_FALSE(EndsWith("cc", "name.cc"));
  EXPECT_TRUE(StartsWith("x", ""));
  EXPECT_TRUE(EndsWith("x", ""));
}

TEST(StringUtilTest, ReplaceAll) {
  EXPECT_EQ(ReplaceAll("a_b_c", "_", " "), "a b c");
  EXPECT_EQ(ReplaceAll("aaa", "aa", "b"), "ba");
  EXPECT_EQ(ReplaceAll("none", "xyz", "q"), "none");
  EXPECT_EQ(ReplaceAll("x", "", "q"), "x");
}

struct EditDistanceCase {
  const char* a;
  const char* b;
  size_t expected;
};

class EditDistanceTest : public ::testing::TestWithParam<EditDistanceCase> {};

TEST_P(EditDistanceTest, MatchesExpected) {
  const auto& c = GetParam();
  EXPECT_EQ(EditDistance(c.a, c.b), c.expected);
  EXPECT_EQ(EditDistance(c.b, c.a), c.expected) << "symmetry";
}

INSTANTIATE_TEST_SUITE_P(
    Cases, EditDistanceTest,
    ::testing::Values(EditDistanceCase{"", "", 0},
                      EditDistanceCase{"a", "", 1},
                      EditDistanceCase{"kitten", "sitting", 3},
                      EditDistanceCase{"flaw", "lawn", 2},
                      EditDistanceCase{"same", "same", 0},
                      EditDistanceCase{"abc", "cba", 2}));

TEST(StringUtilTest, TokenJaccard) {
  EXPECT_DOUBLE_EQ(TokenJaccard("a b", "a b"), 1.0);
  EXPECT_DOUBLE_EQ(TokenJaccard("a b", "b c"), 1.0 / 3.0);
  EXPECT_DOUBLE_EQ(TokenJaccard("A", "a"), 1.0) << "case-insensitive";
  EXPECT_DOUBLE_EQ(TokenJaccard("", ""), 1.0);
  EXPECT_DOUBLE_EQ(TokenJaccard("x", "y"), 0.0);
}

TEST(StringUtilTest, BigramDice) {
  EXPECT_DOUBLE_EQ(BigramDice("night", "night"), 1.0);
  EXPECT_GT(BigramDice("night", "nacht"), 0.0);
  EXPECT_DOUBLE_EQ(BigramDice("a", "ab"), 0.0) << "too short";
  EXPECT_GT(BigramDice("philadelphia", "philadelphia 76ers"), 0.5);
}

TEST(StringUtilTest, NormalizeLabel) {
  EXPECT_EQ(NormalizeLabel("Philadelphia_(film)"), "philadelphia");
  EXPECT_EQ(NormalizeLabel("Antonio_Banderas"), "antonio banderas");
  EXPECT_EQ(NormalizeLabel("  Salt_Lake_City "), "salt lake city");
  EXPECT_EQ(NormalizeLabel("a__b"), "a b");
  EXPECT_EQ(NormalizeLabel(""), "");
}

TEST(StringUtilTest, IsAllDigits) {
  EXPECT_TRUE(IsAllDigits("0123"));
  EXPECT_FALSE(IsAllDigits(""));
  EXPECT_FALSE(IsAllDigits("12a"));
  EXPECT_FALSE(IsAllDigits("1.2"));
}

TEST(StringUtilTest, JsonEscapePassesPlainTextThrough) {
  EXPECT_EQ(JsonEscape("who is the mayor of Berlin ?"),
            "who is the mayor of Berlin ?");
  EXPECT_EQ(JsonEscape(""), "");
}

TEST(StringUtilTest, JsonEscapeQuotesAndBackslashes) {
  EXPECT_EQ(JsonEscape("say \"hi\""), "say \\\"hi\\\"");
  EXPECT_EQ(JsonEscape("a\\b"), "a\\\\b");
}

TEST(StringUtilTest, JsonEscapeNamedControlCharacters) {
  EXPECT_EQ(JsonEscape("a\nb\tc\rd\be\ff"), "a\\nb\\tc\\rd\\be\\ff");
}

TEST(StringUtilTest, JsonEscapeOtherControlBytesAsUnicode) {
  EXPECT_EQ(JsonEscape(std::string("\x01", 1)), "\\u0001");
  EXPECT_EQ(JsonEscape(std::string("\x1f", 1)), "\\u001f");
  EXPECT_EQ(JsonEscape(std::string("a\x00z", 3)), "a\\u0000z");
}

TEST(StringUtilTest, JsonEscapeLeavesUtf8Alone) {
  // Multi-byte UTF-8 (é, 😀) must pass through byte-identical.
  EXPECT_EQ(JsonEscape("caf\xc3\xa9"), "caf\xc3\xa9");
  EXPECT_EQ(JsonEscape("\xF0\x9F\x98\x80"), "\xF0\x9F\x98\x80");
}

TEST(StringUtilTest, AppendJsonEscapedAppends) {
  std::string out = "prefix:";
  AppendJsonEscaped(&out, "x\"y");
  EXPECT_EQ(out, "prefix:x\\\"y");
}

}  // namespace
}  // namespace ganswer
