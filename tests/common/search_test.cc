#include "common/search.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <random>
#include <utility>
#include <vector>

namespace ganswer {
namespace {

// Both probes promise the std::lower_bound contract exactly; the tests
// compare against it on exhaustive small inputs and randomized large ones.

TEST(SearchTest, BranchlessMatchesStdExhaustively) {
  // Every sorted multiset over {0..4} up to length 6, probed with every
  // value in and around the range.
  std::vector<uint32_t> keys;
  for (uint32_t mask = 0; mask < (1u << 12); ++mask) {
    keys.clear();
    uint32_t m = mask;
    while (m != 0 && keys.size() < 6) {
      keys.push_back(m % 5);
      m /= 5;
    }
    std::sort(keys.begin(), keys.end());
    for (uint32_t probe = 0; probe <= 5; ++probe) {
      auto expected = std::lower_bound(keys.begin(), keys.end(), probe);
      auto branchless = BranchlessLowerBound(keys.begin(), keys.end(), probe);
      auto galloping = GallopingLowerBound(keys.begin(), keys.end(), probe);
      ASSERT_EQ(expected - keys.begin(), branchless - keys.begin());
      ASSERT_EQ(expected - keys.begin(), galloping - keys.begin());
    }
  }
}

TEST(SearchTest, EmptyRange) {
  std::vector<int> empty;
  EXPECT_EQ(BranchlessLowerBound(empty.begin(), empty.end(), 7), empty.end());
  EXPECT_EQ(GallopingLowerBound(empty.begin(), empty.end(), 7), empty.end());
}

TEST(SearchTest, RandomizedLargeRuns) {
  std::mt19937 rng(99);
  for (int round = 0; round < 20; ++round) {
    size_t n = 1 + rng() % 5000;
    std::vector<uint64_t> keys(n);
    for (auto& k : keys) k = rng() % (n * 2);
    std::sort(keys.begin(), keys.end());
    for (int probe = 0; probe < 200; ++probe) {
      uint64_t v = rng() % (n * 2 + 2);
      auto expected = std::lower_bound(keys.begin(), keys.end(), v);
      EXPECT_EQ(expected, BranchlessLowerBound(keys.begin(), keys.end(), v));
      EXPECT_EQ(expected, GallopingLowerBound(keys.begin(), keys.end(), v));
    }
  }
}

TEST(SearchTest, GallopingFromAdvancingIterator) {
  // The merge-join shape: restart each search from the previous hit.
  std::mt19937 rng(7);
  std::vector<uint32_t> keys(10000);
  uint32_t next = 0;
  for (auto& k : keys) k = next += rng() % 4;
  auto it = keys.begin();
  auto expected_it = keys.begin();
  while (it != keys.end() && keys.end() - it > 40) {
    uint32_t target = *(it + 1 + rng() % 32);
    it = GallopingLowerBound(it, keys.end(), target);
    expected_it = std::lower_bound(expected_it, keys.end(), target);
    ASSERT_EQ(expected_it, it);
    if (it != keys.end()) ++it, ++expected_it;
  }
}

TEST(SearchTest, CustomComparatorOnPairs) {
  // The engine's permutation-run shape: pairs ordered by first component,
  // probed with {key, 0} under a first-only comparator.
  auto cmp = [](const std::pair<uint32_t, uint32_t>& a,
                const std::pair<uint32_t, uint32_t>& b) {
    return a.first < b.first;
  };
  std::vector<std::pair<uint32_t, uint32_t>> runs;
  for (uint32_t k = 0; k < 50; k += 3) {
    for (uint32_t i = 0; i < 1 + k % 5; ++i) runs.push_back({k, i * 7});
  }
  for (uint32_t probe = 0; probe <= 52; ++probe) {
    std::pair<uint32_t, uint32_t> target{probe, 0};
    auto expected = std::lower_bound(runs.begin(), runs.end(), target, cmp);
    EXPECT_EQ(expected, BranchlessLowerBound(runs.begin(), runs.end(), target,
                                             cmp));
    EXPECT_EQ(expected,
              GallopingLowerBound(runs.begin(), runs.end(), target, cmp));
  }
}

}  // namespace
}  // namespace ganswer
