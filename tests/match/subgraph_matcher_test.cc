#include "match/subgraph_matcher.h"

#include <gtest/gtest.h>

namespace ganswer {
namespace match {
namespace {

paraphrase::ParaphraseEntry Entry(const rdf::RdfGraph& g, const char* pred,
                                  bool fwd, double conf) {
  paraphrase::ParaphraseEntry e;
  e.path.steps = {{*g.Find(pred), fwd}};
  e.confidence = conf;
  return e;
}

linking::LinkCandidate Cand(const rdf::RdfGraph& g, const char* name,
                            double conf, bool is_class = false) {
  linking::LinkCandidate c;
  c.vertex = *g.Find(name);
  c.confidence = conf;
  c.is_class = is_class;
  return c;
}

rdf::RdfGraph TriangleGraph() {
  rdf::RdfGraph g;
  g.AddTriple("a", "p", "b");
  g.AddTriple("b", "p", "c");
  g.AddTriple("c", "p", "a");
  g.AddTriple("a", "q", "x");
  EXPECT_TRUE(g.Finalize().ok());
  return g;
}

TEST(SubgraphMatcherTest, AnchoredSearchFindsAllMatchesContainingAnchor) {
  rdf::RdfGraph g = TriangleGraph();
  QueryGraph q;
  QueryVertex u, v;
  u.wildcard = v.wildcard = false;
  u.candidates = {Cand(g, "a", 1.0), Cand(g, "b", 1.0), Cand(g, "c", 1.0)};
  v.candidates = u.candidates;
  q.vertices = {u, v};
  QueryEdge e;
  e.from = 0;
  e.to = 1;
  e.candidates = {Entry(g, "p", true, 1.0)};
  q.edges = {e};

  CandidateSpace space = CandidateSpace::Build(g, q, false);
  SubgraphMatcher matcher(&g, &q, &space);
  std::vector<Match> out;
  matcher.FindMatchesFrom(0, *g.Find("a"), 0, &out);
  // a participates as arg1 in (a,b) via forward and (a,c) via Def-3 reverse.
  EXPECT_EQ(out.size(), 2u);
}

TEST(SubgraphMatcherTest, InjectivityForbidsVertexReuse) {
  rdf::RdfGraph g;
  g.AddTriple("n", "loop", "n");
  g.AddTriple("n", "loop", "m");
  ASSERT_TRUE(g.Finalize().ok());
  QueryGraph q;
  QueryVertex u, v;
  u.candidates = {Cand(g, "n", 1.0)};
  v.wildcard = true;
  q.vertices = {u, v};
  QueryEdge e;
  e.from = 0;
  e.to = 1;
  e.candidates = {Entry(g, "loop", true, 1.0)};
  q.edges = {e};
  CandidateSpace space = CandidateSpace::Build(g, q, false);
  SubgraphMatcher matcher(&g, &q, &space);
  std::vector<Match> out;
  matcher.FindMatchesFrom(0, *g.Find("n"), 0, &out);
  ASSERT_EQ(out.size(), 1u) << "the self-loop n->n is not a valid match";
  EXPECT_EQ(out[0].assignment[1], *g.Find("m"));
}

TEST(SubgraphMatcherTest, AnchorOutsideDomainYieldsNothing) {
  rdf::RdfGraph g = TriangleGraph();
  QueryGraph q;
  QueryVertex u;
  u.candidates = {Cand(g, "a", 1.0)};
  q.vertices = {u};
  CandidateSpace space = CandidateSpace::Build(g, q, false);
  SubgraphMatcher matcher(&g, &q, &space);
  std::vector<Match> out;
  matcher.FindMatchesFrom(0, *g.Find("b"), 0, &out);
  EXPECT_TRUE(out.empty());
}

TEST(SubgraphMatcherTest, MultipleBackEdgesAllChecked) {
  // Query triangle u-v-w; data has one triangle and one open path.
  rdf::RdfGraph g = TriangleGraph();
  QueryGraph q;
  QueryVertex u, v, w;
  u.wildcard = v.wildcard = w.wildcard = true;
  u.wildcard = false;
  u.candidates = {Cand(g, "a", 1.0), Cand(g, "x", 1.0)};
  q.vertices = {u, v, w};
  QueryEdge e1{0, 1, {Entry(g, "p", true, 1.0)}, false, 0.3};
  QueryEdge e2{1, 2, {Entry(g, "p", true, 1.0)}, false, 0.3};
  QueryEdge e3{2, 0, {Entry(g, "p", true, 1.0)}, false, 0.3};
  q.edges = {e1, e2, e3};
  CandidateSpace space = CandidateSpace::Build(g, q, false);
  SubgraphMatcher matcher(&g, &q, &space);
  std::vector<Match> out;
  matcher.FindMatchesFrom(0, *g.Find("a"), 0, &out);
  // Triangle a-b-c closes (Def-3 either-direction makes rotations valid);
  // x has no p-edges at all, so anchoring at a only.
  ASSERT_FALSE(out.empty());
  for (const Match& m : out) {
    std::set<rdf::TermId> used(m.assignment.begin(), m.assignment.end());
    EXPECT_EQ(used.size(), 3u);
    EXPECT_FALSE(used.count(*g.Find("x")));
  }
}

TEST(SubgraphMatcherTest, LimitStopsEnumeration) {
  rdf::RdfGraph g;
  for (int i = 0; i < 10; ++i) {
    g.AddTriple("hub", "p", "n" + std::to_string(i));
  }
  ASSERT_TRUE(g.Finalize().ok());
  QueryGraph q;
  QueryVertex hub;
  hub.candidates = {Cand(g, "hub", 1.0)};
  QueryVertex other;
  other.wildcard = true;
  q.vertices = {hub, other};
  QueryEdge e{0, 1, {Entry(g, "p", true, 1.0)}, false, 0.3};
  q.edges = {e};
  CandidateSpace space = CandidateSpace::Build(g, q, false);
  SubgraphMatcher matcher(&g, &q, &space);
  std::vector<Match> out;
  matcher.FindMatchesFrom(0, *g.Find("hub"), 4, &out);
  EXPECT_EQ(out.size(), 4u);
}

TEST(SubgraphMatcherTest, DisconnectedQueryMatchesAnchorComponentOnly) {
  rdf::RdfGraph g = TriangleGraph();
  QueryGraph q;
  QueryVertex u, v, lonely;
  u.candidates = {Cand(g, "a", 1.0)};
  v.wildcard = true;
  lonely.candidates = {Cand(g, "x", 1.0)};
  q.vertices = {u, v, lonely};
  QueryEdge e{0, 1, {Entry(g, "p", true, 1.0)}, false, 0.3};
  q.edges = {e};
  CandidateSpace space = CandidateSpace::Build(g, q, false);
  SubgraphMatcher matcher(&g, &q, &space);
  std::vector<Match> out;
  matcher.FindMatchesFrom(0, *g.Find("a"), 0, &out);
  ASSERT_FALSE(out.empty());
  for (const Match& m : out) {
    EXPECT_EQ(m.assignment[2], rdf::kInvalidTerm)
        << "the disconnected vertex stays unassigned";
  }
}

}  // namespace
}  // namespace match
}  // namespace ganswer
