#include "match/top_k_matcher.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/random.h"

namespace ganswer {
namespace match {
namespace {

paraphrase::ParaphraseEntry Entry(const rdf::RdfGraph& g, const char* pred,
                                  bool fwd, double conf) {
  paraphrase::ParaphraseEntry e;
  e.path.steps = {{*g.Find(pred), fwd}};
  e.confidence = conf;
  return e;
}

linking::LinkCandidate Cand(const rdf::RdfGraph& g, const char* name,
                            double conf, bool is_class = false) {
  linking::LinkCandidate c;
  c.vertex = *g.Find(name);
  c.confidence = conf;
  c.is_class = is_class;
  return c;
}

rdf::RdfGraph RunningExampleGraph() {
  rdf::RdfGraph g;
  g.AddTriple("Melanie", "spouse", "Antonio");
  g.AddTriple("Antonio", "rdf:type", "Actor");
  g.AddTriple("Melanie", "rdf:type", "Actor");
  g.AddTriple("Philadelphia_(film)", "starring", "Antonio");
  g.AddTriple("Philadelphia_76ers", "locationCity", "Philadelphia");
  g.AddTriple("Philadelphia", "country", "US");
  g.AddTriple("Jamie", "playForTeam", "Philadelphia_76ers");
  EXPECT_TRUE(g.Finalize().ok());
  return g;
}

// Q^S of the running example: who --married to-- actor --play in-- Phila.
QueryGraph RunningExampleQuery(const rdf::RdfGraph& g) {
  QueryGraph q;
  QueryVertex who;
  who.wildcard = true;
  QueryVertex actor;
  actor.candidates = {Cand(g, "Actor", 1.0, true)};
  QueryVertex phila;
  phila.candidates = {Cand(g, "Philadelphia_(film)", 0.9),
                      Cand(g, "Philadelphia", 0.9),
                      Cand(g, "Philadelphia_76ers", 0.8)};
  q.vertices = {who, actor, phila};
  QueryEdge married;
  married.from = 0;
  married.to = 1;
  married.candidates = {Entry(g, "spouse", true, 1.0)};
  QueryEdge play;
  play.from = 1;
  play.to = 2;
  play.candidates = {Entry(g, "starring", false, 1.0),
                     Entry(g, "playForTeam", true, 0.5)};
  q.edges = {married, play};
  return q;
}

TEST(TopKMatcherTest, RunningExampleResolvesAmbiguityFromData) {
  rdf::RdfGraph g = RunningExampleGraph();
  TopKMatcher matcher(&g);
  auto matches = matcher.FindTopK(RunningExampleQuery(g));
  ASSERT_TRUE(matches.ok()) << matches.status().ToString();
  ASSERT_EQ(matches->size(), 1u)
      << "only the film interpretation yields a subgraph match";
  const Match& m = (*matches)[0];
  EXPECT_EQ(m.assignment[0], *g.Find("Melanie"));
  EXPECT_EQ(m.assignment[1], *g.Find("Antonio"));
  EXPECT_EQ(m.assignment[2], *g.Find("Philadelphia_(film)"));
}

TEST(TopKMatcherTest, ScoreFollowsDefinitionSix) {
  rdf::RdfGraph g = RunningExampleGraph();
  TopKMatcher matcher(&g);
  auto matches = matcher.FindTopK(RunningExampleQuery(g));
  ASSERT_TRUE(matches.ok());
  ASSERT_EQ(matches->size(), 1u);
  // log(1.0 [wh]) + log(1.0 [class actor]) + log(0.9 [film cand])
  // + log(1.0 [spouse]) + log(1.0 [starring]).
  EXPECT_NEAR((*matches)[0].score, std::log(0.9), 1e-9);
}

TEST(TopKMatcherTest, AllWildcardQueryIsRejected) {
  rdf::RdfGraph g = RunningExampleGraph();
  QueryGraph q;
  QueryVertex a, b;
  a.wildcard = b.wildcard = true;
  q.vertices = {a, b};
  QueryEdge e;
  e.from = 0;
  e.to = 1;
  e.wildcard = true;
  q.edges = {e};
  TopKMatcher matcher(&g);
  EXPECT_TRUE(matcher.FindTopK(q).status().IsInvalidArgument());
}

TEST(TopKMatcherTest, SingleVertexQueryListsDomain) {
  rdf::RdfGraph g = RunningExampleGraph();
  QueryGraph q;
  QueryVertex actors;
  actors.candidates = {Cand(g, "Actor", 0.8, true)};
  q.vertices = {actors};
  TopKMatcher matcher(&g);
  auto matches = matcher.FindTopK(q);
  ASSERT_TRUE(matches.ok());
  EXPECT_EQ(matches->size(), 2u) << "Antonio and Melanie";
}

TEST(TopKMatcherTest, EmptyQueryIsRejected) {
  rdf::RdfGraph g = RunningExampleGraph();
  TopKMatcher matcher(&g);
  EXPECT_FALSE(matcher.FindTopK(QueryGraph{}).ok());
}

TEST(TopKMatcherTest, PrunedToNothingGivesEmptyResult) {
  rdf::RdfGraph g = RunningExampleGraph();
  QueryGraph q = RunningExampleQuery(g);
  // Restrict the Philadelphia vertex to the city only: pruning kills it.
  q.vertices[2].candidates = {Cand(g, "Philadelphia", 0.9)};
  TopKMatcher matcher(&g);
  auto matches = matcher.FindTopK(q);
  ASSERT_TRUE(matches.ok());
  EXPECT_TRUE(matches->empty());
}

TEST(TopKMatcherTest, KLimitsAndTiesAreKept) {
  rdf::RdfGraph g;
  for (int i = 0; i < 8; ++i) {
    g.AddTriple("hub", "p", "n" + std::to_string(i));
  }
  ASSERT_TRUE(g.Finalize().ok());
  QueryGraph q;
  QueryVertex hub;
  hub.candidates = {Cand(g, "hub", 1.0)};
  QueryVertex other;
  other.wildcard = true;
  q.vertices = {hub, other};
  QueryEdge e;
  e.from = 0;
  e.to = 1;
  e.candidates = {Entry(g, "p", true, 0.9)};
  q.edges = {e};

  TopKMatcher::Options opt;
  opt.k = 3;
  TopKMatcher matcher(&g, opt);
  auto matches = matcher.FindTopK(q);
  ASSERT_TRUE(matches.ok());
  // All 8 matches share the same score: ties with the k-th are all kept
  // (the paper returns more than k on equal scores).
  EXPECT_EQ(matches->size(), 8u);
}

// ---------------------------------------------------------------------------
// Property: TA early termination returns exactly the same top-k as the
// exhaustive run, on randomized graphs and candidate lists.
// ---------------------------------------------------------------------------

class TopKPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(TopKPropertyTest, EarlyStopEqualsExhaustive) {
  Rng rng(GetParam());
  rdf::RdfGraph g;
  std::vector<std::string> vs;
  for (int i = 0; i < 12; ++i) vs.push_back("v" + std::to_string(i));
  std::vector<std::string> ps{"p", "q", "r"};
  for (int i = 0; i < 30; ++i) {
    g.AddTriple(rng.Pick(vs), rng.Pick(ps), rng.Pick(vs));
  }
  ASSERT_TRUE(g.Finalize().ok());

  QueryGraph query;
  QueryVertex a;
  for (int i = 0; i < 5; ++i) {
    a.candidates.push_back(
        Cand(g, vs[rng.Next(vs.size())].c_str(), 0.3 + 0.1 * rng.Next(7)));
  }
  QueryVertex b;
  b.wildcard = true;
  query.vertices = {a, b};
  QueryEdge e;
  e.from = 0;
  e.to = 1;
  e.candidates = {Entry(g, "p", true, 0.9), Entry(g, "q", false, 0.6)};
  query.edges = {e};

  TopKMatcher::Options with_ta;
  with_ta.k = 4;
  with_ta.ta_early_stop = true;
  TopKMatcher::Options without_ta = with_ta;
  without_ta.ta_early_stop = false;

  auto fast = TopKMatcher(&g, with_ta).FindTopK(query);
  auto slow = TopKMatcher(&g, without_ta).FindTopK(query);
  ASSERT_TRUE(fast.ok());
  ASSERT_TRUE(slow.ok());
  ASSERT_EQ(fast->size(), slow->size()) << "seed=" << GetParam();
  for (size_t i = 0; i < fast->size(); ++i) {
    EXPECT_DOUBLE_EQ((*fast)[i].score, (*slow)[i].score);
    EXPECT_EQ((*fast)[i].assignment, (*slow)[i].assignment);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TopKPropertyTest,
                         ::testing::Values(21, 22, 23, 24, 25, 26, 27, 28, 29,
                                           30));

}  // namespace
}  // namespace match
}  // namespace ganswer
