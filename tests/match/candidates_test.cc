#include "match/candidates.h"

#include <gtest/gtest.h>

namespace ganswer {
namespace match {
namespace {

// The paper's Figure 2 neighborhood: three "Philadelphia"s, only the film
// has a starring edge.
rdf::RdfGraph Figure2Graph() {
  rdf::RdfGraph g;
  g.AddTriple("Philadelphia_(film)", "starring", "Antonio");
  g.AddTriple("Philadelphia_76ers", "locationCity", "Philadelphia");
  g.AddTriple("Philadelphia", "country", "United_States");
  g.AddTriple("Antonio", "rdf:type", "Actor");
  g.AddTriple("Melanie", "spouse", "Antonio");
  g.AddTriple("Melanie", "rdf:type", "Actor");
  EXPECT_TRUE(g.Finalize().ok());
  return g;
}

paraphrase::ParaphraseEntry Entry(const rdf::RdfGraph& g, const char* pred,
                                  bool fwd, double conf) {
  paraphrase::ParaphraseEntry e;
  e.path.steps = {{*g.Find(pred), fwd}};
  e.confidence = conf;
  return e;
}

linking::LinkCandidate Cand(const rdf::RdfGraph& g, const char* name,
                            double conf, bool is_class = false) {
  linking::LinkCandidate c;
  c.vertex = *g.Find(name);
  c.confidence = conf;
  c.is_class = is_class;
  return c;
}

TEST(CandidateSpaceTest, EntityCandidatesBecomeDomainItems) {
  rdf::RdfGraph g = Figure2Graph();
  QueryGraph q;
  QueryVertex v;
  v.candidates = {Cand(g, "Philadelphia_(film)", 0.9),
                  Cand(g, "Philadelphia", 0.8)};
  q.vertices.push_back(v);
  CandidateSpace space = CandidateSpace::Build(g, q, false);
  ASSERT_EQ(space.domain(0).items.size(), 2u);
  EXPECT_EQ(space.domain(0).items[0].confidence, 0.9);
}

TEST(CandidateSpaceTest, ClassCandidatesExpandToInstances) {
  rdf::RdfGraph g = Figure2Graph();
  QueryGraph q;
  QueryVertex v;
  v.candidates = {Cand(g, "Actor", 0.7, /*is_class=*/true)};
  q.vertices.push_back(v);
  CandidateSpace space = CandidateSpace::Build(g, q, false);
  EXPECT_EQ(space.domain(0).items.size(), 2u) << "Antonio and Melanie";
  for (const auto& item : space.domain(0).items) {
    EXPECT_DOUBLE_EQ(item.confidence, 0.7) << "class confidence inherited";
  }
}

TEST(CandidateSpaceTest, NeighborhoodPruningDropsU5) {
  // Paper, Sec. 4.2.2: <Philadelphia> (the city, u5) has no adjacent
  // predicate mapping "play in", so it is pruned from C_v3.
  rdf::RdfGraph g = Figure2Graph();
  QueryGraph q;
  QueryVertex actor;
  actor.candidates = {Cand(g, "Actor", 1.0, true)};
  QueryVertex phila;
  phila.candidates = {Cand(g, "Philadelphia_(film)", 0.9),
                      Cand(g, "Philadelphia", 0.9),
                      Cand(g, "Philadelphia_76ers", 0.8)};
  q.vertices = {actor, phila};
  QueryEdge play;
  play.from = 0;
  play.to = 1;
  play.candidates = {Entry(g, "starring", false, 1.0),
                     Entry(g, "playForTeam", true, 0.4)};
  q.edges = {play};

  CandidateSpace unpruned = CandidateSpace::Build(g, q, false);
  EXPECT_EQ(unpruned.domain(1).items.size(), 3u);

  CandidateSpace pruned = CandidateSpace::Build(g, q, true);
  ASSERT_EQ(pruned.domain(1).items.size(), 1u)
      << "only the film has an incident starring/playForTeam edge";
  EXPECT_EQ(pruned.domain(1).items[0].vertex, *g.Find("Philadelphia_(film)"));
}

TEST(CandidateSpaceTest, WildcardDomainsStayEmpty) {
  rdf::RdfGraph g = Figure2Graph();
  QueryGraph q;
  QueryVertex wh;
  wh.wildcard = true;
  q.vertices.push_back(wh);
  CandidateSpace space = CandidateSpace::Build(g, q, true);
  EXPECT_TRUE(space.domain(0).wildcard);
  EXPECT_TRUE(space.domain(0).items.empty());
  EXPECT_TRUE(space.VertexDelta(0, *g.Find("Antonio")).has_value());
}

TEST(CandidateSpaceTest, VertexDeltaReflectsBestCandidate) {
  rdf::RdfGraph g = Figure2Graph();
  QueryGraph q;
  QueryVertex v;
  v.candidates = {Cand(g, "Antonio", 0.5), Cand(g, "Antonio", 0.8),
                  Cand(g, "Actor", 0.3, true)};
  q.vertices.push_back(v);
  CandidateSpace space = CandidateSpace::Build(g, q, false);
  auto delta = space.VertexDelta(0, *g.Find("Antonio"));
  ASSERT_TRUE(delta.has_value());
  EXPECT_DOUBLE_EQ(*delta, 0.8) << "max of duplicate/class contributions";
  EXPECT_FALSE(space.VertexDelta(0, *g.Find("Philadelphia")).has_value());
}

TEST(CandidateSpaceTest, EdgeDeltaSinglePredicateEitherDirection) {
  rdf::RdfGraph g = Figure2Graph();
  QueryEdge e;
  e.from = 0;
  e.to = 1;
  e.candidates = {Entry(g, "spouse", true, 0.9)};
  rdf::TermId mel = *g.Find("Melanie");
  rdf::TermId ant = *g.Find("Antonio");
  EXPECT_TRUE(CandidateSpace::EdgeDelta(g, e, 0, mel, ant).has_value());
  EXPECT_TRUE(CandidateSpace::EdgeDelta(g, e, 0, ant, mel).has_value())
      << "Definition 3 admits either direction";
  EXPECT_FALSE(
      CandidateSpace::EdgeDelta(g, e, 0, mel, *g.Find("Philadelphia"))
          .has_value());
}

TEST(CandidateSpaceTest, EdgeDeltaWildcardNeedsDirectEdge) {
  rdf::RdfGraph g = Figure2Graph();
  QueryEdge e;
  e.from = 0;
  e.to = 1;
  e.wildcard = true;
  e.wildcard_confidence = 0.25;
  auto delta = CandidateSpace::EdgeDelta(g, e, 0, *g.Find("Melanie"),
                                         *g.Find("Antonio"));
  ASSERT_TRUE(delta.has_value());
  EXPECT_DOUBLE_EQ(*delta, 0.25);
  EXPECT_FALSE(CandidateSpace::EdgeDelta(g, e, 0, *g.Find("Melanie"),
                                         *g.Find("Philadelphia"))
                   .has_value());
}

TEST(CandidateSpaceTest, EdgeDeltaPicksBestConnectingCandidate) {
  rdf::RdfGraph g = Figure2Graph();
  QueryEdge e;
  e.from = 0;
  e.to = 1;
  e.candidates = {Entry(g, "starring", true, 0.9),
                  Entry(g, "spouse", true, 0.6)};
  auto delta = CandidateSpace::EdgeDelta(g, e, 0, *g.Find("Melanie"),
                                         *g.Find("Antonio"));
  ASSERT_TRUE(delta.has_value());
  EXPECT_DOUBLE_EQ(*delta, 0.6) << "starring does not connect them";
}

TEST(CandidateSpaceTest, ExpandFollowsPredicatePaths) {
  rdf::RdfGraph g = Figure2Graph();
  QueryEdge e;
  e.from = 0;
  e.to = 1;
  paraphrase::ParaphraseEntry two_hop;
  two_hop.path.steps = {{*g.Find("spouse"), true},
                        {*g.Find("starring"), false}};
  two_hop.confidence = 0.5;
  e.candidates = {two_hop};
  // Melanie -spouse-> Antonio <-starring- Philadelphia_(film).
  auto ends = CandidateSpace::Expand(g, e, 0, *g.Find("Melanie"));
  ASSERT_EQ(ends.size(), 1u);
  EXPECT_EQ(ends[0], *g.Find("Philadelphia_(film)"));
  // From the 'to' side the path runs reversed.
  auto back = CandidateSpace::Expand(g, e, 1, *g.Find("Philadelphia_(film)"));
  ASSERT_EQ(back.size(), 1u);
  EXPECT_EQ(back[0], *g.Find("Melanie"));
}

}  // namespace
}  // namespace match
}  // namespace ganswer
