// Randomized Definition-3 property test for the matcher, on top of the
// shared generators (tests/test_support.h) and the exhaustive reference
// oracle (tests/oracle/match_oracle.h). The heavier multi-configuration
// differential suite lives in tests/oracle/match_oracle_test.cc; this one
// keeps a fast fixed-shape query in the default test target.

#include <gtest/gtest.h>

#include <vector>

#include "match/top_k_matcher.h"
#include "oracle/match_oracle.h"
#include "test_support.h"

namespace ganswer {
namespace testing {
namespace {

using match::Match;
using match::QueryEdge;
using match::QueryGraph;
using match::QueryVertex;

class MatchPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MatchPropertyTest, TopKEqualsBruteForceDefinitionThree) {
  Rng rng(GetParam());
  RandomGraphOptions gopts;
  gopts.num_vertices = 9;
  gopts.num_predicates = 2;
  gopts.num_triples = 16;
  gopts.num_classes = 1;
  gopts.type_rate = 0.25;
  gopts.duplicate_rate = 0.0;
  RandomGraphData data = BuildRandomGraph(GetParam(), gopts);
  const rdf::RdfGraph& g = data.graph;

  // Only vocabulary that actually landed in a triple is interned; picking
  // names blindly would dereference an empty Find() result.
  std::vector<rdf::TermId> vertices, predicates;
  for (size_t i = 0; i < gopts.num_vertices; ++i) {
    if (auto id = g.Find("v" + std::to_string(i))) vertices.push_back(*id);
  }
  for (size_t i = 0; i < gopts.num_predicates; ++i) {
    if (auto id = g.Find("p" + std::to_string(i))) predicates.push_back(*id);
  }
  ASSERT_FALSE(vertices.empty());
  ASSERT_FALSE(predicates.empty());

  // Fixed query shape: entity-list -> class -> wildcard path.
  QueryGraph query;
  QueryVertex a;
  for (int i = 0; i < 3; ++i) {
    linking::LinkCandidate c;
    c.vertex = rng.Pick(vertices);
    c.confidence = 0.4 + 0.1 * static_cast<double>(rng.Next(6));
    a.candidates.push_back(c);
  }
  QueryVertex b;
  if (auto cls = g.Find("C0"); cls.has_value()) {
    linking::LinkCandidate c;
    c.vertex = *cls;
    c.is_class = true;
    c.confidence = 0.8;
    b.candidates = {c};
  } else {
    b.wildcard = true;  // this seed typed no vertex; degrade gracefully
  }
  QueryVertex c;
  c.wildcard = true;
  query.vertices = {a, b, c};
  auto entry = [&](size_t p, double conf) {
    paraphrase::ParaphraseEntry e;
    e.path.steps = {{predicates[p % predicates.size()], true}};
    e.confidence = conf;
    return e;
  };
  QueryEdge e1{0, 1, {entry(0, 0.9), entry(1, 0.5)}, false, 0.3};
  QueryEdge e2{1, 2, {entry(1, 0.7)}, false, 0.3};
  query.edges = {e1, e2};

  match::TopKMatcher::Options opt;
  opt.k = 5;
  auto got = match::TopKMatcher(&g, opt).FindTopK(query);
  ASSERT_TRUE(got.ok()) << got.status().ToString();

  std::vector<Match> want = MatchOracle(g, data.triples).AllMatches(query);
  match::SortAndCutTopK(&want, opt.k);

  ASSERT_EQ(got->size(), want.size()) << "seed=" << GetParam();
  for (size_t i = 0; i < want.size(); ++i) {
    EXPECT_NEAR((*got)[i].score, want[i].score, 1e-9);
    EXPECT_EQ((*got)[i].assignment, want[i].assignment)
        << "seed=" << GetParam() << " rank " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MatchPropertyTest,
                         ::testing::Values(51, 52, 53, 54, 55, 56, 57, 58, 59,
                                           60, 61, 62));

}  // namespace
}  // namespace testing
}  // namespace ganswer
