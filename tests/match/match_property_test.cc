#include <gtest/gtest.h>

#include <cmath>
#include <functional>
#include <set>

#include "common/random.h"
#include "match/top_k_matcher.h"

namespace ganswer {
namespace match {
namespace {

// Brute-force reference: enumerate EVERY injective assignment of query
// vertices to graph vertices, check Definition 3 directly, score by
// Definition 6, and keep the top-k (with ties).
struct BruteForcer {
  const rdf::RdfGraph& g;
  const QueryGraph& q;

  bool VertexOk(const QueryVertex& qv, rdf::TermId u, double* delta) const {
    if (qv.wildcard) {
      *delta = qv.wildcard_confidence;
      return true;
    }
    double best = -1;
    for (const linking::LinkCandidate& c : qv.candidates) {
      if (c.is_class) {
        if (g.IsInstanceOf(u, c.vertex)) best = std::max(best, c.confidence);
      } else if (c.vertex == u) {
        best = std::max(best, c.confidence);
      }
    }
    *delta = best;
    return best > 0;
  }

  bool EdgeOk(const QueryEdge& e, rdf::TermId uf, rdf::TermId ut,
              double* delta) const {
    auto d = CandidateSpace::EdgeDelta(g, e, e.from, uf, ut);
    if (!d.has_value()) return false;
    *delta = *d;
    return true;
  }

  std::vector<Match> AllMatches() const {
    std::vector<Match> out;
    std::vector<rdf::TermId> assignment(q.vertices.size(), rdf::kInvalidTerm);
    std::vector<rdf::TermId> universe;
    for (rdf::TermId v = 0; v < g.dict().size(); ++v) universe.push_back(v);

    std::function<void(size_t, double)> rec = [&](size_t depth, double score) {
      if (depth == q.vertices.size()) {
        double edge_score = 0;
        for (const QueryEdge& e : q.edges) {
          double d;
          if (!EdgeOk(e, assignment[e.from], assignment[e.to], &d)) return;
          edge_score += std::log(d);
        }
        Match m;
        m.assignment = assignment;
        m.score = score + edge_score;
        out.push_back(std::move(m));
        return;
      }
      for (rdf::TermId u : universe) {
        bool used = false;
        for (size_t i = 0; i < depth; ++i) {
          if (assignment[i] == u) used = true;
        }
        if (used) continue;
        double d;
        if (!VertexOk(q.vertices[depth], u, &d)) continue;
        assignment[depth] = u;
        rec(depth + 1, score + std::log(d));
        assignment[depth] = rdf::kInvalidTerm;
      }
    };
    rec(0, 0.0);
    return out;
  }
};

class MatchPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MatchPropertyTest, TopKEqualsBruteForceDefinitionThree) {
  Rng rng(GetParam());
  rdf::RdfGraph g;
  std::vector<std::string> vs;
  for (int i = 0; i < 9; ++i) vs.push_back("v" + std::to_string(i));
  std::vector<std::string> ps{"p", "q"};
  for (int i = 0; i < 16; ++i) {
    g.AddTriple(rng.Pick(vs), rng.Pick(ps), rng.Pick(vs));
  }
  // A couple of typed vertices so class candidates participate.
  g.AddTriple("v0", "rdf:type", "C");
  g.AddTriple("v1", "rdf:type", "C");
  ASSERT_TRUE(g.Finalize().ok());

  // Random query: 3 vertices (entity-list, class, wildcard), path topology.
  QueryGraph query;
  QueryVertex a;
  for (int i = 0; i < 3; ++i) {
    linking::LinkCandidate c;
    c.vertex = *g.Find(vs[rng.Next(vs.size())]);
    c.confidence = 0.4 + 0.1 * static_cast<double>(rng.Next(6));
    a.candidates.push_back(c);
  }
  QueryVertex b;
  linking::LinkCandidate cls;
  cls.vertex = *g.Find("C");
  cls.is_class = true;
  cls.confidence = 0.8;
  b.candidates = {cls};
  QueryVertex c;
  c.wildcard = true;
  query.vertices = {a, b, c};
  auto entry = [&](const char* p, double conf) {
    paraphrase::ParaphraseEntry e;
    e.path.steps = {{*g.Find(p), true}};
    e.confidence = conf;
    return e;
  };
  QueryEdge e1{0, 1, {entry("p", 0.9), entry("q", 0.5)}, false, 0.3};
  QueryEdge e2{1, 2, {entry("q", 0.7)}, false, 0.3};
  query.edges = {e1, e2};

  TopKMatcher::Options opt;
  opt.k = 5;
  auto got = TopKMatcher(&g, opt).FindTopK(query);
  ASSERT_TRUE(got.ok()) << got.status().ToString();

  std::vector<Match> want = BruteForcer{g, query}.AllMatches();
  std::sort(want.begin(), want.end(), [](const Match& x, const Match& y) {
    if (x.score != y.score) return x.score > y.score;
    return x.assignment < y.assignment;
  });
  if (want.size() > opt.k) {
    double kth = want[opt.k - 1].score;
    size_t cut = opt.k;
    while (cut < want.size() && want[cut].score == kth) ++cut;
    want.resize(cut);
  }

  ASSERT_EQ(got->size(), want.size()) << "seed=" << GetParam();
  for (size_t i = 0; i < want.size(); ++i) {
    EXPECT_NEAR((*got)[i].score, want[i].score, 1e-9);
    EXPECT_EQ((*got)[i].assignment, want[i].assignment)
        << "seed=" << GetParam() << " rank " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MatchPropertyTest,
                         ::testing::Values(51, 52, 53, 54, 55, 56, 57, 58, 59,
                                           60, 61, 62));

}  // namespace
}  // namespace match
}  // namespace ganswer
