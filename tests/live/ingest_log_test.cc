#include "store/live/ingest_log.h"

#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

namespace ganswer {
namespace store {
namespace live {
namespace {

std::string TestPath(const std::string& stem) {
  return stem + "." + std::to_string(::getpid()) + ".tmp";
}

std::vector<rdf::UpdateOp> SampleOps() {
  return {
      {"Berlin", "population", "3700000", rdf::TermKind::kLiteral, false},
      {"Berlin", "capital_of", "Germany", rdf::TermKind::kIri, false},
      {"Bonn", "capital_of", "Germany", rdf::TermKind::kIri, true},
  };
}

size_t FileSize(const std::string& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  return in ? static_cast<size_t>(in.tellg()) : 0;
}

void AppendRaw(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::app);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

TEST(IngestLogTest, AppendReplayRoundTrip) {
  std::string path = TestPath("ingest_log_roundtrip");
  std::remove(path.c_str());
  {
    auto log = IngestLog::Open(path);
    ASSERT_TRUE(log.ok()) << log.status().ToString();
    ASSERT_TRUE((*log)->Append(1, SampleOps()).ok());
    ASSERT_TRUE((*log)->Append(2, {SampleOps()[0]}).ok());
    EXPECT_EQ((*log)->size_bytes(), FileSize(path));
  }
  auto records = IngestLog::Replay(path);
  ASSERT_TRUE(records.ok()) << records.status().ToString();
  ASSERT_EQ(records->size(), 2u);
  EXPECT_EQ((*records)[0].epoch, 1u);
  EXPECT_EQ((*records)[0].ops, SampleOps());
  EXPECT_EQ((*records)[1].epoch, 2u);
  ASSERT_EQ((*records)[1].ops.size(), 1u);
  EXPECT_EQ((*records)[1].ops[0], SampleOps()[0]);
  std::remove(path.c_str());
}

TEST(IngestLogTest, MissingFileIsEmptyLog) {
  auto records = IngestLog::Replay("/nonexistent/ganswer-live.wal");
  ASSERT_TRUE(records.ok()) << records.status().ToString();
  EXPECT_TRUE(records->empty());
}

TEST(IngestLogTest, ReplayTruncatesTornTail) {
  std::string path = TestPath("ingest_log_torn");
  std::remove(path.c_str());
  {
    auto log = IngestLog::Open(path);
    ASSERT_TRUE(log.ok());
    ASSERT_TRUE((*log)->Append(1, SampleOps()).ok());
  }
  size_t committed = FileSize(path);
  // A torn record: a plausible header promising more payload than exists.
  AppendRaw(path, std::string("\x40\x00\x00\x00\xde\xad\xbe\xef half", 13));
  auto records = IngestLog::Replay(path);
  ASSERT_TRUE(records.ok()) << records.status().ToString();
  ASSERT_EQ(records->size(), 1u);
  EXPECT_EQ((*records)[0].epoch, 1u);
  // The tail was truncated away, so appending continues cleanly.
  EXPECT_EQ(FileSize(path), committed);
  {
    auto log = IngestLog::Open(path);
    ASSERT_TRUE(log.ok());
    ASSERT_TRUE((*log)->Append(2, {SampleOps()[1]}).ok());
  }
  auto again = IngestLog::Replay(path);
  ASSERT_TRUE(again.ok());
  ASSERT_EQ(again->size(), 2u);
  EXPECT_EQ((*again)[1].epoch, 2u);
  std::remove(path.c_str());
}

TEST(IngestLogTest, ReplayRejectsCorruptedRecord) {
  std::string path = TestPath("ingest_log_crc");
  std::remove(path.c_str());
  {
    auto log = IngestLog::Open(path);
    ASSERT_TRUE(log.ok());
    ASSERT_TRUE((*log)->Append(1, SampleOps()).ok());
    ASSERT_TRUE((*log)->Append(2, SampleOps()).ok());
  }
  // Flip one payload byte of the second record: its CRC no longer matches,
  // so replay keeps record 1 and truncates from the corruption on.
  size_t size = FileSize(path);
  std::string bytes(size, '\0');
  {
    std::ifstream in(path, std::ios::binary);
    in.read(bytes.data(), static_cast<std::streamsize>(size));
  }
  bytes[size - 1] ^= 0x5a;
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(size));
  }
  auto records = IngestLog::Replay(path);
  ASSERT_TRUE(records.ok()) << records.status().ToString();
  ASSERT_EQ(records->size(), 1u);
  EXPECT_EQ((*records)[0].epoch, 1u);
  EXPECT_LT(FileSize(path), size);
  std::remove(path.c_str());
}

TEST(LiveManifestTest, RoundTrip) {
  std::string path = TestPath("live_manifest");
  std::remove(path.c_str());
  LiveManifest manifest;
  manifest.base_epoch = 17;
  manifest.base_snapshot = "/data/base-17.snap";
  manifest.wal = "/data/wal-17.log";
  ASSERT_TRUE(WriteManifest(path, manifest).ok());
  auto loaded = ReadManifest(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->base_epoch, 17u);
  EXPECT_EQ(loaded->base_snapshot, "/data/base-17.snap");
  EXPECT_EQ(loaded->wal, "/data/wal-17.log");
  std::remove(path.c_str());
}

TEST(LiveManifestTest, RejectsCorruptionAndGarbage) {
  std::string path = TestPath("live_manifest_bad");
  std::remove(path.c_str());
  EXPECT_EQ(ReadManifest(path).status().code(), Status::Code::kNotFound);

  LiveManifest manifest;
  manifest.base_epoch = 3;
  manifest.base_snapshot = "base.snap";
  manifest.wal = "wal.log";
  ASSERT_TRUE(WriteManifest(path, manifest).ok());
  size_t size = FileSize(path);
  std::string bytes(size, '\0');
  {
    std::ifstream in(path, std::ios::binary);
    in.read(bytes.data(), static_cast<std::streamsize>(size));
  }
  bytes[size / 2] ^= 0x5a;
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(size));
  }
  EXPECT_FALSE(ReadManifest(path).ok());

  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << "not a manifest";
  }
  EXPECT_FALSE(ReadManifest(path).ok());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace live
}  // namespace store
}  // namespace ganswer
