// Crash-consistency fault injection for the live store: a child process
// opens the store, commits batches, then dies mid-WAL-append or between
// compaction's snapshot write and its manifest swap (the two torn-state
// windows). The parent reopens the directory and must land on exactly the
// committed epoch with exactly the committed content — never a half-applied
// batch, never a double-applied one.

#include <gtest/gtest.h>
#include <sys/wait.h>
#include <unistd.h>

#include <csignal>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <set>
#include <string>

#include "nlp/lexicon.h"
#include "paraphrase/paraphrase_dictionary.h"
#include "store/live/live_kb.h"
#include "store/snapshot.h"

namespace ganswer {
namespace store {
namespace live {
namespace {

using rdf::TermKind;
using rdf::UpdateOp;

struct Scratch {
  std::string dir;
  std::string snapshot;

  explicit Scratch(const std::string& stem)
      : dir(stem + "." + std::to_string(::getpid())),
        snapshot(dir + "/base.snap") {
    std::filesystem::remove_all(dir);
    std::filesystem::create_directory(dir);
    rdf::RdfGraph graph;
    graph.AddTriple("Alice", "knows", "Bob");
    graph.AddTriple("Bob", "knows", "Carol");
    EXPECT_TRUE(graph.Finalize().ok());
    paraphrase::ParaphraseDictionary dict(&lexicon);
    EXPECT_TRUE(WriteSnapshotFile(graph, dict, snapshot).ok());
  }
  ~Scratch() { std::filesystem::remove_all(dir); }

  LiveKb::Options Options() const {
    LiveKb::Options options;
    options.dir = dir + "/store";
    options.base_snapshot = snapshot;
    options.lexicon = &lexicon;
    options.background_compaction = false;
    return options;
  }

  mutable nlp::Lexicon lexicon;
};

UpdateOp Add(const std::string& s, const std::string& o) {
  return {s, "knows", o, TermKind::kIri, false};
}

std::set<std::string> TripleTexts(const rdf::RdfGraph& g) {
  std::set<std::string> out;
  for (rdf::TermId v = 0; v < g.dict().size(); ++v) {
    for (const rdf::Edge& e : g.OutEdges(v)) {
      out.insert(std::string(g.dict().text(v)) + "|" +
                 std::string(g.dict().text(e.predicate)) + "|" +
                 std::string(g.dict().text(e.neighbor)));
    }
  }
  return out;
}

/// Runs \p crash in a forked child (which must abort) and waits for the
/// SIGABRT. The parent's gtest state never sees the child.
template <typename Fn>
void RunCrashingChild(Fn crash) {
  ::fflush(nullptr);
  pid_t pid = ::fork();
  ASSERT_GE(pid, 0) << "fork failed";
  if (pid == 0) {
    crash();
    // The crash hook must have fired; reaching here is a test bug.
    ::_exit(42);
  }
  int status = 0;
  ASSERT_EQ(::waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFSIGNALED(status)) << "child exited with "
                                   << WEXITSTATUS(status)
                                   << " instead of crashing";
  EXPECT_EQ(WTERMSIG(status), SIGABRT);
}

TEST(LiveCrashTest, KillMidBatchRecoversToLastCommittedEpoch) {
  Scratch scratch("live_crash_batch");
  RunCrashingChild([&] {
    auto kb = LiveKb::Open(scratch.Options());
    if (!kb.ok()) ::_exit(41);
    if (!(*kb)->Apply({Add("Dave", "Alice")}).ok()) ::_exit(41);
    if (!(*kb)->Apply({Add("Eve", "Alice")}).ok()) ::_exit(41);
    (*kb)->CrashMidBatchForTest();
    // Dies inside the WAL append, leaving a torn record after epoch 2.
    (void)(*kb)->Apply({Add("Mallory", "Alice")});
  });

  auto kb = LiveKb::Open(scratch.Options());
  ASSERT_TRUE(kb.ok()) << kb.status().ToString();
  std::shared_ptr<const KbView> view = (*kb)->view();
  EXPECT_EQ(view->epoch(), 2u);
  const rdf::RdfGraph& g = view->graph();
  EXPECT_TRUE(g.Find("Dave").has_value());
  EXPECT_TRUE(g.Find("Eve").has_value());
  // The torn batch is gone without a trace — not even its terms.
  EXPECT_FALSE(g.Find("Mallory").has_value());

  // The log stays appendable after tail truncation: ingestion continues.
  auto next = (*kb)->Apply({Add("Trent", "Alice")});
  ASSERT_TRUE(next.ok());
  EXPECT_EQ(next->epoch, 3u);
}

TEST(LiveCrashTest, KillBeforeManifestSwapKeepsTheOldPair) {
  Scratch scratch("live_crash_compact");
  RunCrashingChild([&] {
    auto kb = LiveKb::Open(scratch.Options());
    if (!kb.ok()) ::_exit(41);
    if (!(*kb)->Apply({Add("Dave", "Alice")}).ok()) ::_exit(41);
    if (!(*kb)->Apply({Add("Eve", "Bob")}).ok()) ::_exit(41);
    (*kb)->CrashBeforeManifestSwapForTest();
    // Dies after writing the compacted snapshot but before the manifest
    // swap: the manifest must still point at the old (snapshot, WAL) pair.
    (void)(*kb)->Compact();
  });

  std::set<std::string> expected;
  {
    auto kb = LiveKb::Open(scratch.Options());
    ASSERT_TRUE(kb.ok()) << kb.status().ToString();
    std::shared_ptr<const KbView> view = (*kb)->view();
    EXPECT_EQ(view->epoch(), 2u);
    EXPECT_TRUE(view->graph().Find("Dave").has_value());
    EXPECT_TRUE(view->graph().Find("Eve").has_value());
    EXPECT_GT((*kb)->counters().delta_triples, 0u);  // not compacted
    expected = TripleTexts(view->graph());

    // A real compaction now succeeds and folds the same content.
    ASSERT_TRUE((*kb)->Compact().ok());
    EXPECT_EQ(TripleTexts((*kb)->view()->graph()), expected);
  }
  auto reopened = LiveKb::Open(scratch.Options());
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ((*reopened)->view()->epoch(), 2u);
  EXPECT_EQ(TripleTexts((*reopened)->view()->graph()), expected);
}

TEST(LiveCrashTest, GarbageWalTailIsRejectedByCrc) {
  Scratch scratch("live_crash_tail");
  std::string wal_path;
  {
    auto kb = LiveKb::Open(scratch.Options());
    ASSERT_TRUE(kb.ok());
    ASSERT_TRUE((*kb)->Apply({Add("Dave", "Alice")}).ok());
  }
  // Simulate a torn final write: bytes that parse as a length header but
  // fail the CRC.
  for (const auto& entry :
       std::filesystem::directory_iterator(scratch.dir + "/store")) {
    if (entry.path().extension() == ".log") wal_path = entry.path();
  }
  ASSERT_FALSE(wal_path.empty());
  {
    std::ofstream out(wal_path, std::ios::binary | std::ios::app);
    out.write("\x08\x00\x00\x00\xff\xff\xff\xffgarbage!", 16);
  }
  auto kb = LiveKb::Open(scratch.Options());
  ASSERT_TRUE(kb.ok()) << kb.status().ToString();
  EXPECT_EQ((*kb)->view()->epoch(), 1u);
  EXPECT_TRUE((*kb)->view()->graph().Find("Dave").has_value());
}

}  // namespace
}  // namespace live
}  // namespace store
}  // namespace ganswer
