#include "store/live/delta_graph.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "nlp/lexicon.h"
#include "paraphrase/paraphrase_dictionary.h"
#include "store/snapshot.h"

namespace ganswer {
namespace store {
namespace live {
namespace {

using rdf::TermId;
using rdf::TermKind;
using rdf::UpdateOp;

/// In-memory snapshot round-trip of a small base graph — the delta always
/// overlays a loaded snapshot, exactly like production.
std::shared_ptr<const Snapshot> BaseSnapshot(nlp::Lexicon* lexicon) {
  rdf::RdfGraph graph;
  graph.AddTriple("Alice", "knows", "Bob");
  graph.AddTriple("Bob", "knows", "Carol");
  graph.AddTriple("Alice", "rdf:type", "Person");
  graph.AddTriple("Bob", "rdf:type", "Person");
  graph.AddTriple("Alice", "rdfs:label", "Alice Smith", TermKind::kLiteral);
  EXPECT_TRUE(graph.Finalize().ok());
  paraphrase::ParaphraseDictionary dict(lexicon);
  std::string bytes;
  EXPECT_TRUE(WriteSnapshot(graph, dict, &bytes).ok());
  auto loaded = ReadSnapshot(bytes, lexicon);
  EXPECT_TRUE(loaded.ok()) << loaded.status().ToString();
  return std::make_shared<Snapshot>(std::move(loaded).value());
}

/// Text-level edge set of one direction of a vertex, order-independent.
std::set<std::pair<std::string, std::string>> EdgeSet(
    const rdf::RdfGraph& g, std::string_view vertex, bool out) {
  std::set<std::pair<std::string, std::string>> edges;
  auto v = g.Find(vertex);
  if (!v.has_value()) return edges;
  for (const rdf::Edge& e : out ? g.OutEdges(*v) : g.InEdges(*v)) {
    edges.emplace(std::string(g.dict().text(e.predicate)),
                  std::string(g.dict().text(e.neighbor)));
  }
  return edges;
}

TEST(DeltaGraphTest, AddsAreVisibleAndDeletesMaskBaseEdges) {
  nlp::Lexicon lexicon;
  DeltaGraph delta(BaseSnapshot(&lexicon));
  DeltaGraph::BatchStats stats = delta.Apply({
      {"Carol", "knows", "Alice", TermKind::kIri, false},
      {"Alice", "knows", "Bob", TermKind::kIri, true},
  });
  EXPECT_EQ(stats.added, 1u);
  EXPECT_EQ(stats.deleted, 1u);
  EXPECT_EQ(stats.new_terms, 0u);

  DeltaGraph::View view = delta.BuildView();
  const rdf::RdfGraph& g = *view.graph;
  TermId alice = *g.Find("Alice");
  TermId bob = *g.Find("Bob");
  TermId carol = *g.Find("Carol");
  TermId knows = *g.dict().LookupAny("knows");
  EXPECT_TRUE(g.HasTriple(carol, knows, alice));
  EXPECT_FALSE(g.HasTriple(alice, knows, bob));
  EXPECT_TRUE(g.HasTriple(bob, knows, carol));  // untouched base edge
  EXPECT_EQ(g.NumTriples(), 5u);                // 5 - 1 + 1

  EXPECT_EQ(EdgeSet(g, "Carol", /*out=*/true),
            (std::set<std::pair<std::string, std::string>>{
                {"knows", "Alice"}}));
  EXPECT_EQ(EdgeSet(g, "Alice", /*out=*/true),
            (std::set<std::pair<std::string, std::string>>{
                {"rdf:type", "Person"}, {"rdfs:label", "Alice Smith"}}));
  // The reverse direction is maintained symmetrically.
  EXPECT_EQ(EdgeSet(g, "Alice", /*out=*/false),
            (std::set<std::pair<std::string, std::string>>{
                {"knows", "Carol"}}));
}

TEST(DeltaGraphTest, NewTermsExtendTheBaseDictionary) {
  nlp::Lexicon lexicon;
  auto base = BaseSnapshot(&lexicon);
  size_t base_terms = base->graph->dict().size();
  DeltaGraph delta(base);
  DeltaGraph::BatchStats stats = delta.Apply({
      {"Dave", "knows", "Alice", TermKind::kIri, false},
      {"Dave", "rdfs:label", "Dave Jones", TermKind::kLiteral, false},
  });
  EXPECT_EQ(stats.added, 2u);
  EXPECT_EQ(stats.new_terms, 2u);  // "Dave" and the label literal

  DeltaGraph::View view = delta.BuildView();
  const rdf::TermDictionary& dict = view.graph->dict();
  EXPECT_EQ(dict.size(), base_terms + 2);
  // Base ids and texts are untouched; new terms got fresh global ids.
  for (TermId id = 0; id < base_terms; ++id) {
    EXPECT_EQ(dict.text(id), base->graph->dict().text(id));
    EXPECT_EQ(dict.kind(id), base->graph->dict().kind(id));
  }
  auto dave = dict.Lookup("Dave", TermKind::kIri);
  ASSERT_TRUE(dave.has_value());
  EXPECT_GE(*dave, base_terms);
  EXPECT_EQ(dict.kind(*dave), TermKind::kIri);
  auto label = dict.Lookup("Dave Jones", TermKind::kLiteral);
  ASSERT_TRUE(label.has_value());
  EXPECT_EQ(dict.kind(*label), TermKind::kLiteral);
}

TEST(DeltaGraphTest, SetSemanticsCountNoops) {
  nlp::Lexicon lexicon;
  DeltaGraph delta(BaseSnapshot(&lexicon));
  DeltaGraph::BatchStats stats = delta.Apply({
      {"Alice", "knows", "Bob", TermKind::kIri, false},   // already present
      {"Alice", "knows", "Zed", TermKind::kIri, true},    // never existed
      {"Alice", "likes", "Bob", TermKind::kIri, false},   // fresh add
      {"Alice", "likes", "Bob", TermKind::kIri, true},    // last-wins delete
  });
  EXPECT_EQ(stats.noop_adds, 1u);
  EXPECT_EQ(stats.noop_deletes, 1u);
  EXPECT_EQ(stats.added, 1u);
  EXPECT_EQ(stats.deleted, 1u);
  DeltaGraph::View view = delta.BuildView();
  EXPECT_EQ(view.graph->NumTriples(), 5u);  // net unchanged
  // A failed delete of an unknown term must not intern it.
  EXPECT_FALSE(view.graph->Find("Zed").has_value());
}

TEST(DeltaGraphTest, ClassBitsAndPredicateFrequenciesTrackTheDelta) {
  nlp::Lexicon lexicon;
  DeltaGraph delta(BaseSnapshot(&lexicon));
  delta.Apply({
      {"Dog", "rdf:type", "Animal", TermKind::kIri, false},
      {"Alice", "knows", "Dave", TermKind::kIri, false},
  });
  DeltaGraph::View view = delta.BuildView();
  const rdf::RdfGraph& g = *view.graph;
  EXPECT_TRUE(g.IsClass(*g.Find("Animal")));
  EXPECT_TRUE(g.IsClass(*g.Find("Person")));  // base class bit survives
  EXPECT_FALSE(g.IsClass(*g.Find("Dog")));
  TermId knows = *g.dict().LookupAny("knows");
  EXPECT_EQ(g.PredicateFrequency(knows), 3u);  // 2 base + 1 delta
  TermId type = *g.dict().LookupAny("rdf:type");
  EXPECT_EQ(g.PredicateFrequency(type), 3u);
}

TEST(DeltaGraphTest, PublishedViewsAreImmutableUnderLaterBatches) {
  nlp::Lexicon lexicon;
  DeltaGraph delta(BaseSnapshot(&lexicon));
  delta.Apply({{"Carol", "knows", "Alice", TermKind::kIri, false}});
  DeltaGraph::View v1 = delta.BuildView();
  size_t v1_triples = v1.graph->NumTriples();
  auto v1_alice_in = EdgeSet(*v1.graph, "Alice", /*out=*/false);

  delta.Apply({
      {"Carol", "knows", "Alice", TermKind::kIri, true},
      {"Eve", "knows", "Alice", TermKind::kIri, false},
  });
  DeltaGraph::View v2 = delta.BuildView();

  // The old view still answers from its epoch: the delete and the new term
  // exist only in v2.
  EXPECT_EQ(v1.graph->NumTriples(), v1_triples);
  EXPECT_EQ(EdgeSet(*v1.graph, "Alice", /*out=*/false), v1_alice_in);
  EXPECT_FALSE(v1.graph->Find("Eve").has_value());
  ASSERT_TRUE(v2.graph->Find("Eve").has_value());
  EXPECT_EQ(EdgeSet(*v2.graph, "Alice", /*out=*/false),
            (std::set<std::pair<std::string, std::string>>{
                {"knows", "Eve"}}));
}

TEST(DeltaGraphTest, OverlayIndexesMatchFreshlyBuiltOnes) {
  nlp::Lexicon lexicon;
  DeltaGraph delta(BaseSnapshot(&lexicon));
  delta.Apply({
      {"Alice", "knows", "Bob", TermKind::kIri, true},
      {"Dave", "knows", "Alice", TermKind::kIri, false},
      {"Dave", "rdfs:label", "Dave Jones", TermKind::kLiteral, false},
      {"Bob", "rdfs:label", "Bobby", TermKind::kLiteral, false},
  });
  DeltaGraph::View view = delta.BuildView();
  const rdf::RdfGraph& g = *view.graph;

  // The overlay signature index equals one rebuilt from scratch over the
  // merged graph, vertex for vertex.
  rdf::SignatureIndex fresh_sigs(g);
  ASSERT_EQ(view.signatures->NumVertices(), fresh_sigs.NumVertices());
  for (TermId v = 0; v < fresh_sigs.NumVertices(); ++v) {
    EXPECT_EQ(view.signatures->OutSignature(v), fresh_sigs.OutSignature(v))
        << "out signature of " << g.dict().text(v);
    EXPECT_EQ(view.signatures->InSignature(v), fresh_sigs.InSignature(v))
        << "in signature of " << g.dict().text(v);
  }

  // Same for the entity index: postings answer identically (order-free).
  linking::EntityIndex fresh_entities(g);
  for (const char* label : {"Alice Smith", "Dave Jones", "Bobby", "nope"}) {
    auto got = view.entities->ExactMatches(label);
    auto want = fresh_entities.ExactMatches(label);
    std::sort(got.begin(), got.end());
    std::sort(want.begin(), want.end());
    EXPECT_EQ(got, want) << "exact matches of " << label;
  }
  for (const char* token : {"alice", "dave", "smith", "bobby"}) {
    auto got = view.entities->TokenMatches(token);
    auto want = fresh_entities.TokenMatches(token);
    std::sort(got.begin(), got.end());
    std::sort(want.begin(), want.end());
    EXPECT_EQ(got, want) << "token matches of " << token;
  }
  for (const char* name : {"Alice", "Bob", "Dave"}) {
    auto got = view.entities->LabelsOf(*g.Find(name));
    auto want = fresh_entities.LabelsOf(*g.Find(name));
    std::sort(got.begin(), got.end());
    std::sort(want.begin(), want.end());
    EXPECT_EQ(got, want) << "labels of " << name;
  }
}

}  // namespace
}  // namespace live
}  // namespace store
}  // namespace ganswer
