// Freshness differential oracle for the live store: random update batches
// interleaved with queries, compaction and reopen (crash-free recovery).
// At every epoch the live view must agree with a from-scratch rebuild of
// the same triple set — graph content textually identical, the overlay
// indexes equal to freshly built ones, and SPARQL answers byte-identical
// (rendered, sorted rows) between the live engine and a reference engine
// over the rebuilt graph.

#include <gtest/gtest.h>
#include <unistd.h>

#include <algorithm>
#include <filesystem>
#include <memory>
#include <set>
#include <string>
#include <tuple>
#include <vector>

#include "common/random.h"
#include "nlp/lexicon.h"
#include "paraphrase/paraphrase_dictionary.h"
#include "prop/prop_support.h"
#include "rdf/sparql_engine.h"
#include "store/live/live_kb.h"
#include "store/snapshot.h"

namespace ganswer {
namespace store {
namespace live {
namespace {

using rdf::TermKind;
using rdf::UpdateOp;

/// The reference state: exactly the committed triples, text-level.
/// (subject, predicate, object, object-is-literal)
using RawTriple = std::tuple<std::string, std::string, std::string, bool>;

std::set<std::string> RenderedTriples(const rdf::RdfGraph& g) {
  std::set<std::string> out;
  for (rdf::TermId v = 0; v < g.dict().size(); ++v) {
    for (const rdf::Edge& e : g.OutEdges(v)) {
      bool lit = g.dict().kind(e.neighbor) == TermKind::kLiteral;
      out.insert(std::string(g.dict().text(v)) + "|" +
                 std::string(g.dict().text(e.predicate)) + "|" +
                 std::string(g.dict().text(e.neighbor)) +
                 (lit ? "|L" : "|I"));
    }
  }
  return out;
}

std::set<std::string> RenderedTriples(const std::set<RawTriple>& triples) {
  std::set<std::string> out;
  for (const auto& [s, p, o, lit] : triples) {
    out.insert(s + "|" + p + "|" + o + (lit ? "|L" : "|I"));
  }
  return out;
}

rdf::RdfGraph Rebuild(const std::set<RawTriple>& triples) {
  rdf::RdfGraph g;
  for (const auto& [s, p, o, lit] : triples) {
    g.AddTriple(s, p, o, lit ? TermKind::kLiteral : TermKind::kIri);
  }
  EXPECT_TRUE(g.Finalize().ok());
  return g;
}

/// One SPARQL query rendered as sorted row text — the byte-level answer
/// both engines must agree on.
std::string RenderedRows(const rdf::SparqlEngine& engine,
                         const rdf::RdfGraph& g, const std::string& query) {
  auto result = engine.ExecuteText(query);
  if (!result.ok()) return "error: " + result.status().ToString();
  std::vector<std::string> rows;
  for (const auto& row : result->rows) {
    std::string text;
    for (rdf::TermId id : row) {
      text += std::string(g.dict().text(id)) + "\t";
    }
    rows.push_back(std::move(text));
  }
  std::sort(rows.begin(), rows.end());
  std::string out;
  for (const std::string& r : rows) out += r + "\n";
  return out;
}

std::string SparqlTerm(const std::string& text, bool literal) {
  return literal ? "\"" + text + "\"" : "<" + text + ">";
}

/// Full per-epoch check of one live view against the reference state.
void CheckEpoch(const KbView& view, const std::set<RawTriple>& reference,
                Rng& rng) {
  const rdf::RdfGraph& g = view.graph();
  ASSERT_EQ(RenderedTriples(g), RenderedTriples(reference));
  EXPECT_EQ(g.NumTriples(), reference.size());

  // Overlay indexes vs freshly built ones over the same merged graph.
  rdf::SignatureIndex fresh_sigs(g);
  const rdf::SignatureIndex& live_sigs = view.qa().options().matching
                                             .signatures != nullptr
                                         ? *view.qa().options().matching
                                               .signatures
                                         : fresh_sigs;
  ASSERT_EQ(live_sigs.NumVertices(), fresh_sigs.NumVertices());
  for (rdf::TermId v = 0; v < fresh_sigs.NumVertices(); ++v) {
    ASSERT_EQ(live_sigs.OutSignature(v), fresh_sigs.OutSignature(v))
        << "out signature of " << g.dict().text(v);
    ASSERT_EQ(live_sigs.InSignature(v), fresh_sigs.InSignature(v))
        << "in signature of " << g.dict().text(v);
  }

  // SPARQL answers: live engine over the overlay vs a reference engine
  // over the from-scratch rebuild, on query shapes drawn from the data
  // (subject-bound, object-bound, predicate scan) plus a never-matching
  // probe.
  rdf::RdfGraph rebuilt = Rebuild(reference);
  rdf::SparqlEngine reference_engine(rebuilt, {});
  const rdf::SparqlEngine& live_engine = view.sparql();
  std::vector<RawTriple> pool(reference.begin(), reference.end());
  std::vector<std::string> queries;
  for (int i = 0; i < 4 && !pool.empty(); ++i) {
    const auto& [s, p, o, lit] = pool[rng.Next(pool.size())];
    queries.push_back("SELECT ?x WHERE { <" + s + "> <" + p + "> ?x }");
    queries.push_back("SELECT ?x WHERE { ?x <" + p + "> " +
                      SparqlTerm(o, lit) + " }");
    queries.push_back("SELECT ?x ?y WHERE { ?x <" + p + "> ?y }");
  }
  queries.push_back(
      "SELECT ?x WHERE { ?x <never_such_predicate> <never_such_object> }");
  for (const std::string& q : queries) {
    EXPECT_EQ(RenderedRows(live_engine, g, q),
              RenderedRows(reference_engine, rebuilt, q))
        << q;
  }
}

TEST(LiveFreshnessOracleTest, LiveViewMatchesFromScratchRebuildEveryEpoch) {
  ganswer::testing::ForEachSeed(7000, 40, [](uint64_t seed) {
    Rng rng(seed);
    std::string dir = "live_oracle." + std::to_string(::getpid());
    std::filesystem::remove_all(dir);
    std::filesystem::create_directory(dir);
    nlp::Lexicon lexicon;

    // Random base graph, written as the bootstrap snapshot.
    std::set<RawTriple> reference;
    std::vector<std::string> vertices, predicates{"p0", "p1", "p2"};
    for (int i = 0; i < 8; ++i) vertices.push_back("v" + std::to_string(i));
    {
      rdf::RdfGraph base;
      for (int i = 0; i < 20; ++i) {
        RawTriple t{rng.Pick(vertices), rng.Pick(predicates),
                    rng.Pick(vertices), false};
        if (rng.Chance(0.15)) {
          std::get<2>(t) = "lit" + std::to_string(rng.Next(5));
          std::get<3>(t) = true;
        }
        base.AddTriple(std::get<0>(t), std::get<1>(t), std::get<2>(t),
                       std::get<3>(t) ? TermKind::kLiteral : TermKind::kIri);
        reference.insert(t);
      }
      for (const std::string& v : vertices) {
        if (!rng.Chance(0.3)) continue;
        RawTriple t{v, std::string(rdf::kTypePredicate),
                    "C" + std::to_string(rng.Next(2)), false};
        base.AddTriple(std::get<0>(t), std::get<1>(t), std::get<2>(t));
        reference.insert(t);
      }
      ASSERT_TRUE(base.Finalize().ok());
      paraphrase::ParaphraseDictionary dict(&lexicon);
      ASSERT_TRUE(WriteSnapshotFile(base, dict, dir + "/base.snap").ok());
    }

    LiveKb::Options options;
    options.dir = dir + "/store";
    options.base_snapshot = dir + "/base.snap";
    options.lexicon = &lexicon;
    options.background_compaction = false;
    auto kb = LiveKb::Open(options);
    ASSERT_TRUE(kb.ok()) << kb.status().ToString();

    int new_term_counter = 0;
    for (int round = 0; round < 6; ++round) {
      // One random batch: adds (sometimes of new terms or literals, and of
      // already-present triples) and deletes (mostly of present triples).
      std::vector<UpdateOp> ops;
      size_t batch = 1 + rng.Next(6);
      std::vector<RawTriple> pool(reference.begin(), reference.end());
      for (size_t i = 0; i < batch; ++i) {
        if (!pool.empty() && rng.Chance(0.35)) {
          if (rng.Chance(0.75)) {  // delete a present triple
            const auto& [s, p, o, lit] = pool[rng.Next(pool.size())];
            ops.push_back({s, p, o,
                           lit ? TermKind::kLiteral : TermKind::kIri, true});
          } else {  // delete an absent one (no-op)
            ops.push_back({rng.Pick(vertices), rng.Pick(predicates),
                           "no_such_term", TermKind::kIri, true});
          }
          continue;
        }
        UpdateOp op;
        op.subject = rng.Chance(0.15)
                         ? "n" + std::to_string(new_term_counter++)
                         : rng.Pick(vertices);
        op.predicate = rng.Chance(0.1) ? std::string(rdf::kTypePredicate)
                                       : rng.Pick(predicates);
        if (rng.Chance(0.2)) {
          op.object = "lit" + std::to_string(rng.Next(5));
          op.object_kind = TermKind::kLiteral;
        } else {
          op.object = rng.Chance(0.15)
                          ? "n" + std::to_string(new_term_counter++)
                          : rng.Pick(vertices);
        }
        ops.push_back(op);
        if (op.subject[0] == 'n') vertices.push_back(op.subject);
        if (op.object_kind == TermKind::kIri && op.object[0] == 'n') {
          vertices.push_back(op.object);
        }
      }
      // Mirror the batch into the reference state, sequentially last-wins.
      for (const UpdateOp& op : ops) {
        RawTriple t{op.subject, op.predicate, op.object,
                    op.object_kind == TermKind::kLiteral};
        if (op.is_delete) {
          reference.erase(t);
        } else {
          reference.insert(t);
        }
      }

      auto result = (*kb)->Apply(ops);
      ASSERT_TRUE(result.ok()) << result.status().ToString();
      std::shared_ptr<const KbView> view = (*kb)->view();
      CheckEpoch(*view, reference, rng);

      // Random compaction, then re-check: folding must change nothing.
      if (rng.Chance(0.3)) {
        ASSERT_TRUE((*kb)->Compact().ok());
        CheckEpoch(*(*kb)->view(), reference, rng);
      }
      // Random reopen (recovery): replaying the WAL over the manifest's
      // base must land on the same state.
      if (rng.Chance(0.25)) {
        kb->reset();
        kb = LiveKb::Open(options);
        ASSERT_TRUE(kb.ok()) << kb.status().ToString();
        CheckEpoch(*(*kb)->view(), reference, rng);
      }
    }
    // Final recovery check after the full interleaving.
    kb->reset();
    kb = LiveKb::Open(options);
    ASSERT_TRUE(kb.ok()) << kb.status().ToString();
    CheckEpoch(*(*kb)->view(), reference, rng);

    kb->reset();
    std::filesystem::remove_all(dir);
  });
}

}  // namespace
}  // namespace live
}  // namespace store
}  // namespace ganswer
