#include "store/live/live_kb.h"

#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>
#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "nlp/lexicon.h"
#include "paraphrase/paraphrase_dictionary.h"
#include "store/snapshot.h"

namespace ganswer {
namespace store {
namespace live {
namespace {

using rdf::TermKind;
using rdf::UpdateOp;

/// Per-test scratch space: a pid-suffixed directory holding the bootstrap
/// snapshot and the live store, removed on destruction (ctest runs tests as
/// parallel processes from one working directory).
struct Scratch {
  std::string dir;
  std::string snapshot;

  explicit Scratch(const std::string& stem)
      : dir(stem + "." + std::to_string(::getpid())),
        snapshot(dir + "/base.snap") {
    std::filesystem::remove_all(dir);
    std::filesystem::create_directory(dir);
    rdf::RdfGraph graph;
    graph.AddTriple("Alice", "knows", "Bob");
    graph.AddTriple("Bob", "knows", "Carol");
    graph.AddTriple("Alice", "rdf:type", "Person");
    graph.AddTriple("Alice", "rdfs:label", "Alice Smith",
                    TermKind::kLiteral);
    EXPECT_TRUE(graph.Finalize().ok());
    paraphrase::ParaphraseDictionary dict(&lexicon);
    EXPECT_TRUE(WriteSnapshotFile(graph, dict, snapshot).ok());
  }
  ~Scratch() { std::filesystem::remove_all(dir); }

  LiveKb::Options Options(const std::string& store = "store") const {
    LiveKb::Options options;
    options.dir = dir + "/" + store;
    options.base_snapshot = snapshot;
    options.lexicon = &lexicon;
    options.background_compaction = false;
    return options;
  }

  mutable nlp::Lexicon lexicon;
};

std::set<std::string> TripleTexts(const rdf::RdfGraph& g) {
  std::set<std::string> out;
  for (rdf::TermId v = 0; v < g.dict().size(); ++v) {
    for (const rdf::Edge& e : g.OutEdges(v)) {
      out.insert(std::string(g.dict().text(v)) + "|" +
                 std::string(g.dict().text(e.predicate)) + "|" +
                 std::string(g.dict().text(e.neighbor)));
    }
  }
  return out;
}

TEST(LiveKbTest, BootstrapApplyAndReopenRecoverTheSameEpoch) {
  Scratch scratch("livekb_reopen");
  std::set<std::string> committed;
  {
    auto kb = LiveKb::Open(scratch.Options());
    ASSERT_TRUE(kb.ok()) << kb.status().ToString();
    EXPECT_EQ((*kb)->view()->epoch(), 0u);

    auto r1 = (*kb)->Apply({
        {"Dave", "knows", "Alice", TermKind::kIri, false},
        {"Alice", "knows", "Bob", TermKind::kIri, true},
    });
    ASSERT_TRUE(r1.ok()) << r1.status().ToString();
    EXPECT_EQ(r1->epoch, 1u);
    auto r2 = (*kb)->Apply({
        {"Dave", "rdfs:label", "Dave Jones", TermKind::kLiteral, false},
    });
    ASSERT_TRUE(r2.ok());
    EXPECT_EQ(r2->epoch, 2u);

    std::shared_ptr<const KbView> view = (*kb)->view();
    EXPECT_EQ(view->epoch(), 2u);
    EXPECT_EQ(view->graph().NumTriples(), 5u);  // 4 - 1 + 2
    committed = TripleTexts(view->graph());

    LiveKb::IngestCounters counters = (*kb)->counters();
    EXPECT_EQ(counters.epoch, 2u);
    EXPECT_EQ(counters.batches, 2u);
    EXPECT_EQ(counters.triples_added, 2u);
    EXPECT_EQ(counters.triples_deleted, 1u);
    EXPECT_EQ(counters.delta_triples, 3u);
    EXPECT_GT(counters.wal_bytes, 0u);
  }
  // Reopen: the WAL replays over the bootstrap snapshot and recovery lands
  // on exactly the last committed epoch with identical content.
  auto reopened = LiveKb::Open(scratch.Options());
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  std::shared_ptr<const KbView> view = (*reopened)->view();
  EXPECT_EQ(view->epoch(), 2u);
  EXPECT_EQ(TripleTexts(view->graph()), committed);
  EXPECT_EQ((*reopened)->counters().epoch, 2u);
}

TEST(LiveKbTest, RejectsEmptyAndOversizeBatches) {
  Scratch scratch("livekb_admission");
  LiveKb::Options options = scratch.Options();
  options.max_batch_ops = 2;
  auto kb = LiveKb::Open(std::move(options));
  ASSERT_TRUE(kb.ok());
  EXPECT_EQ((*kb)->Apply({}).status().code(),
            Status::Code::kInvalidArgument);
  std::vector<UpdateOp> big(
      3, UpdateOp{"a", "p", "b", TermKind::kIri, false});
  EXPECT_EQ((*kb)->Apply(big).status().code(),
            Status::Code::kInvalidArgument);
  // The rejected batches committed nothing.
  EXPECT_EQ((*kb)->view()->epoch(), 0u);
  EXPECT_EQ((*kb)->counters().batches, 0u);
}

TEST(LiveKbTest, ApplyTextParsesAddsDeletesAndComments) {
  Scratch scratch("livekb_text");
  auto kb = LiveKb::Open(scratch.Options());
  ASSERT_TRUE(kb.ok());
  auto result = (*kb)->ApplyText(
      "# streaming batch\n"
      "<Dave> <knows> <Alice> .\n"
      "<Dave> <rdfs:label> \"Dave Jones\" .\n"
      "- <Alice> <knows> <Bob> .\n");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->stats.added, 2u);
  EXPECT_EQ(result->stats.deleted, 1u);
  std::shared_ptr<const KbView> view = (*kb)->view();
  const rdf::RdfGraph& g = view->graph();
  EXPECT_TRUE(g.HasTriple(*g.Find("Dave"), *g.dict().LookupAny("knows"),
                          *g.Find("Alice")));
  EXPECT_FALSE(g.HasTriple(*g.Find("Alice"), *g.dict().LookupAny("knows"),
                           *g.Find("Bob")));
  // A syntax error rejects the whole batch; nothing commits.
  EXPECT_FALSE((*kb)->ApplyText("<unterminated .\n").ok());
  EXPECT_EQ((*kb)->view()->epoch(), 1u);
}

TEST(LiveKbTest, CompactionFoldsTheDeltaAndKeepsServing) {
  Scratch scratch("livekb_compact");
  std::set<std::string> committed;
  {
    auto kb = LiveKb::Open(scratch.Options());
    ASSERT_TRUE(kb.ok());
    ASSERT_TRUE((*kb)
                    ->Apply({
                        {"Dave", "knows", "Alice", TermKind::kIri, false},
                        {"Alice", "knows", "Bob", TermKind::kIri, true},
                    })
                    .ok());
    std::shared_ptr<const KbView> before = (*kb)->view();
    committed = TripleTexts(before->graph());

    ASSERT_TRUE((*kb)->Compact().ok());
    LiveKb::IngestCounters counters = (*kb)->counters();
    EXPECT_EQ(counters.compactions, 1u);
    EXPECT_EQ(counters.delta_triples, 0u);
    EXPECT_EQ(counters.epoch, 1u);

    // The published epoch and its content are unchanged; the in-flight
    // pre-compaction view still answers.
    std::shared_ptr<const KbView> after = (*kb)->view();
    EXPECT_EQ(after->epoch(), 1u);
    EXPECT_EQ(after->delta_triples(), 0u);
    EXPECT_EQ(TripleTexts(after->graph()), committed);
    EXPECT_EQ(TripleTexts(before->graph()), committed);

    // Ingestion continues on top of the compacted base.
    ASSERT_TRUE(
        (*kb)
            ->Apply({{"Eve", "knows", "Dave", TermKind::kIri, false}})
            .ok());
    EXPECT_EQ((*kb)->view()->epoch(), 2u);
    committed = TripleTexts((*kb)->view()->graph());

    // Idempotent when the delta is empty... after another compaction.
    ASSERT_TRUE((*kb)->Compact().ok());
    ASSERT_TRUE((*kb)->Compact().ok());
    EXPECT_EQ((*kb)->counters().compactions, 2u);
  }
  // Reopen after compaction: the manifest points at the compacted pair.
  auto reopened = LiveKb::Open(scratch.Options());
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ((*reopened)->view()->epoch(), 2u);
  EXPECT_EQ(TripleTexts((*reopened)->view()->graph()), committed);
  // The original bootstrap snapshot outside the store dir was preserved.
  EXPECT_TRUE(std::filesystem::exists(scratch.snapshot));
}

TEST(LiveKbTest, ThresholdArmsForegroundCompaction) {
  Scratch scratch("livekb_threshold");
  LiveKb::Options options = scratch.Options();
  options.compact_threshold = 2;
  options.background_compaction = false;
  auto kb = LiveKb::Open(std::move(options));
  ASSERT_TRUE(kb.ok());
  ASSERT_TRUE(
      (*kb)->Apply({{"Dave", "knows", "Alice", TermKind::kIri, false}}).ok());
  EXPECT_EQ((*kb)->counters().compactions, 0u);
  ASSERT_TRUE(
      (*kb)->Apply({{"Eve", "knows", "Alice", TermKind::kIri, false}}).ok());
  EXPECT_EQ((*kb)->counters().compactions, 1u);
  EXPECT_EQ((*kb)->counters().delta_triples, 0u);
}

TEST(LiveKbTest, CacheIdentityIsEpochAware) {
  Scratch scratch("livekb_cache");
  LiveKb::Options options = scratch.Options();
  options.question_cache_capacity = 64;
  auto kb = LiveKb::Open(std::move(options));
  ASSERT_TRUE(kb.ok());

  std::shared_ptr<const KbView> v0 = (*kb)->view();
  // Asking twice on one epoch hits the shared cache.
  ASSERT_TRUE(v0->qa().Ask("Who knows Alice ?").ok());
  auto second = v0->qa().Ask("Who knows Alice ?");
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE(second->cache_hit);
  qa::GAnswer::CacheStats stats0 = v0->qa().cache_stats();
  EXPECT_EQ(stats0.hits, 1u);

  ASSERT_TRUE(
      (*kb)->Apply({{"Dave", "knows", "Alice", TermKind::kIri, false}}).ok());
  std::shared_ptr<const KbView> v1 = (*kb)->view();

  // Every key embeds the epoch identity, so the identical question on the
  // new epoch can never be served from the stale entry.
  EXPECT_NE(v0->identity(), v1->identity());
  EXPECT_NE(v0->qa().CacheKey("Who knows Alice ?"),
            v1->qa().CacheKey("Who knows Alice ?"));
  auto fresh = v1->qa().Ask("Who knows Alice ?");
  ASSERT_TRUE(fresh.ok());
  EXPECT_FALSE(fresh->cache_hit);
  // The shared cache recorded a miss for the new epoch, not a hit.
  qa::GAnswer::CacheStats stats1 = v1->qa().cache_stats();
  EXPECT_EQ(stats1.hits, stats0.hits);
  EXPECT_GT(stats1.misses, stats0.misses);
  // And the old view still hits its own epoch's entry.
  auto old_again = v0->qa().Ask("Who knows Alice ?");
  ASSERT_TRUE(old_again.ok());
  EXPECT_TRUE(old_again->cache_hit);
}

}  // namespace
}  // namespace live
}  // namespace store
}  // namespace ganswer
