// End-to-end live serving: a QaService in --live mode driven over real
// loopback sockets. Covers POST /update through the full HTTP path, epoch
// visibility in /healthz and /stats, cache freshness across epochs (the
// paper's running example answers change the moment the underlying triple
// does), admission errors, recovery across a service restart, and byte
// identity with the frozen serving path.

#include "server/qa_service.h"

#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>

#include "server/http_client.h"
#include "store/snapshot.h"
#include "test_support.h"

namespace ganswer {
namespace server {
namespace {

/// The shared test world written to a pid-suffixed snapshot file once per
/// binary (ctest runs each test as its own parallel process from one
/// directory).
const std::string& SnapshotPath() {
  static std::string* path = [] {
    auto* p = new std::string("live_service_test." +
                              std::to_string(::getpid()) + ".snap");
    const auto& world = ganswer::testing::World();
    Status st = store::WriteSnapshotFile(world.kb.graph, *world.verified, *p);
    if (!st.ok()) {
      std::fprintf(stderr, "snapshot write failed: %s\n",
                   st.ToString().c_str());
      std::abort();
    }
    std::atexit([] {
      std::remove(("live_service_test." + std::to_string(::getpid()) +
                   ".snap")
                      .c_str());
    });
    return p;
  }();
  return *path;
}

/// Per-test live store directory, removed on destruction.
struct LiveDir {
  std::string dir;
  explicit LiveDir(const std::string& stem)
      : dir(stem + "." + std::to_string(::getpid())) {
    std::filesystem::remove_all(dir);
  }
  ~LiveDir() { std::filesystem::remove_all(dir); }
};

QaService::Options LiveOptions(const LiveDir& live) {
  QaService::Options options;
  options.snapshot_path = SnapshotPath();
  options.live_dir = live.dir;
  options.port = 0;  // ephemeral: parallel ctest runs never collide
  options.threads = 2;
  return options;
}

const char kRunningExample[] =
    "{\"question\": "
    "\"Who was married to an actor that played in Philadelphia ?\"}";
const char kSpouseTriple[] =
    "<Melanie_Griffith> <spouse> <Antonio_Banderas> .";

TEST(LiveServiceTest, UpdatesChangeAnswersAndSurviveRestart) {
  LiveDir live("live_service_freshness");
  {
    QaService service(LiveOptions(live));
    ASSERT_TRUE(service.Start().ok());
    BlockingHttpClient client;
    ASSERT_TRUE(client.Connect("127.0.0.1", service.port()).ok());

    auto health = client.Get("/healthz");
    ASSERT_TRUE(health.ok());
    EXPECT_NE(health->body.find("\"epoch\":0"), std::string::npos)
        << health->body;

    // Epoch 0 answers the running example; the repeat is a cache hit.
    auto first = client.Post("/answer", kRunningExample);
    ASSERT_TRUE(first.ok()) << first.status().ToString();
    ASSERT_EQ(first->status, 200) << first->body;
    EXPECT_NE(first->body.find("\"Melanie_Griffith\""), std::string::npos)
        << first->body;
    auto again = client.Post("/answer", kRunningExample);
    ASSERT_TRUE(again.ok());
    EXPECT_NE(again->body.find("\"cache_hit\":true"), std::string::npos)
        << again->body;

    // Delete the spouse triple through POST /update.
    auto update =
        client.Post("/update", std::string("- ") + kSpouseTriple + "\n");
    ASSERT_TRUE(update.ok()) << update.status().ToString();
    ASSERT_EQ(update->status, 200) << update->body;
    EXPECT_NE(update->body.find("\"epoch\":1"), std::string::npos)
        << update->body;
    EXPECT_NE(update->body.find("\"deleted\":1"), std::string::npos)
        << update->body;

    // The very next ask reflects the deletion — the entry cached against
    // epoch 0 is unreachable under the epoch-aware key, so the stale
    // answer can never be served.
    auto stale = client.Post("/answer", kRunningExample);
    ASSERT_TRUE(stale.ok());
    ASSERT_EQ(stale->status, 200) << stale->body;
    EXPECT_EQ(stale->body.find("\"Melanie_Griffith\""), std::string::npos)
        << stale->body;
    EXPECT_EQ(stale->body.find("\"cache_hit\":true"), std::string::npos)
        << stale->body;

    // Adding it back restores the answer at epoch 2.
    auto restore = client.Post("/update", std::string(kSpouseTriple) + "\n");
    ASSERT_TRUE(restore.ok());
    ASSERT_EQ(restore->status, 200) << restore->body;
    EXPECT_NE(restore->body.find("\"epoch\":2"), std::string::npos)
        << restore->body;
    auto back = client.Post("/answer", kRunningExample);
    ASSERT_TRUE(back.ok());
    ASSERT_EQ(back->status, 200) << back->body;
    EXPECT_NE(back->body.find("\"Melanie_Griffith\""), std::string::npos)
        << back->body;

    // /sparql serves the same pinned-view freshness.
    auto rows = client.Post(
        "/sparql",
        "{\"query\": \"SELECT ?w WHERE { ?w <spouse> <Antonio_Banderas> }\"}");
    ASSERT_TRUE(rows.ok());
    ASSERT_EQ(rows->status, 200) << rows->body;
    EXPECT_NE(rows->body.find("\"Melanie_Griffith\""), std::string::npos)
        << rows->body;

    // /healthz and /stats expose the live state.
    health = client.Get("/healthz");
    ASSERT_TRUE(health.ok());
    EXPECT_NE(health->body.find("\"epoch\":2"), std::string::npos)
        << health->body;
    auto stats = client.Get("/stats");
    ASSERT_TRUE(stats.ok());
    for (const char* key :
         {"\"ingest\"", "\"batches\":2", "\"triples_added\":1",
          "\"triples_deleted\":1", "\"delta_triples\"", "\"wal_bytes\"",
          "\"compactions\"", "\"/update\""}) {
      EXPECT_NE(stats->body.find(key), std::string::npos)
          << "missing " << key << " in " << stats->body;
    }

    client.Close();
    service.Shutdown();
  }
  // A fresh service over the same directory recovers epoch 2 by WAL replay
  // and still knows the restored answer.
  QaService service(LiveOptions(live));
  ASSERT_TRUE(service.Start().ok());
  BlockingHttpClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", service.port()).ok());
  auto health = client.Get("/healthz");
  ASSERT_TRUE(health.ok());
  EXPECT_NE(health->body.find("\"epoch\":2"), std::string::npos)
      << health->body;
  auto r = client.Post("/answer", kRunningExample);
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->status, 200) << r->body;
  EXPECT_NE(r->body.find("\"Melanie_Griffith\""), std::string::npos)
      << r->body;
  client.Close();
  service.Shutdown();
}

TEST(LiveServiceTest, UpdateAdmissionRejectsBadAndOversizeBatches) {
  LiveDir live("live_service_admission");
  QaService::Options options = LiveOptions(live);
  options.update_max_triples = 1;
  QaService service(options);
  ASSERT_TRUE(service.Start().ok());
  BlockingHttpClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", service.port()).ok());

  // Empty body, a syntax error, and an over-bound batch all answer 400;
  // none of them commits an epoch.
  for (const char* body :
       {"", "<unterminated .\n",
        "<a> <p> <b> .\n<c> <p> <d> .\n"}) {
    auto r = client.Post("/update", body);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_EQ(r->status, 400) << "body: " << body << " -> " << r->body;
  }
  auto health = client.Get("/healthz");
  ASSERT_TRUE(health.ok());
  EXPECT_NE(health->body.find("\"epoch\":0"), std::string::npos)
      << health->body;

  // Within the bound, the same triple commits.
  auto ok = client.Post("/update", "<a> <p> <b> .\n");
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok->status, 200) << ok->body;

  client.Close();
  service.Shutdown();
}

TEST(LiveServiceTest, FrozenServiceHasNoUpdateEndpoint) {
  QaService::Options options;
  options.snapshot_path = SnapshotPath();
  options.port = 0;
  options.threads = 2;
  QaService service(options);
  ASSERT_TRUE(service.Start().ok());
  BlockingHttpClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", service.port()).ok());
  auto r = client.Post("/update", "<a> <p> <b> .\n");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->status, 404) << r->body;
  client.Close();
  service.Shutdown();
}

// At epoch 0 a live service serves the identical bytes a frozen service
// would for the same snapshot: the live plumbing (per-view QA system,
// epoch-aware cache keys, pinned-view serialization) changes nothing about
// the response surface. Cached worker-path bodies have zeroed stage timers,
// so they are deterministic and comparable across services.
TEST(LiveServiceTest, LiveEpochZeroBodiesMatchFrozenServing) {
  LiveDir live("live_service_parity");
  QaService frozen_service([&] {
    QaService::Options options;
    options.snapshot_path = SnapshotPath();
    options.port = 0;
    options.threads = 2;
    return options;
  }());
  QaService live_service(LiveOptions(live));
  ASSERT_TRUE(frozen_service.Start().ok());
  ASSERT_TRUE(live_service.Start().ok());

  auto cached_body = [&](QaService& service) {
    BlockingHttpClient client;
    EXPECT_TRUE(client.Connect("127.0.0.1", service.port()).ok());
    auto warm = client.Post("/answer", kRunningExample);
    EXPECT_TRUE(warm.ok());
    EXPECT_EQ(warm->status, 200);
    auto cached = client.Post("/answer", kRunningExample, "application/json",
                              {{"X-No-Fast-Path", "1"}});
    EXPECT_TRUE(cached.ok());
    EXPECT_EQ(cached->status, 200);
    client.Close();
    return cached->body;
  };
  EXPECT_EQ(cached_body(frozen_service), cached_body(live_service));

  live_service.Shutdown();
  frozen_service.Shutdown();
}

}  // namespace
}  // namespace server
}  // namespace ganswer
