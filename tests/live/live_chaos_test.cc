// Reader/writer chaos for the live store: several reader threads hammer
// view() and query their pinned views while the writer thread commits
// batches and compactions concurrently. Run under TSAN this proves the
// epoch-swap protocol is race-free; in any build it proves readers never
// observe a half-applied batch (every invariant below is per-view, so a
// torn publish would trip it).

#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <filesystem>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "nlp/lexicon.h"
#include "paraphrase/paraphrase_dictionary.h"
#include "rdf/sparql_engine.h"
#include "store/live/live_kb.h"
#include "store/snapshot.h"

namespace ganswer {
namespace store {
namespace live {
namespace {

using rdf::TermKind;
using rdf::UpdateOp;

constexpr int kReaders = 4;
constexpr int kBatches = 150;

TEST(LiveChaosTest, ReadersNeverBlockAndNeverSeeTornState) {
  std::string dir = "live_chaos." + std::to_string(::getpid());
  std::filesystem::remove_all(dir);
  std::filesystem::create_directory(dir);
  nlp::Lexicon lexicon;
  {
    rdf::RdfGraph graph;
    for (int i = 0; i < 10; ++i) {
      graph.AddTriple("v" + std::to_string(i), "knows",
                      "v" + std::to_string((i + 1) % 10));
    }
    ASSERT_TRUE(graph.Finalize().ok());
    paraphrase::ParaphraseDictionary dict(&lexicon);
    ASSERT_TRUE(WriteSnapshotFile(graph, dict, dir + "/base.snap").ok());
  }

  LiveKb::Options options;
  options.dir = dir + "/store";
  options.base_snapshot = dir + "/base.snap";
  options.lexicon = &lexicon;
  // Background compaction with a low threshold: compactions race the
  // readers and the writer throughout the test.
  options.background_compaction = true;
  options.compact_threshold = 40;
  auto kb = LiveKb::Open(std::move(options));
  ASSERT_TRUE(kb.ok()) << kb.status().ToString();

  // Readers report failures through this, never via gtest from a thread.
  std::mutex errors_mu;
  std::vector<std::string> errors;
  auto report = [&](const std::string& message) {
    std::lock_guard<std::mutex> lock(errors_mu);
    if (errors.size() < 10) errors.push_back(message);
  };

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> reads{0};
  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int t = 0; t < kReaders; ++t) {
    readers.emplace_back([&, t] {
      uint64_t last_epoch = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        std::shared_ptr<const KbView> view = (*kb)->view();
        const rdf::RdfGraph& g = view->graph();

        // Epochs are published in order: a thread can never observe them
        // going backwards.
        if (view->epoch() < last_epoch) {
          report("reader " + std::to_string(t) + " saw epoch " +
                 std::to_string(view->epoch()) + " after " +
                 std::to_string(last_epoch));
          break;
        }
        last_epoch = view->epoch();

        // Within one view the graph is internally consistent: the edge
        // lists sum to the advertised triple count and every endpoint is a
        // valid dictionary id. A torn publish would break this.
        size_t scanned = 0;
        bool ok = true;
        for (rdf::TermId v = 0; v < g.dict().size() && ok; ++v) {
          for (const rdf::Edge& e : g.OutEdges(v)) {
            ++scanned;
            if (e.neighbor >= g.dict().size() ||
                e.predicate >= g.dict().size()) {
              report("reader " + std::to_string(t) +
                     " saw out-of-range edge at epoch " +
                     std::to_string(view->epoch()));
              ok = false;
              break;
            }
          }
        }
        if (!ok) break;
        if (scanned != g.NumTriples()) {
          report("reader " + std::to_string(t) + " scanned " +
                 std::to_string(scanned) + " edges but NumTriples says " +
                 std::to_string(g.NumTriples()) + " at epoch " +
                 std::to_string(view->epoch()));
          break;
        }

        // And the view's SPARQL engine answers over exactly that state.
        auto result =
            view->sparql().ExecuteText("SELECT ?x WHERE { ?x <knows> ?y }");
        if (!result.ok()) {
          report("reader " + std::to_string(t) +
                 " sparql error: " + result.status().ToString());
          break;
        }
        if (result->rows.size() > g.NumTriples()) {
          report("reader " + std::to_string(t) + " got " +
                 std::to_string(result->rows.size()) + " rows from " +
                 std::to_string(g.NumTriples()) + " triples");
          break;
        }
        reads.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  // The writer: random-ish but deterministic churn — adds, deletes,
  // occasional explicit compaction on top of the threshold-armed background
  // ones.
  uint64_t committed = 0;
  for (int i = 0; i < kBatches; ++i) {
    std::vector<UpdateOp> ops;
    std::string node = "w" + std::to_string(i % 25);
    std::string peer = "v" + std::to_string(i % 10);
    ops.push_back({node, "knows", peer, TermKind::kIri, false});
    if (i % 3 == 0) {
      ops.push_back({node, "rdfs:label", "writer " + std::to_string(i % 25),
                     TermKind::kLiteral, false});
    }
    if (i % 4 == 1) {
      std::string old = "w" + std::to_string((i + 12) % 25);
      ops.push_back({old, "knows", peer, TermKind::kIri, true});
    }
    auto result = (*kb)->Apply(ops);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    committed = result->epoch;
    if (i % 50 == 17) ASSERT_TRUE((*kb)->Compact().ok());
  }

  stop.store(true, std::memory_order_relaxed);
  for (std::thread& t : readers) t.join();

  {
    std::lock_guard<std::mutex> lock(errors_mu);
    EXPECT_TRUE(errors.empty()) << errors.front();
  }
  EXPECT_EQ(committed, static_cast<uint64_t>(kBatches));
  EXPECT_EQ((*kb)->view()->epoch(), committed);
  EXPECT_GT(reads.load(), 0u);

  // Shut down (stops the background compactor) and recover: chaos left a
  // replayable store behind.
  kb->reset();
  LiveKb::Options reopen_options;
  reopen_options.dir = dir + "/store";
  reopen_options.lexicon = &lexicon;
  reopen_options.background_compaction = false;
  auto reopened = LiveKb::Open(std::move(reopen_options));
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ((*reopened)->view()->epoch(), committed);
  reopened->reset();
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace live
}  // namespace store
}  // namespace ganswer
