#include "deanna/deanna_qa.h"

#include <gtest/gtest.h>

#include <set>

#include "deanna/sparql_generator.h"
#include "test_support.h"

namespace ganswer {
namespace deanna {
namespace {

class DeannaQaTest : public ::testing::Test {
 protected:
  DeannaQaTest()
      : world_(ganswer::testing::World()),
        system_(&world_.kb.graph, &world_.lexicon, world_.verified.get()) {}

  const ganswer::testing::SharedWorld& world_;
  DeannaQa system_;
};

TEST_F(DeannaQaTest, AnswersSimpleFactoid) {
  auto r = system_.Ask("Who is the mayor of Berlin ?");
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->processed);
  EXPECT_EQ(r->answers, std::vector<std::string>{"Klaus_Wowereit"});
  EXPECT_NE(r->sparql.find("mayor"), std::string::npos) << r->sparql;
}

TEST_F(DeannaQaTest, AnswersRunningExampleWhenIlpChoosesWell) {
  auto r = system_.Ask(
      "Who was married to an actor that played in Philadelphia ?");
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->processed);
  // Joint disambiguation must pick the film via coherence and answer.
  EXPECT_EQ(r->answers, std::vector<std::string>{"Melanie_Griffith"})
      << r->sparql;
}

TEST_F(DeannaQaTest, CommitsToOneInterpretation) {
  auto r = system_.Ask(
      "Who was married to an actor that played in Philadelphia ?");
  ASSERT_TRUE(r.ok());
  // The generated SPARQL names exactly one Philadelphia reading.
  int mentions = 0;
  for (const char* e :
       {"<Philadelphia>", "<Philadelphia_(film)>", "<Philadelphia_76ers>"}) {
    if (r->sparql.find(e) != std::string::npos) ++mentions;
  }
  EXPECT_EQ(mentions, 1) << r->sparql;
}

TEST_F(DeannaQaTest, AskQuestion) {
  auto r = system_.Ask("Is Michelle Obama the wife of Barack Obama ?");
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->is_ask);
  EXPECT_TRUE(r->ask_result);
}

TEST_F(DeannaQaTest, ReportsIlpAndCoherenceWork) {
  auto r = system_.Ask(
      "Who was married to an actor that played in Philadelphia ?");
  ASSERT_TRUE(r.ok());
  EXPECT_GT(r->ilp_nodes, 0u);
  EXPECT_GT(r->coherence_pairs, 0u);
  EXPECT_GT(r->understanding_ms, 0.0);
}

TEST_F(DeannaQaTest, UnparseableQuestionNotProcessed) {
  auto r = system_.Ask("???");
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r->processed);
}

TEST(SparqlGeneratorTest, EntitiesClassesAndPathsLowerToPatterns) {
  const auto& world = ganswer::testing::World();
  const rdf::RdfGraph& g = world.kb.graph;

  qa::SemanticQueryGraph sqg;
  qa::SqgVertex who;
  who.is_wh = true;
  who.wildcard = true;
  qa::SqgVertex person;
  linking::LinkCandidate jfk_jr;
  jfk_jr.vertex = *g.Find("John_F._Kennedy_Jr.");
  jfk_jr.confidence = 1.0;
  person.candidates = {jfk_jr};
  sqg.vertices = {who, person};
  sqg.target_vertex = 0;

  qa::SqgEdge uncle;
  uncle.from = 0;
  uncle.to = 1;
  paraphrase::ParaphraseEntry path;
  path.path.steps = {{*g.Find("hasChild"), false},
                     {*g.Find("hasChild"), true},
                     {*g.Find("hasChild"), true}};
  path.confidence = 1.0;
  uncle.candidates = {path};
  sqg.edges = {uncle};

  auto query = SparqlGenerator::Generate(sqg, {-1, 0, 0}, g);
  ASSERT_TRUE(query.ok()) << query.status().ToString();
  EXPECT_EQ(query->patterns.size(), 3u) << "length-3 path chains 3 patterns";

  rdf::SparqlEngine engine(g);
  auto result = engine.Execute(*query);
  ASSERT_TRUE(result.ok());
  // BGP evaluation cannot express the simple-path constraint gAnswer's
  // matcher enforces, so besides the uncle it also returns the parent
  // (bound to both ?v0 and an intermediate) — a real fidelity difference
  // between SPARQL chains and Definition 3 matching.
  std::set<std::string> names;
  for (const auto& row : result->rows) {
    names.emplace(g.dict().text(row[0]));
  }
  EXPECT_TRUE(names.count("Ted_Kennedy"));
  EXPECT_LE(names.size(), 2u);
}

TEST(SparqlGeneratorTest, ClassChoiceAddsTypePattern) {
  const auto& world = ganswer::testing::World();
  const rdf::RdfGraph& g = world.kb.graph;
  qa::SemanticQueryGraph sqg;
  qa::SqgVertex movies;
  linking::LinkCandidate film_class;
  film_class.vertex = *g.Find("Film");
  film_class.is_class = true;
  film_class.confidence = 1.0;
  movies.candidates = {film_class};
  qa::SqgVertex director;
  linking::LinkCandidate coppola;
  coppola.vertex = *g.Find("Francis_Ford_Coppola");
  coppola.confidence = 1.0;
  director.candidates = {coppola};
  sqg.vertices = {movies, director};
  sqg.target_vertex = 0;
  qa::SqgEdge directed;
  directed.from = 0;
  directed.to = 1;
  paraphrase::ParaphraseEntry pred;
  pred.path.steps = {{*g.Find("director"), true}};
  pred.confidence = 1.0;
  directed.candidates = {pred};
  sqg.edges = {directed};

  auto query = SparqlGenerator::Generate(sqg, {0, 0, 0}, g);
  ASSERT_TRUE(query.ok());
  bool has_type = false;
  for (const auto& tp : query->patterns) {
    if (!tp.predicate.is_var && tp.predicate.text == rdf::kTypePredicate) {
      has_type = true;
    }
  }
  EXPECT_TRUE(has_type) << query->ToString();
  rdf::SparqlEngine engine(g);
  auto result = engine.Execute(*query);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->rows.size(), 3u) << query->ToString();
}

TEST(DisambiguationGraphTest, BuildsNodesPerCandidateAndCoherenceEdges) {
  const auto& world = ganswer::testing::World();
  const rdf::RdfGraph& g = world.kb.graph;

  qa::SemanticQueryGraph sqg;
  qa::SqgVertex actor;
  linking::LinkCandidate antonio;
  antonio.vertex = *g.Find("Antonio_Banderas");
  antonio.confidence = 0.8;
  linking::LinkCandidate book;
  book.vertex = *g.Find("An_Actor_Prepares");
  book.confidence = 0.5;
  actor.candidates = {antonio, book};
  qa::SqgVertex phila;
  linking::LinkCandidate film;
  film.vertex = *g.Find("Philadelphia_(film)");
  film.confidence = 0.9;
  phila.candidates = {film};
  sqg.vertices = {actor, phila};
  qa::SqgEdge play;
  play.from = 0;
  play.to = 1;
  paraphrase::ParaphraseEntry starring;
  starring.path.steps = {{*g.Find("starring"), false}};
  starring.confidence = 1.0;
  play.candidates = {starring};
  sqg.edges = {play};

  DisambiguationGraph dg(g, sqg);
  EXPECT_EQ(dg.nodes().size(), 4u);  // 2 + 1 vertex cands, 1 edge cand
  EXPECT_GT(dg.stats().coherence_pairs_evaluated, 0u);
  // Vertex-to-predicate anchoring coherence: Antonio anchors 'starring'
  // (he has an incident starring edge); the book does not. (Vertex-vertex
  // neighborhood coherence may still relate the book to the film.)
  bool antonio_anchors = false, book_anchors = false;
  for (const CoherenceEdge& e : dg.edges()) {
    const MappingNode& a = dg.nodes()[e.node_a];
    const MappingNode& b = dg.nodes()[e.node_b];
    if (!b.is_edge) continue;  // vertex-vertex coherence
    if (!a.is_edge && a.query_item == 0 && a.candidate_index == 0) {
      antonio_anchors = true;
    }
    if (!a.is_edge && a.query_item == 0 && a.candidate_index == 1) {
      book_anchors = true;
    }
  }
  EXPECT_TRUE(antonio_anchors);
  EXPECT_FALSE(book_anchors);

  auto ilp = dg.ToIlp(1.0, 0.5);
  EXPECT_EQ(ilp.exactly_one_groups.size(), 3u);
  auto solution = IlpSolver().Solve(ilp);
  ASSERT_TRUE(solution.ok());
  auto choice = dg.DecodeAssignment(solution->assignment, sqg);
  EXPECT_EQ(choice[0], 0) << "coherence pushes Antonio over the book";
}

}  // namespace
}  // namespace deanna
}  // namespace ganswer
