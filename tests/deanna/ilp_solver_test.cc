#include "deanna/ilp_solver.h"

#include <gtest/gtest.h>

#include "common/random.h"

namespace ganswer {
namespace deanna {
namespace {

TEST(IlpSolverTest, PicksBestCandidatePerGroup) {
  IlpSolver::Problem p;
  p.num_vars = 4;
  p.objective = {0.2, 0.9, 0.7, 0.1};
  p.exactly_one_groups = {{0, 1}, {2, 3}};
  auto s = IlpSolver().Solve(p);
  ASSERT_TRUE(s.ok());
  EXPECT_TRUE(s->optimal);
  EXPECT_DOUBLE_EQ(s->objective, 0.9 + 0.7);
  EXPECT_FALSE(s->assignment[0]);
  EXPECT_TRUE(s->assignment[1]);
  EXPECT_TRUE(s->assignment[2]);
  EXPECT_FALSE(s->assignment[3]);
}

TEST(IlpSolverTest, CoherenceVariableRequiresBothEndpoints) {
  // Two groups; the weaker candidates in both are bridged by a strong
  // coherence variable that makes the joint choice win.
  IlpSolver::Problem p;
  p.num_vars = 5;
  p.objective = {0.9, 0.5, 0.9, 0.5, 1.5};
  p.exactly_one_groups = {{0, 1}, {2, 3}};
  p.implications = {{4, 1}, {4, 3}};  // x4 <= x1, x4 <= x3
  auto s = IlpSolver().Solve(p);
  ASSERT_TRUE(s.ok());
  // 0.5 + 0.5 + 1.5 = 2.5 beats 0.9 + 0.9 = 1.8.
  EXPECT_DOUBLE_EQ(s->objective, 2.5);
  EXPECT_TRUE(s->assignment[1]);
  EXPECT_TRUE(s->assignment[3]);
  EXPECT_TRUE(s->assignment[4]);
}

TEST(IlpSolverTest, NegativeFreeVariablesStayZero) {
  IlpSolver::Problem p;
  p.num_vars = 2;
  p.objective = {0.5, -1.0};
  p.exactly_one_groups = {{0}};
  auto s = IlpSolver().Solve(p);
  ASSERT_TRUE(s.ok());
  EXPECT_DOUBLE_EQ(s->objective, 0.5);
  EXPECT_FALSE(s->assignment[1]);
}

TEST(IlpSolverTest, FreeVariableImplicationChains) {
  // c1 <= c0 <= x0; both positive: all on.
  IlpSolver::Problem p;
  p.num_vars = 3;
  p.objective = {0.1, 0.2, 0.3};
  p.exactly_one_groups = {{0}};
  p.implications = {{1, 0}, {2, 1}};
  auto s = IlpSolver().Solve(p);
  ASSERT_TRUE(s.ok());
  EXPECT_DOUBLE_EQ(s->objective, 0.6);
}

TEST(IlpSolverTest, RejectsMalformedProblems) {
  IlpSolver::Problem bad_obj;
  bad_obj.num_vars = 2;
  bad_obj.objective = {1.0};
  EXPECT_FALSE(IlpSolver().Solve(bad_obj).ok());

  IlpSolver::Problem empty_group;
  empty_group.num_vars = 1;
  empty_group.objective = {1.0};
  empty_group.exactly_one_groups = {{}};
  EXPECT_FALSE(IlpSolver().Solve(empty_group).ok());

  IlpSolver::Problem oob;
  oob.num_vars = 1;
  oob.objective = {1.0};
  oob.exactly_one_groups = {{5}};
  EXPECT_FALSE(IlpSolver().Solve(oob).ok());
}

TEST(IlpSolverTest, NodeBudgetReportsNonOptimal) {
  IlpSolver::Problem p;
  p.num_vars = 20;
  p.objective.assign(20, 1.0);
  for (int g = 0; g < 5; ++g) {
    p.exactly_one_groups.push_back({g * 4, g * 4 + 1, g * 4 + 2, g * 4 + 3});
  }
  IlpSolver::Options opt;
  opt.max_nodes = 3;
  auto s = IlpSolver(opt).Solve(p);
  // With such a tiny budget the search cannot finish; it either returns a
  // feasible non-optimal solution or reports failure.
  if (s.ok()) {
    EXPECT_FALSE(s->optimal);
  }
}

// Property: branch-and-bound equals brute force over all group choices.
class IlpPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(IlpPropertyTest, MatchesBruteForce) {
  Rng rng(GetParam());
  IlpSolver::Problem p;
  const int groups = 3;
  const int per_group = 3;
  p.num_vars = groups * per_group + 4;  // plus 4 conjunction variables
  for (size_t i = 0; i < p.num_vars; ++i) {
    p.objective.push_back(rng.NextDouble() * 2 - 0.3);
  }
  for (int g = 0; g < groups; ++g) {
    std::vector<int> group;
    for (int c = 0; c < per_group; ++c) group.push_back(g * per_group + c);
    p.exactly_one_groups.push_back(group);
  }
  for (int a = 0; a < 4; ++a) {
    int aux = groups * per_group + a;
    p.implications.emplace_back(aux,
                                static_cast<int>(rng.Next(groups * per_group)));
    p.implications.emplace_back(aux,
                                static_cast<int>(rng.Next(groups * per_group)));
  }

  auto solved = IlpSolver().Solve(p);
  ASSERT_TRUE(solved.ok());

  // Brute force: every combination of group choices, aux vars greedy.
  double best = -1e18;
  for (int c0 = 0; c0 < per_group; ++c0) {
    for (int c1 = 0; c1 < per_group; ++c1) {
      for (int c2 = 0; c2 < per_group; ++c2) {
        std::vector<bool> x(p.num_vars, false);
        x[c0] = x[per_group + c1] = x[2 * per_group + c2] = true;
        double obj = p.objective[c0] + p.objective[per_group + c1] +
                     p.objective[2 * per_group + c2];
        for (int a = 0; a < 4; ++a) {
          int aux = groups * per_group + a;
          if (p.objective[aux] <= 0) continue;
          bool ok = true;
          for (const auto& [src, req] : p.implications) {
            if (src == aux && !x[req]) ok = false;
          }
          if (ok) obj += p.objective[aux];
        }
        best = std::max(best, obj);
      }
    }
  }
  EXPECT_NEAR(solved->objective, best, 1e-9) << "seed=" << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, IlpPropertyTest,
                         ::testing::Values(41, 42, 43, 44, 45, 46, 47, 48));

}  // namespace
}  // namespace deanna
}  // namespace ganswer
