#include <gtest/gtest.h>

#include <sstream>

#include "qa/ganswer.h"
#include "rdf/ntriples.h"
#include "test_support.h"

namespace ganswer {
namespace {

// The full offline/online handover through files: the KB round-trips as
// N-Triples, the verified dictionary through its text format, and the
// reconstructed system answers exactly like the in-memory one.
TEST(SerializationIntegrationTest, KbAndDictionaryRoundTripPreserveAnswers) {
  const auto& world = ganswer::testing::World();

  // 1) KB -> N-Triples -> KB'.
  std::ostringstream nt;
  ASSERT_TRUE(rdf::NTriplesWriter::Write(world.kb.graph, &nt).ok());
  rdf::RdfGraph reloaded_graph;
  ASSERT_TRUE(rdf::NTriplesReader::ParseString(nt.str(), &reloaded_graph).ok());
  ASSERT_TRUE(reloaded_graph.Finalize().ok());
  EXPECT_EQ(reloaded_graph.NumTriples(), world.kb.graph.NumTriples());

  // 2) Dictionary -> text -> dictionary', resolved against KB'.
  std::ostringstream dict_text;
  ASSERT_TRUE(world.verified->Save(&dict_text, world.kb.graph.dict()).ok());
  nlp::Lexicon lexicon;
  paraphrase::ParaphraseDictionary reloaded_dict(&lexicon);
  std::istringstream dict_in(dict_text.str());
  ASSERT_TRUE(reloaded_dict.Load(&dict_in, &reloaded_graph).ok());
  EXPECT_EQ(reloaded_dict.NumPhrases(), world.verified->NumPhrases());

  // 3) Same answers from the reconstructed system.
  qa::GAnswer original(&world.kb.graph, &world.lexicon, world.verified.get());
  qa::GAnswer rebuilt(&reloaded_graph, &lexicon, &reloaded_dict);
  size_t compared = 0;
  for (const auto& q : world.workload) {
    if (++compared > 25) break;
    auto a = original.Ask(q.text);
    auto b = rebuilt.Ask(q.text);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    std::vector<std::string> av, bv;
    for (const auto& x : a->answers) av.push_back(x.text);
    for (const auto& x : b->answers) bv.push_back(x.text);
    std::sort(av.begin(), av.end());
    std::sort(bv.begin(), bv.end());
    EXPECT_EQ(av, bv) << q.text;
    EXPECT_EQ(a->is_ask, b->is_ask);
    if (a->is_ask) {
      EXPECT_EQ(a->ask_result, b->ask_result);
    }
  }
}

}  // namespace
}  // namespace ganswer
