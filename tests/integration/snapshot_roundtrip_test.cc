#include <gtest/gtest.h>

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "common/timer.h"
#include "datagen/kb_generator.h"
#include "datagen/phrase_dataset_generator.h"
#include "linking/entity_index.h"
#include "paraphrase/dictionary_builder.h"
#include "qa/ganswer.h"
#include "rdf/signature_index.h"
#include "store/snapshot.h"
#include "test_support.h"

namespace ganswer {
namespace {

// Serving built from a loaded snapshot must be indistinguishable from
// serving built from scratch: same answers, bit for bit, on the shared
// workload.
TEST(SnapshotRoundTripTest, LoadedSystemAnswersByteIdentically) {
  const auto& world = ganswer::testing::World();

  std::string bytes;
  store::SnapshotStats stats;
  ASSERT_TRUE(store::WriteSnapshot(world.kb.graph, *world.verified, &bytes,
                                   &stats)
                  .ok());
  auto snapshot = store::ReadSnapshot(bytes, &world.lexicon);
  ASSERT_TRUE(snapshot.ok()) << snapshot.status().ToString();

  qa::GAnswer from_scratch(&world.kb.graph, &world.lexicon,
                           world.verified.get());

  qa::GAnswer::Options opt;
  opt.entity_index = snapshot->entity_index.get();
  opt.matching.signatures = snapshot->signatures.get();
  opt.snapshot_identity = snapshot->fingerprint;
  qa::GAnswer from_snapshot(snapshot->graph.get(), &world.lexicon,
                            snapshot->dictionary.get(), opt);

  size_t compared = 0;
  for (const auto& q : world.workload) {
    if (++compared > 30) break;
    auto a = from_scratch.Ask(q.text);
    auto b = from_snapshot.Ask(q.text);
    ASSERT_TRUE(a.ok()) << q.text;
    ASSERT_TRUE(b.ok()) << q.text;
    EXPECT_EQ(a->is_ask, b->is_ask) << q.text;
    EXPECT_EQ(a->ask_result, b->ask_result) << q.text;
    ASSERT_EQ(a->answers.size(), b->answers.size()) << q.text;
    for (size_t i = 0; i < a->answers.size(); ++i) {
      EXPECT_EQ(a->answers[i].text, b->answers[i].text) << q.text;
      EXPECT_EQ(a->answers[i].score, b->answers[i].score) << q.text;
    }
  }
  ASSERT_GT(compared, 1u);
}

// Storage-tier variants of the same guarantee: whether the container is
// raw or compressed, and whether it is bulk-read or mmapped, the loaded
// system's answers are byte-identical to the from-scratch system's.
TEST(SnapshotRoundTripTest, EveryEncodingAndLoadModeAnswersIdentically) {
  const auto& world = ganswer::testing::World();
  qa::GAnswer from_scratch(&world.kb.graph, &world.lexicon,
                           world.verified.get());

  struct Mode {
    const char* name;
    store::SnapshotWriteOptions write;
    store::SnapshotLoadMode load;
  };
  const Mode kModes[] = {
      {"raw+read", {.compress = false}, store::SnapshotLoadMode::kRead},
      {"raw+mmap", {.compress = false}, store::SnapshotLoadMode::kMmap},
      {"compressed+read", {.compress = true}, store::SnapshotLoadMode::kRead},
      {"compressed+mmap", {.compress = true}, store::SnapshotLoadMode::kMmap},
  };
  for (const Mode& mode : kModes) {
    SCOPED_TRACE(mode.name);
    std::string path = std::string("roundtrip_") +
                       (mode.write.compress ? "c" : "r") +
                       (mode.load == store::SnapshotLoadMode::kMmap ? "m"
                                                                    : "b") +
                       ".snap";
    ASSERT_TRUE(store::WriteSnapshotFile(world.kb.graph, *world.verified,
                                         path, nullptr, mode.write)
                    .ok());
    auto snapshot = store::ReadSnapshotFile(path, &world.lexicon, mode.load);
    ASSERT_TRUE(snapshot.ok()) << snapshot.status().ToString();
    if (mode.load == store::SnapshotLoadMode::kMmap &&
        !mode.write.compress) {
      EXPECT_GT(snapshot->column_mapped_bytes(), 0u);
    }

    qa::GAnswer::Options opt;
    opt.entity_index = snapshot->entity_index.get();
    opt.matching.signatures = snapshot->signatures.get();
    opt.snapshot_identity = snapshot->fingerprint;
    qa::GAnswer loaded(snapshot->graph.get(), &world.lexicon,
                       snapshot->dictionary.get(), opt);
    size_t compared = 0;
    for (const auto& q : world.workload) {
      if (++compared > 12) break;
      auto a = from_scratch.Ask(q.text);
      auto b = loaded.Ask(q.text);
      ASSERT_TRUE(a.ok()) << q.text;
      ASSERT_TRUE(b.ok()) << q.text;
      ASSERT_EQ(a->answers.size(), b->answers.size()) << q.text;
      for (size_t i = 0; i < a->answers.size(); ++i) {
        EXPECT_EQ(a->answers[i].text, b->answers[i].text) << q.text;
        EXPECT_EQ(a->answers[i].score, b->answers[i].score) << q.text;
      }
    }
    ASSERT_GT(compared, 1u);
    std::remove(path.c_str());
  }
}

// The headline serving claim: loading the snapshot is at least an order of
// magnitude faster than the full offline rebuild (KB generation +
// dictionary mining + index construction) it replaces.
TEST(SnapshotRoundTripTest, LoadIsTenTimesFasterThanOfflineRebuild) {
  const auto& world = ganswer::testing::World();

  std::string bytes;
  ASSERT_TRUE(
      store::WriteSnapshot(world.kb.graph, *world.verified, &bytes).ok());

  WallTimer load_timer;
  auto snapshot = store::ReadSnapshot(bytes, &world.lexicon);
  double load_ms = load_timer.ElapsedMillis();
  ASSERT_TRUE(snapshot.ok()) << snapshot.status().ToString();

  // The rebuild path, exactly as a fresh process would run it: generate
  // the KB, mine the dictionary (Algorithm 1), build both online indexes.
  WallTimer rebuild_timer;
  datagen::KbGenerator::Options kopt;
  auto kb = datagen::KbGenerator::Generate(kopt);
  ASSERT_TRUE(kb.ok());
  auto phrases = datagen::PhraseDatasetGenerator::Generate(*kb, {});
  auto dataset = datagen::PhraseDatasetGenerator::StripGold(phrases);
  nlp::Lexicon lexicon;
  paraphrase::ParaphraseDictionary mined(&lexicon);
  paraphrase::DictionaryBuilder::Options bopt;
  bopt.max_path_length = 3;
  paraphrase::DictionaryBuilder builder(bopt);
  ASSERT_TRUE(builder.Build(kb->graph, dataset, &mined).ok());
  rdf::SignatureIndex signatures(kb->graph);
  linking::EntityIndex entity_index(kb->graph);
  double rebuild_ms = rebuild_timer.ElapsedMillis();

  EXPECT_GE(rebuild_ms, 10.0 * load_ms)
      << "snapshot load " << load_ms << " ms vs offline rebuild "
      << rebuild_ms << " ms";
}

}  // namespace
}  // namespace ganswer
