#include <gtest/gtest.h>

#include "common/random.h"
#include "deanna/deanna_qa.h"
#include "nlp/tokenizer.h"
#include "qa/ganswer.h"
#include "test_support.h"

namespace ganswer {
namespace {

// The pipeline must never crash or error-out unexpectedly on malformed,
// truncated or shuffled questions — a statistical NLP stack's robustness,
// asserted over mutations of the real workload.
class RobustnessTest : public ::testing::TestWithParam<uint64_t> {
 protected:
  RobustnessTest()
      : world_(ganswer::testing::World()),
        system_(&world_.kb.graph, &world_.lexicon, world_.verified.get()) {}

  const ganswer::testing::SharedWorld& world_;
  qa::GAnswer system_;
};

TEST_P(RobustnessTest, MutatedQuestionsNeverCrash) {
  Rng rng(GetParam());
  size_t asked = 0;
  for (const auto& q : world_.workload) {
    if (rng.Chance(0.5)) continue;  // sample half per seed
    std::vector<nlp::Token> toks = nlp::Tokenizer::Tokenize(q.text);
    std::vector<std::string> words;
    for (const auto& t : toks) words.push_back(t.text);
    if (words.empty()) continue;

    // One random mutation per question: drop, duplicate, or swap.
    switch (rng.Next(3)) {
      case 0:
        words.erase(words.begin() + rng.Next(words.size()));
        break;
      case 1: {
        size_t i = rng.Next(words.size());
        words.insert(words.begin() + i, words[i]);
        break;
      }
      case 2: {
        size_t i = rng.Next(words.size());
        size_t j = rng.Next(words.size());
        std::swap(words[i], words[j]);
        break;
      }
    }
    std::string mutated;
    for (const std::string& w : words) {
      if (!mutated.empty()) mutated += ' ';
      mutated += w;
    }
    auto r = system_.Ask(mutated);  // must not crash; Status failures OK
    ++asked;
    if (r.ok()) {
      EXPECT_LE(r->answers.size(), 10u) << mutated;
    }
  }
  EXPECT_GT(asked, 20u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RobustnessTest,
                         ::testing::Values(101, 102, 103, 104));

TEST(RobustnessEdgeCasesTest, DegenerateInputs) {
  const auto& world = ganswer::testing::World();
  qa::GAnswer system(&world.kb.graph, &world.lexicon, world.verified.get());
  deanna::DeannaQa baseline(&world.kb.graph, &world.lexicon,
                            world.verified.get());
  const char* inputs[] = {
      "?",
      "who",
      "who who who who who",
      "the the the",
      "Who is the mayor of",  // truncated
      "in in in of of by",
      "Who is the mayor of Berlin Berlin Berlin Berlin ?",
      "Is is is Michelle Obama ?",
      "Give me",
      "married married married to to",
      "Who was married to an actor that played in ?",
      "12345 67890 ?",
      "Wh@t h@ppens with we#rd bytes ?",
  };
  for (const char* q : inputs) {
    auto a = system.Ask(q);     // Status failures fine, crashes not
    auto d = baseline.Ask(q);
    (void)a;
    (void)d;
  }
  SUCCEED();
}

TEST(RobustnessEdgeCasesTest, VeryLongQuestion) {
  const auto& world = ganswer::testing::World();
  qa::GAnswer system(&world.kb.graph, &world.lexicon, world.verified.get());
  std::string q = "Who was married to an actor";
  for (int i = 0; i < 40; ++i) q += " that played in Philadelphia";
  q += " ?";
  auto r = system.Ask(q);
  EXPECT_TRUE(r.ok() || !r.status().message().empty());
}

}  // namespace
}  // namespace ganswer
