#include <gtest/gtest.h>

#include <algorithm>

#include "deanna/deanna_qa.h"
#include "qa/ganswer.h"
#include "test_support.h"

namespace ganswer {
namespace {

using datagen::GoldQuestion;

/// QALD-style per-question judgment.
enum class Verdict { kRight, kPartial, kWrong };

Verdict Judge(const GoldQuestion& q, bool is_ask, bool ask_result,
              const std::vector<std::string>& answers) {
  if (q.is_ask) {
    if (!is_ask) return Verdict::kWrong;
    return ask_result == q.gold_ask ? Verdict::kRight : Verdict::kWrong;
  }
  if (answers.empty()) return Verdict::kWrong;
  std::vector<std::string> gold = q.gold_answers;
  std::sort(gold.begin(), gold.end());
  std::vector<std::string> got = answers;
  std::sort(got.begin(), got.end());
  if (got == gold) return Verdict::kRight;
  std::vector<std::string> inter;
  std::set_intersection(got.begin(), got.end(), gold.begin(), gold.end(),
                        std::back_inserter(inter));
  return inter.empty() ? Verdict::kWrong : Verdict::kPartial;
}

class EndToEndTest : public ::testing::Test {
 protected:
  EndToEndTest()
      : world_(ganswer::testing::World()),
        ganswer_(&world_.kb.graph, &world_.lexicon, world_.verified.get()),
        deanna_(&world_.kb.graph, &world_.lexicon, world_.verified.get()) {}

  const ganswer::testing::SharedWorld& world_;
  qa::GAnswer ganswer_;
  deanna::DeannaQa deanna_;
};

TEST_F(EndToEndTest, GAnswerAccuracyFloorOnWorkload) {
  size_t right = 0, partial = 0, answerable = 0;
  size_t expected_failures_right = 0, expected_failures = 0;
  for (const GoldQuestion& q : world_.workload) {
    auto r = ganswer_.Ask(q.text);
    ASSERT_TRUE(r.ok()) << q.text;
    std::vector<std::string> answers;
    for (const auto& a : r->answers) answers.push_back(a.text);
    Verdict v = Judge(q, r->is_ask, r->ask_result, answers);
    if (q.expected_failure) {
      ++expected_failures;
      if (v == Verdict::kRight) ++expected_failures_right;
      continue;
    }
    ++answerable;
    if (v == Verdict::kRight) ++right;
    if (v == Verdict::kPartial) ++partial;
  }
  ASSERT_GT(answerable, 70u);
  // Accuracy floor: well over half of the answerable questions fully right
  // (the paper answers 32+11/99 overall including its failure categories).
  EXPECT_GT(static_cast<double>(right) / answerable, 0.55)
      << right << "/" << answerable << " right, " << partial << " partial";
  // The hard categories must behave as the paper's Table 10 describes:
  // almost none fully right.
  EXPECT_LT(expected_failures_right, expected_failures / 2 + 1);
}

TEST_F(EndToEndTest, GAnswerBeatsDeannaOnRightAnswers) {
  size_t ours = 0, theirs = 0;
  for (const GoldQuestion& q : world_.workload) {
    auto g = ganswer_.Ask(q.text);
    auto d = deanna_.Ask(q.text);
    ASSERT_TRUE(g.ok());
    ASSERT_TRUE(d.ok());
    std::vector<std::string> ga;
    for (const auto& a : g->answers) ga.push_back(a.text);
    if (Judge(q, g->is_ask, g->ask_result, ga) == Verdict::kRight) ++ours;
    if (Judge(q, d->is_ask, d->ask_result, d->answers) == Verdict::kRight) {
      ++theirs;
    }
  }
  EXPECT_GE(ours, theirs)
      << "data-driven disambiguation should not lose to joint "
         "disambiguation (Table 8 shape)";
  EXPECT_GT(ours, 0u);
  EXPECT_GT(theirs, 0u);
}

TEST_F(EndToEndTest, UnderstandingStaysPolynomialTime) {
  // Figure 6 shape: our question understanding stays in the
  // sub-100ms-per-question regime over the whole workload.
  double worst = 0;
  for (const GoldQuestion& q : world_.workload) {
    auto r = ganswer_.Ask(q.text);
    ASSERT_TRUE(r.ok());
    worst = std::max(worst, r->understanding_ms);
  }
  EXPECT_LT(worst, 100.0);
}

TEST_F(EndToEndTest, YesNoQuestionsJudgedByAskSemantics) {
  size_t asks = 0, right = 0;
  for (const GoldQuestion& q : world_.workload) {
    if (!q.is_ask) continue;
    ++asks;
    auto r = ganswer_.Ask(q.text);
    ASSERT_TRUE(r.ok());
    if (r->is_ask && r->ask_result == q.gold_ask) ++right;
  }
  ASSERT_GT(asks, 0u);
  EXPECT_GE(right * 2, asks) << right << "/" << asks;
}

}  // namespace
}  // namespace ganswer
