// Determinism contract of the parallel execution engine: every parallel
// stage (offline mining, top-k matching, batch answering) must produce
// results identical to its serial (threads=1) run — same entries, same
// confidences, same match lists, same scores, in the same order.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "datagen/kb_generator.h"
#include "datagen/phrase_dataset_generator.h"
#include "datagen/workload.h"
#include "nlp/lexicon.h"
#include "paraphrase/dictionary_builder.h"
#include "paraphrase/paraphrase_dictionary.h"
#include "qa/ganswer.h"
#include "test_support.h"

namespace ganswer {
namespace {

datagen::KbGenerator::GeneratedKb& Kb() {
  static auto* kb = [] {
    auto generated =
        datagen::KbGenerator::Generate(testing::SmallKbOptions());
    EXPECT_TRUE(generated.ok());
    return new datagen::KbGenerator::GeneratedKb(std::move(generated).value());
  }();
  return *kb;
}

std::vector<paraphrase::RelationPhrase> Dataset() {
  datagen::PhraseDatasetGenerator::Options opt;
  opt.num_filler_phrases = 25;
  auto phrases = datagen::PhraseDatasetGenerator::Generate(Kb(), opt);
  return datagen::PhraseDatasetGenerator::StripGold(phrases);
}

void MineWith(int threads, paraphrase::ParaphraseDictionary* dict,
              paraphrase::DictionaryBuilder::BuildStats* stats) {
  paraphrase::DictionaryBuilder::Options opt;
  opt.max_path_length = 3;
  opt.exec.threads = threads;
  paraphrase::DictionaryBuilder builder(opt);
  ASSERT_TRUE(builder.Build(Kb().graph, Dataset(), dict, stats).ok());
}

TEST(ParallelDeterminismTest, MinedDictionaryIdenticalAcrossThreadCounts) {
  nlp::Lexicon lex1, lex4;
  paraphrase::ParaphraseDictionary serial(&lex1), parallel(&lex4);
  paraphrase::DictionaryBuilder::BuildStats s1, s4;
  MineWith(1, &serial, &s1);
  MineWith(4, &parallel, &s4);

  EXPECT_EQ(s1.pairs_total, s4.pairs_total);
  EXPECT_EQ(s1.pairs_in_graph, s4.pairs_in_graph);
  EXPECT_EQ(s1.paths_enumerated, s4.paths_enumerated);

  ASSERT_EQ(serial.NumPhrases(), parallel.NumPhrases());
  ASSERT_GT(serial.NumPhrases(), 0u);
  size_t phrases_with_entries = 0;
  for (paraphrase::PhraseId id = 0; id < serial.NumPhrases(); ++id) {
    EXPECT_EQ(serial.PhraseText(id), parallel.PhraseText(id));
    const auto& a = serial.Entries(id);
    const auto& b = parallel.Entries(id);
    ASSERT_EQ(a.size(), b.size()) << "phrase " << serial.PhraseText(id);
    if (!a.empty()) ++phrases_with_entries;
    for (size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].path, b[i].path)
          << "phrase " << serial.PhraseText(id) << " entry " << i;
      EXPECT_EQ(a[i].confidence, b[i].confidence)
          << "phrase " << serial.PhraseText(id) << " entry " << i;
    }
  }
  EXPECT_GT(phrases_with_entries, 0u) << "mining produced nothing to compare";
}

struct QaWorld {
  nlp::Lexicon lexicon;
  paraphrase::ParaphraseDictionary dict;
  std::vector<datagen::GoldQuestion> workload;
  QaWorld() : dict(&lexicon) {
    paraphrase::DictionaryBuilder::Options opt;
    opt.max_path_length = 3;
    paraphrase::DictionaryBuilder builder(opt);
    EXPECT_TRUE(builder.Build(Kb().graph, Dataset(), &dict).ok());
    workload = datagen::WorkloadGenerator::Generate(Kb(), {});
  }
};

QaWorld& World() {
  static auto* world = new QaWorld();
  return *world;
}

void ExpectSameResponse(const StatusOr<qa::GAnswer::Response>& a,
                        const StatusOr<qa::GAnswer::Response>& b,
                        const std::string& question) {
  ASSERT_EQ(a.ok(), b.ok()) << question;
  if (!a.ok()) return;
  EXPECT_EQ(a->is_ask, b->is_ask) << question;
  EXPECT_EQ(a->ask_result, b->ask_result) << question;
  ASSERT_EQ(a->matches.size(), b->matches.size()) << question;
  for (size_t i = 0; i < a->matches.size(); ++i) {
    EXPECT_EQ(a->matches[i].assignment, b->matches[i].assignment) << question;
    EXPECT_EQ(a->matches[i].score, b->matches[i].score) << question;
  }
  ASSERT_EQ(a->answers.size(), b->answers.size()) << question;
  for (size_t i = 0; i < a->answers.size(); ++i) {
    EXPECT_EQ(a->answers[i].term, b->answers[i].term) << question;
    EXPECT_EQ(a->answers[i].text, b->answers[i].text) << question;
    EXPECT_EQ(a->answers[i].score, b->answers[i].score) << question;
  }
}

TEST(ParallelDeterminismTest, TopKMatchesIdenticalAcrossThreadCounts) {
  QaWorld& w = World();
  qa::GAnswer::Options serial_opt;
  serial_opt.matching.exec.threads = 1;
  qa::GAnswer::Options parallel_opt;
  parallel_opt.matching.exec.threads = 4;
  qa::GAnswer serial(&Kb().graph, &w.lexicon, &w.dict, serial_opt);
  qa::GAnswer parallel(&Kb().graph, &w.lexicon, &w.dict, parallel_opt);

  ASSERT_FALSE(w.workload.empty());
  size_t asked = 0;
  size_t answered = 0;
  for (const datagen::GoldQuestion& q : w.workload) {
    if (++asked > 20) break;
    auto a = serial.Ask(q.text);
    auto b = parallel.Ask(q.text);
    ExpectSameResponse(a, b, q.text);
    if (a.ok() && !a->answers.empty()) ++answered;
  }
  EXPECT_GT(answered, 0u) << "no question produced answers to compare";
}

TEST(ParallelDeterminismTest, BatchAnswerMatchesSerialAsk) {
  QaWorld& w = World();
  qa::GAnswer::Options serial_opt;
  serial_opt.matching.exec.threads = 1;
  qa::GAnswer serial(&Kb().graph, &w.lexicon, &w.dict, serial_opt);

  qa::GAnswer::Options batch_opt;
  batch_opt.exec.threads = 4;
  batch_opt.matching.exec.threads = 1;
  qa::GAnswer batch(&Kb().graph, &w.lexicon, &w.dict, batch_opt);

  std::vector<std::string> questions;
  for (const datagen::GoldQuestion& q : w.workload) {
    questions.push_back(q.text);
    if (questions.size() >= 16) break;
  }
  ASSERT_FALSE(questions.empty());

  auto results = batch.BatchAnswer(questions);
  ASSERT_EQ(results.size(), questions.size());
  for (size_t i = 0; i < questions.size(); ++i) {
    auto expected = serial.Ask(questions[i]);
    ExpectSameResponse(expected, results[i], questions[i]);
  }
}

}  // namespace
}  // namespace ganswer
