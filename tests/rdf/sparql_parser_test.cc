#include "rdf/sparql_parser.h"

#include <gtest/gtest.h>

namespace ganswer {
namespace rdf {
namespace {

TEST(SparqlParserTest, ParsesSimpleSelect) {
  auto q = SparqlParser::Parse(
      "SELECT ?x WHERE { ?x <spouse> <Antonio> . }");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q->form, SparqlQuery::Form::kSelect);
  EXPECT_EQ(q->select_vars, std::vector<std::string>{"x"});
  ASSERT_EQ(q->patterns.size(), 1u);
  EXPECT_TRUE(q->patterns[0].subject.is_var);
  EXPECT_EQ(q->patterns[0].predicate.text, "spouse");
  EXPECT_EQ(q->patterns[0].object.text, "Antonio");
}

TEST(SparqlParserTest, ParsesDistinctAndLimit) {
  auto q = SparqlParser::Parse(
      "SELECT DISTINCT ?x ?y WHERE { ?x <p> ?y } LIMIT 5");
  ASSERT_TRUE(q.ok());
  EXPECT_TRUE(q->distinct);
  EXPECT_EQ(q->select_vars.size(), 2u);
  ASSERT_TRUE(q->limit.has_value());
  EXPECT_EQ(*q->limit, 5u);
}

TEST(SparqlParserTest, ParsesSelectStar) {
  auto q = SparqlParser::Parse("SELECT * WHERE { ?s ?p ?o }");
  ASSERT_TRUE(q.ok());
  EXPECT_TRUE(q->select_all);
}

TEST(SparqlParserTest, ParsesAsk) {
  auto q = SparqlParser::Parse("ASK { <a> <p> <b> }");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->form, SparqlQuery::Form::kAsk);
  EXPECT_EQ(q->patterns.size(), 1u);
}

TEST(SparqlParserTest, KeywordsAreCaseInsensitive) {
  auto q = SparqlParser::Parse("select ?x where { ?x <p> <b> } limit 2");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->select_vars, std::vector<std::string>{"x"});
}

TEST(SparqlParserTest, ParsesMultiplePatternsAndOptionalDots) {
  auto q = SparqlParser::Parse(
      "SELECT ?x WHERE { ?x <p> ?y . ?y <q> <c> . ?x <r> \"lit\" }");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->patterns.size(), 3u);
  EXPECT_EQ(q->patterns[2].object.kind, TermKind::kLiteral);
}

TEST(SparqlParserTest, ParsesPrefixedNamesAndAShorthand) {
  auto q = SparqlParser::Parse(
      "SELECT ?x WHERE { ?x rdf:type <Actor> . ?x a <Person> }");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->patterns[0].predicate.text, "rdf:type");
  EXPECT_EQ(q->patterns[1].predicate.text, "rdf:type") << "'a' expands";
}

TEST(SparqlParserTest, RejectsGarbage) {
  EXPECT_FALSE(SparqlParser::Parse("FROB ?x { }").ok());
  EXPECT_FALSE(SparqlParser::Parse("SELECT WHERE { }").ok());
  EXPECT_FALSE(SparqlParser::Parse("SELECT ?x WHERE { ?x <p> }").ok());
  EXPECT_FALSE(SparqlParser::Parse("SELECT ?x WHERE { ?x <p> ?y").ok());
  EXPECT_FALSE(SparqlParser::Parse("SELECT ?x { ?x <p> ?y } LIMIT ?z").ok());
  EXPECT_FALSE(
      SparqlParser::Parse("SELECT ?x { ?x <p> ?y } trailing").ok());
}

TEST(SparqlParserTest, RejectsUnterminatedTokens) {
  EXPECT_FALSE(SparqlParser::Parse("SELECT ?x { ?x <p ?y }").ok());
  EXPECT_FALSE(SparqlParser::Parse("SELECT ?x { ?x <p> \"lit }").ok());
}

// Every parse error must carry the byte offset of the offending token so a
// failing query from a log or the fuzz corpus is diagnosable. The offsets
// below are load-bearing: they point at the first bad byte.
TEST(SparqlParserTest, ErrorsCarryBytePositions) {
  auto expect_error_at = [](std::string_view text, size_t byte) {
    auto q = SparqlParser::Parse(text);
    ASSERT_FALSE(q.ok()) << text;
    EXPECT_TRUE(q.status().IsInvalidArgument()) << q.status().ToString();
    std::string want = "at byte " + std::to_string(byte);
    EXPECT_NE(q.status().ToString().find(want), std::string::npos)
        << "for input [" << text << "] got: " << q.status().ToString();
  };
  expect_error_at("FROB ?x { }", 0);                       // bad first keyword
  expect_error_at("SELECT ?x WHERE ?x <p> ?y }", 16);      // missing '{'
  expect_error_at("SELECT ? WHERE { }", 7);                // empty var name
  expect_error_at("SELECT ?x WHERE { ?x <p ?y }", 21);     // unterminated IRI
  expect_error_at("ASK { <a> <p> \"oops }", 14);           // unterminated lit
  expect_error_at("SELECT ?x { ?x <p> ?y } LIMIT ?z", 30); // LIMIT non-number
}

// Regression: a LIMIT/OFFSET count too large for uint64 used to throw
// std::out_of_range out of std::stoull and crash; it must be a clean
// InvalidArgument now (the fuzz corpus pins the same inputs).
TEST(SparqlParserTest, RejectsOverflowingLimitAndOffset) {
  auto q = SparqlParser::Parse(
      "SELECT ?x WHERE { ?x <p> ?y } LIMIT 99999999999999999999999999");
  ASSERT_FALSE(q.ok());
  EXPECT_TRUE(q.status().IsInvalidArgument());
  EXPECT_NE(q.status().ToString().find("out of range"), std::string::npos)
      << q.status().ToString();

  auto q2 = SparqlParser::Parse(
      "SELECT ?x WHERE { ?x <p> ?y } OFFSET 184467440737095516160");
  ASSERT_FALSE(q2.ok());
  EXPECT_TRUE(q2.status().IsInvalidArgument());

  // The largest representable count still parses.
  auto ok = SparqlParser::Parse(
      "SELECT ?x WHERE { ?x <p> ?y } LIMIT 18446744073709551615");
  ASSERT_TRUE(ok.ok()) << ok.status().ToString();
  EXPECT_EQ(*ok->limit, 18446744073709551615ull);
}

TEST(SparqlParserTest, ToStringRoundTripsThroughParser) {
  auto q = SparqlParser::Parse(
      "SELECT DISTINCT ?v0 WHERE { ?v0 <spouse> ?v1 . ?v1 rdf:type <Actor> . "
      "<Philadelphia_(film)> <starring> ?v1 . } LIMIT 10");
  ASSERT_TRUE(q.ok());
  auto q2 = SparqlParser::Parse(q->ToString());
  ASSERT_TRUE(q2.ok()) << q->ToString();
  EXPECT_EQ(q2->patterns, q->patterns);
  EXPECT_EQ(q2->select_vars, q->select_vars);
  EXPECT_EQ(q2->distinct, q->distinct);
  EXPECT_EQ(q2->limit, q->limit);
}

}  // namespace
}  // namespace rdf
}  // namespace ganswer
