#include "rdf/sparql_parser.h"

#include <gtest/gtest.h>

namespace ganswer {
namespace rdf {
namespace {

TEST(SparqlParserTest, ParsesSimpleSelect) {
  auto q = SparqlParser::Parse(
      "SELECT ?x WHERE { ?x <spouse> <Antonio> . }");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q->form, SparqlQuery::Form::kSelect);
  EXPECT_EQ(q->select_vars, std::vector<std::string>{"x"});
  ASSERT_EQ(q->patterns.size(), 1u);
  EXPECT_TRUE(q->patterns[0].subject.is_var);
  EXPECT_EQ(q->patterns[0].predicate.text, "spouse");
  EXPECT_EQ(q->patterns[0].object.text, "Antonio");
}

TEST(SparqlParserTest, ParsesDistinctAndLimit) {
  auto q = SparqlParser::Parse(
      "SELECT DISTINCT ?x ?y WHERE { ?x <p> ?y } LIMIT 5");
  ASSERT_TRUE(q.ok());
  EXPECT_TRUE(q->distinct);
  EXPECT_EQ(q->select_vars.size(), 2u);
  ASSERT_TRUE(q->limit.has_value());
  EXPECT_EQ(*q->limit, 5u);
}

TEST(SparqlParserTest, ParsesSelectStar) {
  auto q = SparqlParser::Parse("SELECT * WHERE { ?s ?p ?o }");
  ASSERT_TRUE(q.ok());
  EXPECT_TRUE(q->select_all);
}

TEST(SparqlParserTest, ParsesAsk) {
  auto q = SparqlParser::Parse("ASK { <a> <p> <b> }");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->form, SparqlQuery::Form::kAsk);
  EXPECT_EQ(q->patterns.size(), 1u);
}

TEST(SparqlParserTest, KeywordsAreCaseInsensitive) {
  auto q = SparqlParser::Parse("select ?x where { ?x <p> <b> } limit 2");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->select_vars, std::vector<std::string>{"x"});
}

TEST(SparqlParserTest, ParsesMultiplePatternsAndOptionalDots) {
  auto q = SparqlParser::Parse(
      "SELECT ?x WHERE { ?x <p> ?y . ?y <q> <c> . ?x <r> \"lit\" }");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->patterns.size(), 3u);
  EXPECT_EQ(q->patterns[2].object.kind, TermKind::kLiteral);
}

TEST(SparqlParserTest, ParsesPrefixedNamesAndAShorthand) {
  auto q = SparqlParser::Parse(
      "SELECT ?x WHERE { ?x rdf:type <Actor> . ?x a <Person> }");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->patterns[0].predicate.text, "rdf:type");
  EXPECT_EQ(q->patterns[1].predicate.text, "rdf:type") << "'a' expands";
}

TEST(SparqlParserTest, RejectsGarbage) {
  EXPECT_FALSE(SparqlParser::Parse("FROB ?x { }").ok());
  EXPECT_FALSE(SparqlParser::Parse("SELECT WHERE { }").ok());
  EXPECT_FALSE(SparqlParser::Parse("SELECT ?x WHERE { ?x <p> }").ok());
  EXPECT_FALSE(SparqlParser::Parse("SELECT ?x WHERE { ?x <p> ?y").ok());
  EXPECT_FALSE(SparqlParser::Parse("SELECT ?x { ?x <p> ?y } LIMIT ?z").ok());
  EXPECT_FALSE(
      SparqlParser::Parse("SELECT ?x { ?x <p> ?y } trailing").ok());
}

TEST(SparqlParserTest, RejectsUnterminatedTokens) {
  EXPECT_FALSE(SparqlParser::Parse("SELECT ?x { ?x <p ?y }").ok());
  EXPECT_FALSE(SparqlParser::Parse("SELECT ?x { ?x <p> \"lit }").ok());
}

TEST(SparqlParserTest, ToStringRoundTripsThroughParser) {
  auto q = SparqlParser::Parse(
      "SELECT DISTINCT ?v0 WHERE { ?v0 <spouse> ?v1 . ?v1 rdf:type <Actor> . "
      "<Philadelphia_(film)> <starring> ?v1 . } LIMIT 10");
  ASSERT_TRUE(q.ok());
  auto q2 = SparqlParser::Parse(q->ToString());
  ASSERT_TRUE(q2.ok()) << q->ToString();
  EXPECT_EQ(q2->patterns, q->patterns);
  EXPECT_EQ(q2->select_vars, q->select_vars);
  EXPECT_EQ(q2->distinct, q->distinct);
  EXPECT_EQ(q2->limit, q->limit);
}

}  // namespace
}  // namespace rdf
}  // namespace ganswer
