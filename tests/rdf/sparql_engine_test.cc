#include "rdf/sparql_engine.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cstdlib>
#include <set>

#include "common/random.h"
#include "rdf/sparql_parser.h"

namespace ganswer {
namespace rdf {
namespace {

RdfGraph FamilyGraph() {
  RdfGraph g;
  g.AddTriple("Melanie", "spouse", "Antonio");
  g.AddTriple("Antonio", "rdf:type", "Actor");
  g.AddTriple("Melanie", "rdf:type", "Actor");
  g.AddTriple("Philadelphia_(film)", "starring", "Antonio");
  g.AddTriple("Philadelphia_(film)", "director", "Demme");
  g.AddTriple("Assassins", "starring", "Antonio");
  g.AddTriple("MJ", "height", "1.98", TermKind::kLiteral);
  EXPECT_TRUE(g.Finalize().ok());
  return g;
}

std::set<std::string> Names(const RdfGraph& g, const SparqlResult& r,
                            size_t col = 0) {
  std::set<std::string> out;
  for (const auto& row : r.rows) out.emplace(g.dict().text(row[col]));
  return out;
}

TEST(SparqlEngineTest, SingleBoundPattern) {
  RdfGraph g = FamilyGraph();
  SparqlEngine engine(g);
  auto r = engine.ExecuteText("SELECT ?x WHERE { ?x <starring> <Antonio> }");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(Names(g, *r),
            (std::set<std::string>{"Philadelphia_(film)", "Assassins"}));
}

TEST(SparqlEngineTest, JoinAcrossPatterns) {
  RdfGraph g = FamilyGraph();
  SparqlEngine engine(g);
  auto r = engine.ExecuteText(
      "SELECT ?w WHERE { ?w <spouse> ?a . ?f <starring> ?a . "
      "?f <director> <Demme> }");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(Names(g, *r), std::set<std::string>{"Melanie"});
}

TEST(SparqlEngineTest, VariablePredicate) {
  RdfGraph g = FamilyGraph();
  SparqlEngine engine(g);
  auto r = engine.ExecuteText(
      "SELECT ?p WHERE { <Philadelphia_(film)> ?p <Antonio> }");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(Names(g, *r), std::set<std::string>{"starring"});
}

TEST(SparqlEngineTest, AskTrueAndFalse) {
  RdfGraph g = FamilyGraph();
  SparqlEngine engine(g);
  auto yes = engine.ExecuteText("ASK { <Melanie> <spouse> <Antonio> }");
  ASSERT_TRUE(yes.ok());
  EXPECT_TRUE(yes->ask_result);
  auto no = engine.ExecuteText("ASK { <Antonio> <spouse> <Melanie> }");
  ASSERT_TRUE(no.ok());
  EXPECT_FALSE(no->ask_result);
}

TEST(SparqlEngineTest, UnknownConstantYieldsEmptyNotError) {
  RdfGraph g = FamilyGraph();
  SparqlEngine engine(g);
  auto r = engine.ExecuteText("SELECT ?x WHERE { ?x <spouse> <Nobody> }");
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->rows.empty());
}

TEST(SparqlEngineTest, SelectedVariableMustBeBound) {
  RdfGraph g = FamilyGraph();
  SparqlEngine engine(g);
  auto r = engine.ExecuteText("SELECT ?zzz WHERE { ?x <spouse> ?y }");
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsInvalidArgument());
}

TEST(SparqlEngineTest, DistinctCollapsesDuplicates) {
  RdfGraph g = FamilyGraph();
  SparqlEngine engine(g);
  // ?a appears with two bindings of ?f; without DISTINCT, duplicates.
  auto all = engine.ExecuteText("SELECT ?a WHERE { ?f <starring> ?a }");
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(all->rows.size(), 2u);
  auto distinct =
      engine.ExecuteText("SELECT DISTINCT ?a WHERE { ?f <starring> ?a }");
  ASSERT_TRUE(distinct.ok());
  EXPECT_EQ(distinct->rows.size(), 1u);
}

TEST(SparqlEngineTest, LimitTruncates) {
  RdfGraph g = FamilyGraph();
  SparqlEngine engine(g);
  auto r = engine.ExecuteText("SELECT ?s WHERE { ?s ?p ?o } LIMIT 3");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->rows.size(), 3u);
}

TEST(SparqlEngineTest, SelectStarBindsAllVariables) {
  RdfGraph g = FamilyGraph();
  SparqlEngine engine(g);
  auto r = engine.ExecuteText("SELECT * WHERE { ?s <starring> ?o }");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->var_names.size(), 2u);
  EXPECT_EQ(r->rows.size(), 2u);
}

TEST(SparqlEngineTest, RepeatedVariableInPattern) {
  RdfGraph g;
  g.AddTriple("narcissus", "loves", "narcissus");
  g.AddTriple("echo", "loves", "narcissus");
  ASSERT_TRUE(g.Finalize().ok());
  SparqlEngine engine(g);
  auto r = engine.ExecuteText("SELECT ?x WHERE { ?x <loves> ?x }");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(Names(g, *r), std::set<std::string>{"narcissus"});
}

TEST(SparqlEngineTest, LiteralConstantsMatchLiterals) {
  RdfGraph g = FamilyGraph();
  SparqlEngine engine(g);
  auto r = engine.ExecuteText("SELECT ?x WHERE { ?x <height> \"1.98\" }");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(Names(g, *r), std::set<std::string>{"MJ"});
}

TEST(SparqlEngineTest, EmptyBgpSelectsOneEmptySolutionForAsk) {
  RdfGraph g = FamilyGraph();
  SparqlEngine engine(g);
  auto r = engine.ExecuteText("ASK { }");
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->ask_result);
}

// ---------------------------------------------------------------------------
// Property test: the engine agrees with a brute-force evaluator on random
// small graphs and random 2-pattern queries.
// ---------------------------------------------------------------------------

class SparqlEnginePropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SparqlEnginePropertyTest, MatchesBruteForceOnRandomGraphs) {
  Rng rng(GetParam());
  RdfGraph g;
  const int kVertices = 8;
  const int kPreds = 3;
  std::vector<std::string> vs, ps;
  for (int i = 0; i < kVertices; ++i) vs.push_back("v" + std::to_string(i));
  for (int i = 0; i < kPreds; ++i) ps.push_back("p" + std::to_string(i));
  for (int i = 0; i < 20; ++i) {
    g.AddTriple(rng.Pick(vs), rng.Pick(ps), rng.Pick(vs));
  }
  ASSERT_TRUE(g.Finalize().ok());
  // Collect concrete triples back.
  std::vector<std::array<TermId, 3>> all;
  for (TermId s = 0; s < g.dict().size(); ++s) {
    for (const Edge& e : g.OutEdges(s)) {
      all.push_back({s, e.predicate, e.neighbor});
    }
  }

  SparqlEngine engine(g);
  // Query: ?x p_a ?y . ?y p_b ?z  — brute force over triple pairs.
  for (int qa = 0; qa < kPreds; ++qa) {
    for (int qb = 0; qb < kPreds; ++qb) {
      std::string text = "SELECT ?x ?y ?z WHERE { ?x <p" +
                         std::to_string(qa) + "> ?y . ?y <p" +
                         std::to_string(qb) + "> ?z }";
      auto r = engine.ExecuteText(text);
      ASSERT_TRUE(r.ok()) << text;
      std::set<std::vector<TermId>> got(r->rows.begin(), r->rows.end());

      std::set<std::vector<TermId>> want;
      TermId pa = *g.Find("p" + std::to_string(qa));
      TermId pb = *g.Find("p" + std::to_string(qb));
      for (const auto& t1 : all) {
        if (t1[1] != pa) continue;
        for (const auto& t2 : all) {
          if (t2[1] != pb) continue;
          if (t1[2] != t2[0]) continue;
          want.insert({t1[0], t1[2], t2[2]});
        }
      }
      EXPECT_EQ(got, want) << text << " seed=" << GetParam();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RandomGraphs, SparqlEnginePropertyTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

// ---------------------------------------------------------------------------
// Cost-based planner: ordering, counters, merge join, explain output.
// ---------------------------------------------------------------------------

TEST(SparqlPlannerTest, PlannedAndNaiveProduceSameRows) {
  RdfGraph g = FamilyGraph();
  SparqlEngine planned(g);
  SparqlEngine::Options naive_options;
  naive_options.use_planner = false;
  SparqlEngine naive(g, naive_options);
  const char* text =
      "SELECT ?x ?f WHERE { ?x <rdf:type> <Actor> . ?f <starring> ?x }";
  auto a = planned.ExecuteText(text);
  auto b = naive.ExecuteText(text);
  ASSERT_TRUE(a.ok() && b.ok());
  std::set<std::vector<TermId>> ra(a->rows.begin(), a->rows.end());
  std::set<std::vector<TermId>> rb(b->rows.begin(), b->rows.end());
  EXPECT_EQ(ra, rb);
  EXPECT_EQ(ra.size(), 2u);  // (Antonio, Philadelphia), (Antonio, Assassins)
}

TEST(SparqlPlannerTest, CountersTrackExecutionPath) {
  RdfGraph g = FamilyGraph();
  SparqlEngine planned(g);
  SparqlEngine::Options naive_options;
  naive_options.use_planner = false;
  SparqlEngine naive(g, naive_options);
  const char* text =
      "SELECT ?x WHERE { ?x <rdf:type> <Actor> . ?f <starring> ?x }";
  ASSERT_TRUE(planned.ExecuteText(text).ok());
  ASSERT_TRUE(naive.ExecuteText(text).ok());

  SparqlEngine::PlannerCounters pc = planned.planner_counters();
  EXPECT_EQ(pc.planned_queries, 1u);
  EXPECT_EQ(pc.naive_queries, 0u);
  EXPECT_GT(pc.intermediate_bindings, 0u);

  SparqlEngine::PlannerCounters nc = naive.planner_counters();
  EXPECT_EQ(nc.planned_queries, 0u);
  EXPECT_EQ(nc.naive_queries, 1u);
  EXPECT_EQ(nc.merge_joins, 0u);
  EXPECT_GT(nc.intermediate_bindings, 0u);
  // The naive path enumerates at least as many candidate bindings as the
  // planned one on this selective query.
  EXPECT_GE(nc.intermediate_bindings, pc.intermediate_bindings);
}

TEST(SparqlPlannerTest, MergeJoinOnSharedSubjectVariable) {
  RdfGraph g = FamilyGraph();
  SparqlEngine engine(g);
  // Both patterns have constant predicates, share exactly ?f keyed at the
  // subject side of both sorted groups, and are free everywhere else — the
  // leading merge join.
  auto r = engine.ExecuteText(
      "SELECT ?f ?a ?d WHERE { ?f <starring> ?a . ?f <director> ?d }");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->rows.size(), 1u);
  EXPECT_EQ(g.dict().text(r->rows[0][0]), "Philadelphia_(film)");
  EXPECT_EQ(g.dict().text(r->rows[0][1]), "Antonio");
  EXPECT_EQ(g.dict().text(r->rows[0][2]), "Demme");
  EXPECT_GT(engine.planner_counters().merge_joins, 0u);

  // A constant on a non-key side disables the merge: the planner's probe
  // on that constant is strictly cheaper than scanning both groups.
  auto probed = engine.ExecuteText(
      "SELECT ?f ?d WHERE { ?f <starring> <Antonio> . ?f <director> ?d }");
  ASSERT_TRUE(probed.ok());
  ASSERT_EQ(probed->rows.size(), 1u);
  EXPECT_EQ(g.dict().text(probed->rows[0][0]), "Philadelphia_(film)");
  EXPECT_EQ(engine.planner_counters().merge_joins, 1u);
}

TEST(SparqlPlannerTest, ExplainPlanDescribesBothModes) {
  RdfGraph g = FamilyGraph();
  SparqlEngine planned(g);
  SparqlEngine::Options naive_options;
  naive_options.use_planner = false;
  SparqlEngine naive(g, naive_options);

  auto q = SparqlParser::Parse(
      "SELECT ?x ?y WHERE { ?x ?p ?y . ?f <starring> ?x }");
  ASSERT_TRUE(q.ok());
  auto plan = planned.ExplainPlan(*q);
  ASSERT_TRUE(plan.ok());
  EXPECT_NE(plan->find("cost-based join order"), std::string::npos);
  // The selective starring pattern runs first; the open pattern then has
  // its subject bound and degrades to a subject scan, not a full scan.
  EXPECT_LT(plan->find("<starring>"), plan->find("?p"));
  EXPECT_NE(plan->find("subject scan"), std::string::npos) << *plan;

  auto naive_plan = naive.ExplainPlan(*q);
  ASSERT_TRUE(naive_plan.ok());
  EXPECT_NE(naive_plan->find("naive textual order"), std::string::npos);
  // Naive keeps the textual order: the full-scan pattern stays first.
  EXPECT_LT(naive_plan->find("?p"), naive_plan->find("<starring>"));
}

TEST(SparqlPlannerTest, ExplainPlanHandlesDegenerateQueries) {
  RdfGraph g = FamilyGraph();
  SparqlEngine engine(g);

  SparqlQuery empty;
  auto plan = engine.ExplainPlan(empty);
  ASSERT_TRUE(plan.ok());
  EXPECT_NE(plan->find("empty BGP"), std::string::npos);

  auto unknown = SparqlParser::Parse(
      "SELECT ?x WHERE { ?x <starring> <NoSuchEntity> }");
  ASSERT_TRUE(unknown.ok());
  plan = engine.ExplainPlan(*unknown);
  ASSERT_TRUE(plan.ok());
  EXPECT_NE(plan->find("unsatisfiable"), std::string::npos);
}

TEST(SparqlPlannerTest, EnvironmentVariableForcesNaiveOrder) {
  RdfGraph g = FamilyGraph();
  ASSERT_EQ(setenv("GANSWER_SPARQL_NAIVE", "1", /*overwrite=*/1), 0);
  SparqlEngine engine(g);
  unsetenv("GANSWER_SPARQL_NAIVE");
  EXPECT_FALSE(engine.options().use_planner);
  ASSERT_TRUE(
      engine.ExecuteText("SELECT ?x WHERE { ?x <spouse> <Antonio> }").ok());
  EXPECT_EQ(engine.planner_counters().naive_queries, 1u);
  // A fresh engine without the variable plans again.
  SparqlEngine fresh(g);
  EXPECT_TRUE(fresh.options().use_planner);
}

}  // namespace
}  // namespace rdf
}  // namespace ganswer
