#include "rdf/sparql_engine.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <set>

#include "common/random.h"

namespace ganswer {
namespace rdf {
namespace {

RdfGraph FamilyGraph() {
  RdfGraph g;
  g.AddTriple("Melanie", "spouse", "Antonio");
  g.AddTriple("Antonio", "rdf:type", "Actor");
  g.AddTriple("Melanie", "rdf:type", "Actor");
  g.AddTriple("Philadelphia_(film)", "starring", "Antonio");
  g.AddTriple("Philadelphia_(film)", "director", "Demme");
  g.AddTriple("Assassins", "starring", "Antonio");
  g.AddTriple("MJ", "height", "1.98", TermKind::kLiteral);
  EXPECT_TRUE(g.Finalize().ok());
  return g;
}

std::set<std::string> Names(const RdfGraph& g, const SparqlResult& r,
                            size_t col = 0) {
  std::set<std::string> out;
  for (const auto& row : r.rows) out.insert(g.dict().text(row[col]));
  return out;
}

TEST(SparqlEngineTest, SingleBoundPattern) {
  RdfGraph g = FamilyGraph();
  SparqlEngine engine(g);
  auto r = engine.ExecuteText("SELECT ?x WHERE { ?x <starring> <Antonio> }");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(Names(g, *r),
            (std::set<std::string>{"Philadelphia_(film)", "Assassins"}));
}

TEST(SparqlEngineTest, JoinAcrossPatterns) {
  RdfGraph g = FamilyGraph();
  SparqlEngine engine(g);
  auto r = engine.ExecuteText(
      "SELECT ?w WHERE { ?w <spouse> ?a . ?f <starring> ?a . "
      "?f <director> <Demme> }");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(Names(g, *r), std::set<std::string>{"Melanie"});
}

TEST(SparqlEngineTest, VariablePredicate) {
  RdfGraph g = FamilyGraph();
  SparqlEngine engine(g);
  auto r = engine.ExecuteText(
      "SELECT ?p WHERE { <Philadelphia_(film)> ?p <Antonio> }");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(Names(g, *r), std::set<std::string>{"starring"});
}

TEST(SparqlEngineTest, AskTrueAndFalse) {
  RdfGraph g = FamilyGraph();
  SparqlEngine engine(g);
  auto yes = engine.ExecuteText("ASK { <Melanie> <spouse> <Antonio> }");
  ASSERT_TRUE(yes.ok());
  EXPECT_TRUE(yes->ask_result);
  auto no = engine.ExecuteText("ASK { <Antonio> <spouse> <Melanie> }");
  ASSERT_TRUE(no.ok());
  EXPECT_FALSE(no->ask_result);
}

TEST(SparqlEngineTest, UnknownConstantYieldsEmptyNotError) {
  RdfGraph g = FamilyGraph();
  SparqlEngine engine(g);
  auto r = engine.ExecuteText("SELECT ?x WHERE { ?x <spouse> <Nobody> }");
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->rows.empty());
}

TEST(SparqlEngineTest, SelectedVariableMustBeBound) {
  RdfGraph g = FamilyGraph();
  SparqlEngine engine(g);
  auto r = engine.ExecuteText("SELECT ?zzz WHERE { ?x <spouse> ?y }");
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsInvalidArgument());
}

TEST(SparqlEngineTest, DistinctCollapsesDuplicates) {
  RdfGraph g = FamilyGraph();
  SparqlEngine engine(g);
  // ?a appears with two bindings of ?f; without DISTINCT, duplicates.
  auto all = engine.ExecuteText("SELECT ?a WHERE { ?f <starring> ?a }");
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(all->rows.size(), 2u);
  auto distinct =
      engine.ExecuteText("SELECT DISTINCT ?a WHERE { ?f <starring> ?a }");
  ASSERT_TRUE(distinct.ok());
  EXPECT_EQ(distinct->rows.size(), 1u);
}

TEST(SparqlEngineTest, LimitTruncates) {
  RdfGraph g = FamilyGraph();
  SparqlEngine engine(g);
  auto r = engine.ExecuteText("SELECT ?s WHERE { ?s ?p ?o } LIMIT 3");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->rows.size(), 3u);
}

TEST(SparqlEngineTest, SelectStarBindsAllVariables) {
  RdfGraph g = FamilyGraph();
  SparqlEngine engine(g);
  auto r = engine.ExecuteText("SELECT * WHERE { ?s <starring> ?o }");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->var_names.size(), 2u);
  EXPECT_EQ(r->rows.size(), 2u);
}

TEST(SparqlEngineTest, RepeatedVariableInPattern) {
  RdfGraph g;
  g.AddTriple("narcissus", "loves", "narcissus");
  g.AddTriple("echo", "loves", "narcissus");
  ASSERT_TRUE(g.Finalize().ok());
  SparqlEngine engine(g);
  auto r = engine.ExecuteText("SELECT ?x WHERE { ?x <loves> ?x }");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(Names(g, *r), std::set<std::string>{"narcissus"});
}

TEST(SparqlEngineTest, LiteralConstantsMatchLiterals) {
  RdfGraph g = FamilyGraph();
  SparqlEngine engine(g);
  auto r = engine.ExecuteText("SELECT ?x WHERE { ?x <height> \"1.98\" }");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(Names(g, *r), std::set<std::string>{"MJ"});
}

TEST(SparqlEngineTest, EmptyBgpSelectsOneEmptySolutionForAsk) {
  RdfGraph g = FamilyGraph();
  SparqlEngine engine(g);
  auto r = engine.ExecuteText("ASK { }");
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->ask_result);
}

// ---------------------------------------------------------------------------
// Property test: the engine agrees with a brute-force evaluator on random
// small graphs and random 2-pattern queries.
// ---------------------------------------------------------------------------

class SparqlEnginePropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SparqlEnginePropertyTest, MatchesBruteForceOnRandomGraphs) {
  Rng rng(GetParam());
  RdfGraph g;
  const int kVertices = 8;
  const int kPreds = 3;
  std::vector<std::string> vs, ps;
  for (int i = 0; i < kVertices; ++i) vs.push_back("v" + std::to_string(i));
  for (int i = 0; i < kPreds; ++i) ps.push_back("p" + std::to_string(i));
  for (int i = 0; i < 20; ++i) {
    g.AddTriple(rng.Pick(vs), rng.Pick(ps), rng.Pick(vs));
  }
  ASSERT_TRUE(g.Finalize().ok());
  // Collect concrete triples back.
  std::vector<std::array<TermId, 3>> all;
  for (TermId s = 0; s < g.dict().size(); ++s) {
    for (const Edge& e : g.OutEdges(s)) {
      all.push_back({s, e.predicate, e.neighbor});
    }
  }

  SparqlEngine engine(g);
  // Query: ?x p_a ?y . ?y p_b ?z  — brute force over triple pairs.
  for (int qa = 0; qa < kPreds; ++qa) {
    for (int qb = 0; qb < kPreds; ++qb) {
      std::string text = "SELECT ?x ?y ?z WHERE { ?x <p" +
                         std::to_string(qa) + "> ?y . ?y <p" +
                         std::to_string(qb) + "> ?z }";
      auto r = engine.ExecuteText(text);
      ASSERT_TRUE(r.ok()) << text;
      std::set<std::vector<TermId>> got(r->rows.begin(), r->rows.end());

      std::set<std::vector<TermId>> want;
      TermId pa = *g.Find("p" + std::to_string(qa));
      TermId pb = *g.Find("p" + std::to_string(qb));
      for (const auto& t1 : all) {
        if (t1[1] != pa) continue;
        for (const auto& t2 : all) {
          if (t2[1] != pb) continue;
          if (t1[2] != t2[0]) continue;
          want.insert({t1[0], t1[2], t2[2]});
        }
      }
      EXPECT_EQ(got, want) << text << " seed=" << GetParam();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RandomGraphs, SparqlEnginePropertyTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

}  // namespace
}  // namespace rdf
}  // namespace ganswer
