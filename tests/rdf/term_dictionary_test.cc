#include "rdf/term_dictionary.h"

#include <gtest/gtest.h>

namespace ganswer {
namespace rdf {
namespace {

TEST(TermDictionaryTest, InternAssignsDenseIds) {
  TermDictionary dict;
  EXPECT_EQ(dict.size(), 0u);
  TermId a = dict.Intern("a");
  TermId b = dict.Intern("b");
  EXPECT_EQ(a, 0u);
  EXPECT_EQ(b, 1u);
  EXPECT_EQ(dict.size(), 2u);
}

TEST(TermDictionaryTest, ReInternReturnsSameId) {
  TermDictionary dict;
  TermId a = dict.Intern("thing");
  EXPECT_EQ(dict.Intern("thing"), a);
  EXPECT_EQ(dict.size(), 1u);
}

TEST(TermDictionaryTest, LookupFindsInterned) {
  TermDictionary dict;
  TermId a = dict.Intern("x");
  ASSERT_TRUE(dict.Lookup("x").has_value());
  EXPECT_EQ(*dict.Lookup("x"), a);
  EXPECT_FALSE(dict.Lookup("y").has_value());
}

TEST(TermDictionaryTest, TextRoundTrips) {
  TermDictionary dict;
  TermId a = dict.Intern("Antonio_Banderas");
  EXPECT_EQ(dict.text(a), "Antonio_Banderas");
}

TEST(TermDictionaryTest, IriAndLiteralSpacesAreSeparate) {
  // The literal "country" (a label value) and the IRI <country> (a
  // predicate) are distinct terms — the collision that would otherwise
  // corrupt serialization.
  TermDictionary dict;
  TermId lit = dict.Intern("country", TermKind::kLiteral);
  TermId iri = dict.Intern("country", TermKind::kIri);
  EXPECT_NE(lit, iri);
  EXPECT_TRUE(dict.IsLiteral(lit));
  EXPECT_FALSE(dict.IsLiteral(iri));
  EXPECT_EQ(dict.text(lit), dict.text(iri));
  EXPECT_EQ(*dict.Lookup("country", TermKind::kLiteral), lit);
  EXPECT_EQ(*dict.Lookup("country", TermKind::kIri), iri);
  EXPECT_EQ(*dict.LookupAny("country"), iri) << "IRI preferred";
  // Re-interning each kind is idempotent.
  EXPECT_EQ(dict.Intern("country", TermKind::kLiteral), lit);
  EXPECT_EQ(dict.Intern("country", TermKind::kIri), iri);
}

TEST(TermDictionaryTest, EmptyStringIsValidTerm) {
  TermDictionary dict;
  TermId e = dict.Intern("", TermKind::kLiteral);
  EXPECT_EQ(dict.text(e), "");
  EXPECT_TRUE(dict.Lookup("", TermKind::kLiteral).has_value());
  EXPECT_FALSE(dict.Lookup("", TermKind::kIri).has_value());
}

TEST(TermDictionaryTest, ManyTermsStayConsistent) {
  TermDictionary dict;
  for (int i = 0; i < 1000; ++i) {
    dict.Intern("t" + std::to_string(i));
  }
  EXPECT_EQ(dict.size(), 1000u);
  for (int i = 0; i < 1000; ++i) {
    std::string name = "t" + std::to_string(i);
    auto id = dict.Lookup(name);
    ASSERT_TRUE(id.has_value());
    EXPECT_EQ(dict.text(*id), name);
  }
}

}  // namespace
}  // namespace rdf
}  // namespace ganswer
