#include "rdf/signature_index.h"

#include <gtest/gtest.h>

#include "match/candidates.h"
#include "test_support.h"

namespace ganswer {
namespace rdf {
namespace {

TEST(SignatureIndexTest, NoFalseNegativesOnGeneratedKb) {
  const auto& g = ganswer::testing::World().kb.graph;
  SignatureIndex index(g);
  // Every actual incident predicate must be "maybe present".
  for (TermId v = 0; v < g.dict().size(); ++v) {
    for (const Edge& e : g.OutEdges(v)) {
      EXPECT_TRUE(index.MaybeHasOut(v, e.predicate));
      EXPECT_TRUE(index.MaybeHasIn(e.neighbor, e.predicate));
    }
  }
}

TEST(SignatureIndexTest, DefinitelyAbsentPredicatesCanBeRejected) {
  // A vertex with a single incident predicate rejects most others (modulo
  // 64-bit hash collisions).
  RdfGraph g;
  g.AddTriple("lonely", "p0", "other");
  for (int i = 1; i < 30; ++i) {
    g.AddTriple("hub", "p" + std::to_string(i), "x" + std::to_string(i));
  }
  ASSERT_TRUE(g.Finalize().ok());
  SignatureIndex index(g);
  TermId lonely = *g.Find("lonely");
  size_t rejected = 0;
  for (int i = 1; i < 30; ++i) {
    if (!index.MaybeHasOut(lonely, *g.Find("p" + std::to_string(i)))) {
      ++rejected;
    }
  }
  EXPECT_GT(rejected, 20u) << "most absent predicates rejected in O(1)";
}

TEST(SignatureIndexTest, CoversIsContainment) {
  SignatureIndex::Signature sig = 0b1011;
  EXPECT_TRUE(SignatureIndex::Covers(sig, 0b0011));
  EXPECT_TRUE(SignatureIndex::Covers(sig, 0b1011));
  EXPECT_FALSE(SignatureIndex::Covers(sig, 0b0100));
  EXPECT_TRUE(SignatureIndex::Covers(sig, 0));
}

TEST(SignatureIndexTest, UnknownVertexHasEmptySignature) {
  RdfGraph g;
  g.AddTriple("a", "p", "b");
  ASSERT_TRUE(g.Finalize().ok());
  SignatureIndex index(g);
  EXPECT_EQ(index.OutSignature(100000), 0u);
  EXPECT_EQ(index.InSignature(100000), 0u);
}

TEST(SignatureIndexTest, PruningIdenticalWithAndWithoutSignatures) {
  // The signature pre-check must never change the pruned candidate space.
  const auto& world = ganswer::testing::World();
  const RdfGraph& g = world.kb.graph;
  SignatureIndex index(g);

  match::QueryGraph query;
  match::QueryVertex actor;
  linking::LinkCandidate cls;
  cls.vertex = *g.Find("Actor");
  cls.is_class = true;
  cls.confidence = 1.0;
  actor.candidates = {cls};
  match::QueryVertex phila;
  for (const char* name :
       {"Philadelphia", "Philadelphia_(film)", "Philadelphia_76ers"}) {
    linking::LinkCandidate c;
    c.vertex = *g.Find(name);
    c.confidence = 0.9;
    phila.candidates.push_back(c);
  }
  query.vertices = {actor, phila};
  match::QueryEdge play;
  play.from = 0;
  play.to = 1;
  paraphrase::ParaphraseEntry starring;
  starring.path.steps = {{*g.Find("starring"), false}};
  starring.confidence = 1.0;
  play.candidates = {starring};
  query.edges = {play};

  auto plain = match::CandidateSpace::Build(g, query, true, nullptr);
  auto fast = match::CandidateSpace::Build(g, query, true, &index);
  for (int v : {0, 1}) {
    ASSERT_EQ(plain.domain(v).items.size(), fast.domain(v).items.size());
    for (size_t i = 0; i < plain.domain(v).items.size(); ++i) {
      EXPECT_EQ(plain.domain(v).items[i].vertex,
                fast.domain(v).items[i].vertex);
    }
  }
}

}  // namespace
}  // namespace rdf
}  // namespace ganswer
