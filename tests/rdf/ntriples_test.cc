#include "rdf/ntriples.h"

#include <gtest/gtest.h>

#include <sstream>

namespace ganswer {
namespace rdf {
namespace {

TEST(NTriplesTest, ParsesIriTriples) {
  RdfGraph g;
  Status s = NTriplesReader::ParseString(
      "<Melanie> <spouse> <Antonio> .\n<Film> <starring> <Antonio> .", &g);
  ASSERT_TRUE(s.ok()) << s.ToString();
  ASSERT_TRUE(g.Finalize().ok());
  EXPECT_EQ(g.NumTriples(), 2u);
  EXPECT_TRUE(g.Find("Melanie").has_value());
}

TEST(NTriplesTest, ParsesLiteralObjects) {
  RdfGraph g;
  Status s = NTriplesReader::ParseString(
      "<MJ> <height> \"1.98\" .\n", &g);
  ASSERT_TRUE(s.ok()) << s.ToString();
  ASSERT_TRUE(g.Finalize().ok());
  auto lit = g.dict().Lookup("1.98", TermKind::kLiteral);
  ASSERT_TRUE(lit.has_value());
  EXPECT_TRUE(g.dict().IsLiteral(*lit));
  EXPECT_FALSE(g.Find("1.98").has_value()) << "not an IRI";
}

TEST(NTriplesTest, SkipsCommentsAndBlankLines) {
  RdfGraph g;
  Status s = NTriplesReader::ParseString(
      "# a comment\n\n<a> <p> <b> .\n   \n# another\n", &g);
  ASSERT_TRUE(s.ok()) << s.ToString();
  ASSERT_TRUE(g.Finalize().ok());
  EXPECT_EQ(g.NumTriples(), 1u);
}

TEST(NTriplesTest, HandlesEscapesInLiterals) {
  RdfGraph g;
  Status s = NTriplesReader::ParseString(
      "<a> <p> \"line\\nbreak \\\"quoted\\\" back\\\\slash\" .", &g);
  ASSERT_TRUE(s.ok()) << s.ToString();
  EXPECT_TRUE(g.dict()
                  .Lookup("line\nbreak \"quoted\" back\\slash",
                          TermKind::kLiteral)
                  .has_value());
}

TEST(NTriplesTest, IgnoresDatatypeAndLanguageTags) {
  RdfGraph g;
  Status s = NTriplesReader::ParseString(
      "<a> <p> \"42\"^^<http://www.w3.org/2001/XMLSchema#int> .\n"
      "<a> <q> \"bonjour\"@fr .",
      &g);
  ASSERT_TRUE(s.ok()) << s.ToString();
  EXPECT_TRUE(g.dict().Lookup("42", TermKind::kLiteral).has_value());
  EXPECT_TRUE(g.dict().Lookup("bonjour", TermKind::kLiteral).has_value());
}

TEST(NTriplesTest, CanonicalizesWellKnownPredicates) {
  RdfGraph g;
  Status s = NTriplesReader::ParseString(
      "<a> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <C> .", &g);
  ASSERT_TRUE(s.ok()) << s.ToString();
  ASSERT_TRUE(g.Finalize().ok());
  EXPECT_TRUE(g.IsClass(*g.Find("C")));
}

TEST(NTriplesTest, RejectsUnterminatedIri) {
  RdfGraph g;
  Status s = NTriplesReader::ParseString("<a> <p> <b .", &g);
  EXPECT_TRUE(s.IsCorruption());
}

TEST(NTriplesTest, RejectsUnterminatedLiteral) {
  RdfGraph g;
  Status s = NTriplesReader::ParseString("<a> <p> \"open .", &g);
  EXPECT_TRUE(s.IsCorruption());
}

TEST(NTriplesTest, RejectsMissingDot) {
  RdfGraph g;
  Status s = NTriplesReader::ParseString("<a> <p> <b>", &g);
  EXPECT_TRUE(s.IsCorruption());
}

TEST(NTriplesTest, RejectsLiteralSubject) {
  RdfGraph g;
  Status s = NTriplesReader::ParseString("\"lit\" <p> <b> .", &g);
  EXPECT_TRUE(s.IsCorruption());
}

TEST(NTriplesTest, ErrorsCarryLineNumbers) {
  RdfGraph g;
  Status s = NTriplesReader::ParseString("<a> <p> <b> .\n<broken", &g);
  ASSERT_TRUE(s.IsCorruption());
  EXPECT_NE(s.message().find("line 2"), std::string::npos) << s.ToString();
}

TEST(NTriplesTest, WriteReadRoundTrip) {
  RdfGraph g;
  g.AddTriple("Melanie", "spouse", "Antonio");
  g.AddTriple("MJ", "height", "1.98", TermKind::kLiteral);
  g.AddTriple("x", "note", "with \"quotes\" and \\", TermKind::kLiteral);
  ASSERT_TRUE(g.Finalize().ok());

  std::ostringstream out;
  ASSERT_TRUE(NTriplesWriter::Write(g, &out).ok());

  RdfGraph g2;
  Status s = NTriplesReader::ParseString(out.str(), &g2);
  ASSERT_TRUE(s.ok()) << s.ToString() << "\nserialized:\n" << out.str();
  ASSERT_TRUE(g2.Finalize().ok());
  EXPECT_EQ(g2.NumTriples(), g.NumTriples());
  EXPECT_TRUE(g2.dict()
                  .Lookup("with \"quotes\" and \\", TermKind::kLiteral)
                  .has_value());
}

TEST(NTriplesTest, WriterRequiresFinalizedGraph) {
  RdfGraph g;
  g.AddTriple("a", "p", "b");
  std::ostringstream out;
  EXPECT_TRUE(NTriplesWriter::Write(g, &out).IsInvalidArgument());
}

TEST(NTriplesTest, ParseFileMissingPathFails) {
  RdfGraph g;
  EXPECT_TRUE(
      NTriplesReader::ParseFile("/nonexistent/file.nt", &g).IsIoError());
}

}  // namespace
}  // namespace rdf
}  // namespace ganswer
