#include "rdf/rdf_graph.h"

#include <gtest/gtest.h>

namespace ganswer {
namespace rdf {
namespace {

RdfGraph SmallGraph() {
  RdfGraph g;
  g.AddTriple("Melanie", "spouse", "Antonio");
  g.AddTriple("Philadelphia_film", "starring", "Antonio");
  g.AddTriple("Antonio", "rdf:type", "Actor");
  g.AddTriple("Actor", "rdfs:subClassOf", "Person");
  g.AddTriple("Melanie", "rdf:type", "Actor");
  g.AddTriple("Antonio", "height", "1.80", TermKind::kLiteral);
  EXPECT_TRUE(g.Finalize().ok());
  return g;
}

TEST(RdfGraphTest, CountsTriplesAndPredicates) {
  RdfGraph g = SmallGraph();
  EXPECT_EQ(g.NumTriples(), 6u);
  // spouse, starring, rdf:type, rdfs:subClassOf, height.
  EXPECT_EQ(g.NumPredicates(), 5u);
}

TEST(RdfGraphTest, DuplicateTriplesAreDeduplicated) {
  RdfGraph g;
  g.AddTriple("a", "p", "b");
  g.AddTriple("a", "p", "b");
  ASSERT_TRUE(g.Finalize().ok());
  EXPECT_EQ(g.NumTriples(), 1u);
}

TEST(RdfGraphTest, OutAndInEdges) {
  RdfGraph g = SmallGraph();
  TermId antonio = *g.Find("Antonio");
  TermId melanie = *g.Find("Melanie");
  TermId spouse = *g.Find("spouse");
  EXPECT_EQ(g.OutDegree(melanie), 2u);  // spouse + rdf:type
  // Antonio has in-edges: spouse (Melanie), starring (film).
  EXPECT_EQ(g.InDegree(antonio), 2u);
  bool found = false;
  for (const Edge& e : g.InEdges(antonio)) {
    if (e.predicate == spouse && e.neighbor == melanie) found = true;
  }
  EXPECT_TRUE(found);
}

TEST(RdfGraphTest, HasTripleAndObjectsSubjects) {
  RdfGraph g = SmallGraph();
  TermId m = *g.Find("Melanie");
  TermId a = *g.Find("Antonio");
  TermId spouse = *g.Find("spouse");
  EXPECT_TRUE(g.HasTriple(m, spouse, a));
  EXPECT_FALSE(g.HasTriple(a, spouse, m));
  EXPECT_EQ(g.Objects(m, spouse), std::vector<TermId>{a});
  EXPECT_EQ(g.Subjects(spouse, a), std::vector<TermId>{m});
  EXPECT_TRUE(g.Objects(a, spouse).empty());
}

TEST(RdfGraphTest, ClassDetection) {
  RdfGraph g = SmallGraph();
  EXPECT_TRUE(g.IsClass(*g.Find("Actor")));
  EXPECT_TRUE(g.IsClass(*g.Find("Person")));
  EXPECT_FALSE(g.IsClass(*g.Find("Antonio")));
  EXPECT_FALSE(g.IsClass(*g.Find("spouse")));
}

TEST(RdfGraphTest, EntityDetection) {
  RdfGraph g = SmallGraph();
  EXPECT_TRUE(g.IsEntity(*g.Find("Antonio")));
  EXPECT_FALSE(g.IsEntity(*g.Find("Actor"))) << "classes are not entities";
  EXPECT_FALSE(g.IsEntity(*g.Find("1.80"))) << "literals are not entities";
  EXPECT_FALSE(g.IsEntity(*g.Find("spouse")))
      << "predicate-only terms are not entities";
}

TEST(RdfGraphTest, DirectTypesAndInstanceOfWithSubclassClosure) {
  RdfGraph g = SmallGraph();
  TermId antonio = *g.Find("Antonio");
  TermId actor = *g.Find("Actor");
  TermId person = *g.Find("Person");
  EXPECT_EQ(g.DirectTypes(antonio), std::vector<TermId>{actor});
  EXPECT_TRUE(g.IsInstanceOf(antonio, actor));
  EXPECT_TRUE(g.IsInstanceOf(antonio, person)) << "subclass closure";
  EXPECT_FALSE(g.IsInstanceOf(antonio, *g.Find("spouse")));
}

TEST(RdfGraphTest, InstancesOfIncludesSubclassInstances) {
  RdfGraph g;
  g.AddTriple("Actor", "rdfs:subClassOf", "Person");
  g.AddTriple("a1", "rdf:type", "Actor");
  g.AddTriple("p1", "rdf:type", "Person");
  ASSERT_TRUE(g.Finalize().ok());
  auto persons = g.InstancesOf(*g.Find("Person"));
  EXPECT_EQ(persons.size(), 2u);
  auto actors = g.InstancesOf(*g.Find("Actor"));
  EXPECT_EQ(actors.size(), 1u);
}

TEST(RdfGraphTest, SuperClassesIncludesSelfAndTransitive) {
  RdfGraph g;
  g.AddTriple("A", "rdfs:subClassOf", "B");
  g.AddTriple("B", "rdfs:subClassOf", "C");
  ASSERT_TRUE(g.Finalize().ok());
  auto supers = g.SuperClassesOf(*g.Find("A"));
  EXPECT_EQ(supers.size(), 3u);
}

TEST(RdfGraphTest, PredicateFrequency) {
  RdfGraph g = SmallGraph();
  EXPECT_EQ(g.PredicateFrequency(*g.Find("spouse")), 1u);
  EXPECT_EQ(g.PredicateFrequency(*g.Find("rdf:type")), 2u);
  EXPECT_EQ(g.PredicateFrequency(*g.Find("Antonio")), 0u);
}

TEST(RdfGraphTest, MaxDegreeTracksBusiestVertex) {
  RdfGraph g;
  for (int i = 0; i < 5; ++i) {
    g.AddTriple("hub", "p", "n" + std::to_string(i));
  }
  g.AddTriple("x", "p", "hub");
  ASSERT_TRUE(g.Finalize().ok());
  EXPECT_EQ(g.MaxDegree(), 6u);
}

TEST(RdfGraphTest, EdgesAreSortedByPredicateThenNeighbor) {
  RdfGraph g;
  g.AddTriple("s", "p2", "b");
  g.AddTriple("s", "p1", "c");
  g.AddTriple("s", "p1", "a");
  ASSERT_TRUE(g.Finalize().ok());
  auto edges = g.OutEdges(*g.Find("s"));
  ASSERT_EQ(edges.size(), 3u);
  EXPECT_TRUE(edges[0] < edges[1]);
  EXPECT_TRUE(edges[1] < edges[2]);
}

TEST(RdfGraphTest, RefinalizeAfterMoreTriples) {
  RdfGraph g;
  g.AddTriple("a", "p", "b");
  ASSERT_TRUE(g.Finalize().ok());
  EXPECT_EQ(g.NumTriples(), 1u);
  g.AddTriple("b", "p", "c");
  ASSERT_TRUE(g.Finalize().ok());
  EXPECT_EQ(g.NumTriples(), 2u);
  EXPECT_TRUE(g.HasTriple(*g.Find("a"), *g.Find("p"), *g.Find("b")));
  EXPECT_TRUE(g.HasTriple(*g.Find("b"), *g.Find("p"), *g.Find("c")));
}

TEST(RdfGraphTest, UnknownVertexQueriesAreSafe) {
  RdfGraph g = SmallGraph();
  TermId bogus = static_cast<TermId>(100000);
  EXPECT_TRUE(g.OutEdges(bogus).empty());
  EXPECT_TRUE(g.InEdges(bogus).empty());
  EXPECT_FALSE(g.IsClass(bogus));
  EXPECT_EQ(g.PredicateFrequency(bogus), 0u);
}

}  // namespace
}  // namespace rdf
}  // namespace ganswer
