#include <gtest/gtest.h>

#include "rdf/sparql_engine.h"
#include "rdf/sparql_parser.h"

namespace ganswer {
namespace rdf {
namespace {

RdfGraph PeaksGraph() {
  RdfGraph g;
  g.AddTriple("everest", "elevation", "8848", TermKind::kLiteral);
  g.AddTriple("k2", "elevation", "8611", TermKind::kLiteral);
  g.AddTriple("mont_blanc", "elevation", "4808", TermKind::kLiteral);
  g.AddTriple("hill", "elevation", "999", TermKind::kLiteral);
  EXPECT_TRUE(g.Finalize().ok());
  return g;
}

std::vector<std::string> Column(const RdfGraph& g, const SparqlResult& r,
                                size_t col = 0) {
  std::vector<std::string> out;
  for (const auto& row : r.rows) out.emplace_back(g.dict().text(row[col]));
  return out;
}

TEST(SparqlOrderByTest, ParsesOrderByForms) {
  auto q = SparqlParser::Parse(
      "SELECT ?m WHERE { ?m <elevation> ?e } ORDER BY DESC(?e) LIMIT 1");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  ASSERT_TRUE(q->order_by.has_value());
  EXPECT_EQ(q->order_by->var, "e");
  EXPECT_TRUE(q->order_by->descending);
  auto asc = SparqlParser::Parse(
      "SELECT ?m WHERE { ?m <elevation> ?e } ORDER BY ASC ( ?e )");
  ASSERT_TRUE(asc.ok());
  EXPECT_FALSE(asc->order_by->descending);
  auto bare = SparqlParser::Parse(
      "SELECT ?m WHERE { ?m <elevation> ?e } ORDER BY ?e");
  ASSERT_TRUE(bare.ok());
  EXPECT_FALSE(bare->order_by->descending);
}

TEST(SparqlOrderByTest, ParsesOffset) {
  auto q = SparqlParser::Parse(
      "SELECT ?m WHERE { ?m <elevation> ?e } ORDER BY DESC(?e) "
      "OFFSET 1 LIMIT 2");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(*q->offset, 1u);
  EXPECT_EQ(*q->limit, 2u);
}

TEST(SparqlOrderByTest, RejectsMalformed) {
  EXPECT_FALSE(SparqlParser::Parse("SELECT ?m { ?m <p> ?e } ORDER ?e").ok());
  EXPECT_FALSE(
      SparqlParser::Parse("SELECT ?m { ?m <p> ?e } ORDER BY DESC(?e").ok());
  EXPECT_FALSE(
      SparqlParser::Parse("SELECT ?m { ?m <p> ?e } ORDER BY <notavar>").ok());
  EXPECT_FALSE(
      SparqlParser::Parse("SELECT ?m { ?m <p> ?e } OFFSET ?x").ok());
}

TEST(SparqlOrderByTest, NumericDescendingOrder) {
  RdfGraph g = PeaksGraph();
  SparqlEngine engine(g);
  auto r = engine.ExecuteText(
      "SELECT ?m ?e WHERE { ?m <elevation> ?e } ORDER BY DESC(?e)");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(Column(g, *r),
            (std::vector<std::string>{"everest", "k2", "mont_blanc", "hill"}))
      << "999 sorts below 4808 numerically, not lexicographically";
}

TEST(SparqlOrderByTest, ThePapersAggregationIdiom) {
  // The paper's Table 10 example: ORDER BY DESC(?x) OFFSET 0 LIMIT 1.
  RdfGraph g = PeaksGraph();
  SparqlEngine engine(g);
  auto r = engine.ExecuteText(
      "SELECT ?m ?e WHERE { ?m <elevation> ?e } ORDER BY DESC(?e) "
      "OFFSET 0 LIMIT 1");
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->rows.size(), 1u);
  EXPECT_EQ(g.dict().text(r->rows[0][0]), "everest");
}

TEST(SparqlOrderByTest, OffsetSkipsRows) {
  RdfGraph g = PeaksGraph();
  SparqlEngine engine(g);
  auto r = engine.ExecuteText(
      "SELECT ?m ?e WHERE { ?m <elevation> ?e } ORDER BY ASC(?e) OFFSET 2");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(Column(g, *r), (std::vector<std::string>{"k2", "everest"}));
  auto beyond = engine.ExecuteText(
      "SELECT ?m WHERE { ?m <elevation> ?e } OFFSET 99");
  ASSERT_TRUE(beyond.ok());
  EXPECT_TRUE(beyond->rows.empty());
}

TEST(SparqlOrderByTest, OrderVariableMustBeInResults) {
  RdfGraph g = PeaksGraph();
  SparqlEngine engine(g);
  auto r = engine.ExecuteText(
      "SELECT ?m WHERE { ?m <elevation> ?e } ORDER BY DESC(?z)");
  EXPECT_FALSE(r.ok());
}

TEST(SparqlOrderByTest, ToStringRoundTrips) {
  auto q = SparqlParser::Parse(
      "SELECT ?m ?e WHERE { ?m <elevation> ?e } ORDER BY DESC(?e) "
      "LIMIT 1 OFFSET 2");
  ASSERT_TRUE(q.ok());
  auto q2 = SparqlParser::Parse(q->ToString());
  ASSERT_TRUE(q2.ok()) << q->ToString();
  EXPECT_EQ(q2->order_by->var, "e");
  EXPECT_TRUE(q2->order_by->descending);
  EXPECT_EQ(*q2->limit, 1u);
  EXPECT_EQ(*q2->offset, 2u);
}

}  // namespace
}  // namespace rdf
}  // namespace ganswer
