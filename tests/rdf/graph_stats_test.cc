#include "rdf/graph_stats.h"

#include <gtest/gtest.h>

#include <string_view>

#include "common/binary_io.h"

namespace ganswer {
namespace rdf {
namespace {

TermId Id(const RdfGraph& g, std::string_view text) {
  auto id = g.dict().LookupAny(text);
  EXPECT_TRUE(id.has_value()) << text;
  return id.value_or(kInvalidTerm);
}

RdfGraph StatsGraph() {
  RdfGraph g;
  g.AddTriple("a", "p", "b");
  g.AddTriple("a", "p", "c");
  g.AddTriple("b", "p", "c");
  g.AddTriple("b", "q", "a");
  g.AddTriple("x", "rdf:type", "C");
  g.AddTriple("y", "rdf:type", "C");
  EXPECT_TRUE(g.Finalize().ok());
  return g;
}

TEST(GraphStatsTest, PerPredicateCounts) {
  RdfGraph g = StatsGraph();
  GraphStats stats = GraphStats::Compute(g);

  EXPECT_EQ(stats.num_triples(), 6u);
  EXPECT_EQ(stats.num_vertices(), g.NumTerms());
  EXPECT_EQ(stats.num_predicates(), 3u);  // p, q, rdf:type
  EXPECT_EQ(stats.num_classes(), 1u);

  TermId p = Id(g, "p");
  EXPECT_EQ(stats.TripleCount(p), 3u);
  EXPECT_EQ(stats.DistinctSubjects(p), 2u);  // a, b
  EXPECT_EQ(stats.DistinctObjects(p), 2u);   // b, c
  EXPECT_DOUBLE_EQ(stats.AvgObjectsPerSubject(p), 1.5);
  EXPECT_DOUBLE_EQ(stats.AvgSubjectsPerObject(p), 1.5);

  TermId q = Id(g, "q");
  EXPECT_EQ(stats.TripleCount(q), 1u);
  EXPECT_EQ(stats.DistinctSubjects(q), 1u);
  EXPECT_EQ(stats.DistinctObjects(q), 1u);

  TermId type = Id(g, "rdf:type");
  EXPECT_EQ(stats.TripleCount(type), 2u);
  EXPECT_EQ(stats.DistinctObjects(type), 1u);  // C
}

TEST(GraphStatsTest, FanoutAverages) {
  RdfGraph g = StatsGraph();
  GraphStats stats = GraphStats::Compute(g);
  // Subjects with out-edges: a, b, x, y. Objects with in-edges: a, b, c, C.
  EXPECT_DOUBLE_EQ(stats.AvgOutFanout(), 6.0 / 4.0);
  EXPECT_DOUBLE_EQ(stats.AvgInFanout(), 6.0 / 4.0);
}

TEST(GraphStatsTest, ClassInstanceCountsUseSubclassClosure) {
  RdfGraph g = StatsGraph();
  GraphStats stats = GraphStats::Compute(g);
  EXPECT_EQ(stats.ClassInstanceCount(Id(g, "C")), 2u);  // x, y
  // A non-class vertex has no instances.
  EXPECT_EQ(stats.ClassInstanceCount(Id(g, "a")), 0u);

  RdfGraph h;
  h.AddTriple("z", "rdf:type", "C1");
  h.AddTriple("C1", "rdfs:subClassOf", "C2");
  ASSERT_TRUE(h.Finalize().ok());
  GraphStats hs = GraphStats::Compute(h);
  // z instantiates C2 through the closure — exactly what a
  // `?x rdf:type <C2>` pattern yields.
  EXPECT_EQ(hs.ClassInstanceCount(Id(h, "C1")), 1u);
  EXPECT_EQ(hs.ClassInstanceCount(Id(h, "C2")), 1u);
}

TEST(GraphStatsTest, UnknownTermsCountZero) {
  RdfGraph g = StatsGraph();
  GraphStats stats = GraphStats::Compute(g);
  TermId missing = static_cast<TermId>(g.NumTerms() + 17);
  EXPECT_EQ(stats.TripleCount(missing), 0u);
  EXPECT_EQ(stats.DistinctSubjects(missing), 0u);
  EXPECT_EQ(stats.DistinctObjects(missing), 0u);
  EXPECT_EQ(stats.ClassInstanceCount(missing), 0u);
  EXPECT_DOUBLE_EQ(stats.AvgObjectsPerSubject(missing), 0.0);
  EXPECT_DOUBLE_EQ(stats.AvgSubjectsPerObject(missing), 0.0);
}

TEST(GraphStatsTest, EmptyGraph) {
  RdfGraph g;
  ASSERT_TRUE(g.Finalize().ok());
  GraphStats stats = GraphStats::Compute(g);
  EXPECT_EQ(stats.num_triples(), 0u);
  EXPECT_DOUBLE_EQ(stats.AvgOutFanout(), 0.0);
  EXPECT_DOUBLE_EQ(stats.AvgInFanout(), 0.0);
}

TEST(GraphStatsTest, BinaryRoundTrip) {
  RdfGraph g = StatsGraph();
  GraphStats stats = GraphStats::Compute(g);

  BinaryWriter w;
  ASSERT_TRUE(stats.SaveBinary(&w).ok());
  BinaryReader r(w.buffer());
  GraphStats loaded;
  ASSERT_TRUE(loaded.LoadBinary(&r).ok());
  EXPECT_TRUE(loaded == stats);
}

TEST(GraphStatsTest, LoadRejectsTruncatedBytes) {
  RdfGraph g = StatsGraph();
  GraphStats stats = GraphStats::Compute(g);
  BinaryWriter w;
  ASSERT_TRUE(stats.SaveBinary(&w).ok());
  std::string_view bytes(w.buffer());
  for (size_t cut : {size_t{0}, size_t{4}, bytes.size() / 2,
                     bytes.size() - 1}) {
    BinaryReader r(bytes.substr(0, cut));
    GraphStats loaded;
    EXPECT_FALSE(loaded.LoadBinary(&r).ok()) << "cut at " << cut;
  }
}

}  // namespace
}  // namespace rdf
}  // namespace ganswer
