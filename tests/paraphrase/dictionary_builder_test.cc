#include "paraphrase/dictionary_builder.h"

#include <gtest/gtest.h>

#include "common/string_util.h"
#include "test_support.h"

namespace ganswer {
namespace paraphrase {
namespace {

// A toy KB with families + marriages, enough for Algorithm 1 to mine.
rdf::RdfGraph ToyKb() {
  rdf::RdfGraph g;
  // Five married couples with shared children (the spouse signal).
  for (int i = 0; i < 5; ++i) {
    std::string h = "husband" + std::to_string(i);
    std::string w = "wife" + std::to_string(i);
    std::string c = "child" + std::to_string(i);
    g.AddTriple(h, "spouse", w);
    g.AddTriple(h, "hasChild", c);
    g.AddTriple(w, "hasChild", c);
    g.AddTriple(h, "hasGender", "male");
    g.AddTriple(w, "hasGender", "female");
  }
  EXPECT_TRUE(g.Finalize().ok());
  return g;
}

std::vector<RelationPhrase> ToyDataset() {
  std::vector<RelationPhrase> out;
  RelationPhrase married;
  married.text = "be married to";
  for (int i = 0; i < 5; ++i) {
    married.support.emplace_back("husband" + std::to_string(i),
                                 "wife" + std::to_string(i));
  }
  out.push_back(married);
  // A second phrase over hasChild pairs gives the corpus idf contrast.
  RelationPhrase parent;
  parent.text = "parent of";
  for (int i = 0; i < 5; ++i) {
    parent.support.emplace_back("husband" + std::to_string(i),
                                "child" + std::to_string(i));
  }
  out.push_back(parent);
  return out;
}

TEST(DictionaryBuilderTest, MinesTopPredicateForEachPhrase) {
  rdf::RdfGraph g = ToyKb();
  nlp::Lexicon lexicon;
  ParaphraseDictionary dict(&lexicon);
  DictionaryBuilder::Options opt;
  opt.max_path_length = 2;
  DictionaryBuilder builder(opt);
  ASSERT_TRUE(builder.Build(g, ToyDataset(), &dict).ok());

  auto married = dict.FindByLemmas({"be", "marry", "to"});
  ASSERT_TRUE(married.has_value());
  const auto& entries = dict.Entries(*married);
  ASSERT_FALSE(entries.empty());
  EXPECT_EQ(entries[0].path.ToString(g.dict()), "->spouse")
      << "direct spouse predicate must rank first";
  EXPECT_DOUBLE_EQ(entries[0].confidence, 1.0) << "normalized";

  auto parent = dict.FindByLemmas({"parent", "of"});
  ASSERT_TRUE(parent.has_value());
  ASSERT_FALSE(dict.Entries(*parent).empty());
  // In this two-phrase toy corpus "->hasChild" and "->spouse ->hasChild"
  // tie on tf and idf; the direct predicate must at least be mined.
  bool has_direct = false;
  for (const auto& e : dict.Entries(*parent)) {
    if (e.path.ToString(g.dict()) == "->hasChild") has_direct = true;
  }
  EXPECT_TRUE(has_direct);
}

TEST(DictionaryBuilderTest, NoisePathsRankBelowSignal) {
  rdf::RdfGraph g = ToyKb();
  nlp::Lexicon lexicon;
  ParaphraseDictionary dict(&lexicon);
  DictionaryBuilder::Options opt;
  opt.max_path_length = 2;
  opt.top_k = 10;
  DictionaryBuilder builder(opt);
  ASSERT_TRUE(builder.Build(g, ToyDataset(), &dict).ok());
  auto married = dict.FindByLemmas({"be", "marry", "to"});
  const auto& entries = dict.Entries(*married);
  // The gender-hub path (->hasGender <-hasGender) connects every pair of
  // same-gender people... but husband/wife differ, so here the relevant
  // noise is ->hasChild <-hasChild (shared child). It must rank below
  // ->spouse because it also appears in "parent of"-adjacent structure.
  ASSERT_GE(entries.size(), 2u);
  EXPECT_EQ(entries[0].path.ToString(g.dict()), "->spouse");
  for (size_t i = 1; i < entries.size(); ++i) {
    EXPECT_LE(entries[i].confidence, entries[0].confidence);
  }
}

TEST(DictionaryBuilderTest, PairsMissingFromGraphAreSkipped) {
  rdf::RdfGraph g = ToyKb();
  nlp::Lexicon lexicon;
  ParaphraseDictionary dict(&lexicon);
  std::vector<RelationPhrase> dataset = ToyDataset();
  dataset[0].support.emplace_back("nobody", "nowhere");
  DictionaryBuilder builder;
  DictionaryBuilder::BuildStats stats;
  ASSERT_TRUE(builder.Build(g, dataset, &dict, &stats).ok());
  EXPECT_EQ(stats.pairs_total, 11u);
  EXPECT_EQ(stats.pairs_in_graph, 10u);
}

TEST(DictionaryBuilderTest, TopKLimitsEntries) {
  rdf::RdfGraph g = ToyKb();
  nlp::Lexicon lexicon;
  ParaphraseDictionary dict(&lexicon);
  DictionaryBuilder::Options opt;
  opt.top_k = 1;
  opt.max_path_length = 3;
  DictionaryBuilder builder(opt);
  ASSERT_TRUE(builder.Build(g, ToyDataset(), &dict).ok());
  auto married = dict.FindByLemmas({"be", "marry", "to"});
  EXPECT_EQ(dict.Entries(*married).size(), 1u);
}

TEST(DictionaryBuilderTest, RequiresFinalizedGraph) {
  rdf::RdfGraph g;
  g.AddTriple("a", "p", "b");
  nlp::Lexicon lexicon;
  ParaphraseDictionary dict(&lexicon);
  DictionaryBuilder builder;
  EXPECT_TRUE(builder.Build(g, {}, &dict).IsInvalidArgument());
  EXPECT_TRUE(DictionaryBuilder().Build(g, {}, nullptr).IsInvalidArgument());
}

// Integration with the generated world: mining recovers the gold predicate
// as top-1 for most verified core phrases (the Exp 1 P@1 floor).
TEST(DictionaryBuilderTest, MiningRecoversGoldOnGeneratedKb) {
  const auto& world = ganswer::testing::World();
  size_t checked = 0;
  size_t top1_gold = 0;
  for (const auto& spec : world.phrases) {
    if (spec.gold.empty()) continue;
    auto id = world.mined->FindByLemmas([&] {
      std::vector<std::string> ls;
      for (const auto& w : SplitWhitespace(ToLower(spec.phrase.text))) {
        ls.push_back(world.lexicon.Lemmatize(w));
      }
      return ls;
    }());
    if (!id.has_value()) continue;
    const auto& entries = world.mined->Entries(*id);
    if (entries.empty()) continue;
    ++checked;
    for (const auto& gold_steps : spec.gold) {
      auto gp = datagen::GoldToPath(gold_steps, world.kb.graph);
      if (gp.has_value() &&
          (entries[0].path == *gp || entries[0].path == gp->Reversed())) {
        ++top1_gold;
        break;
      }
    }
  }
  ASSERT_GT(checked, 30u);
  EXPECT_GT(static_cast<double>(top1_gold) / static_cast<double>(checked), 0.6)
      << top1_gold << "/" << checked;
}

}  // namespace
}  // namespace paraphrase
}  // namespace ganswer
