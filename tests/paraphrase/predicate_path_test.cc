#include "paraphrase/predicate_path.h"

#include <gtest/gtest.h>

namespace ganswer {
namespace paraphrase {
namespace {

rdf::RdfGraph KennedyGraph() {
  rdf::RdfGraph g;
  g.AddTriple("Joseph", "hasChild", "JFK");
  g.AddTriple("Joseph", "hasChild", "Ted");
  g.AddTriple("JFK", "hasChild", "JFK_Jr");
  g.AddTriple("Ted", "hasGender", "male");
  g.AddTriple("JFK", "hasGender", "male");
  EXPECT_TRUE(g.Finalize().ok());
  return g;
}

PredicatePath MakePath(const rdf::RdfGraph& g,
                       std::initializer_list<std::pair<const char*, bool>>
                           steps) {
  PredicatePath p;
  for (const auto& [name, fwd] : steps) {
    p.steps.push_back({*g.Find(name), fwd});
  }
  return p;
}

TEST(PredicatePathTest, ReversedFlipsOrderAndOrientation) {
  rdf::RdfGraph g = KennedyGraph();
  PredicatePath uncle =
      MakePath(g, {{"hasChild", false}, {"hasChild", true}, {"hasChild", true}});
  PredicatePath rev = uncle.Reversed();
  ASSERT_EQ(rev.steps.size(), 3u);
  EXPECT_FALSE(rev.steps[0].forward);
  EXPECT_FALSE(rev.steps[1].forward);
  EXPECT_TRUE(rev.steps[2].forward);
  EXPECT_EQ(rev.Reversed(), uncle) << "double reverse is identity";
}

TEST(PredicatePathTest, ToStringShowsOrientation) {
  rdf::RdfGraph g = KennedyGraph();
  PredicatePath p = MakePath(g, {{"hasChild", false}, {"hasGender", true}});
  EXPECT_EQ(p.ToString(g.dict()), "<-hasChild ->hasGender");
}

TEST(PredicatePathTest, HashDistinguishesOrientation) {
  rdf::RdfGraph g = KennedyGraph();
  PredicatePath fwd = MakePath(g, {{"hasChild", true}});
  PredicatePath bwd = MakePath(g, {{"hasChild", false}});
  EXPECT_NE(fwd, bwd);
  EXPECT_NE(PredicatePathHash()(fwd), PredicatePathHash()(bwd));
}

TEST(PredicatePathTest, EndpointsOfSingleStep) {
  rdf::RdfGraph g = KennedyGraph();
  PredicatePath fwd = MakePath(g, {{"hasChild", true}});
  auto ends = PathEndpoints(g, *g.Find("Joseph"), fwd);
  EXPECT_EQ(ends.size(), 2u);  // JFK, Ted
}

TEST(PredicatePathTest, EndpointsOfUnclePath) {
  rdf::RdfGraph g = KennedyGraph();
  // From Ted: <-hasChild (Joseph), ->hasChild (JFK), ->hasChild (JFK_Jr).
  PredicatePath uncle =
      MakePath(g, {{"hasChild", false}, {"hasChild", true}, {"hasChild", true}});
  auto ends = PathEndpoints(g, *g.Find("Ted"), uncle);
  ASSERT_EQ(ends.size(), 1u);
  EXPECT_EQ(ends[0], *g.Find("JFK_Jr"));
}

TEST(PredicatePathTest, EndpointsRespectSimplePathConstraint) {
  // a -p-> b -p-> a would revisit a; endpoints must exclude it.
  rdf::RdfGraph g;
  g.AddTriple("a", "p", "b");
  g.AddTriple("b", "p", "a");
  g.AddTriple("b", "p", "c");
  ASSERT_TRUE(g.Finalize().ok());
  PredicatePath two;
  two.steps = {{*g.Find("p"), true}, {*g.Find("p"), true}};
  auto ends = PathEndpoints(g, *g.Find("a"), two);
  ASSERT_EQ(ends.size(), 1u);
  EXPECT_EQ(ends[0], *g.Find("c"));
}

TEST(PredicatePathTest, PathConnects) {
  rdf::RdfGraph g = KennedyGraph();
  PredicatePath uncle =
      MakePath(g, {{"hasChild", false}, {"hasChild", true}, {"hasChild", true}});
  EXPECT_TRUE(PathConnects(g, *g.Find("Ted"), *g.Find("JFK_Jr"), uncle));
  EXPECT_FALSE(PathConnects(g, *g.Find("Ted"), *g.Find("Joseph"), uncle));
  EXPECT_FALSE(PathConnects(g, *g.Find("JFK_Jr"), *g.Find("Ted"), uncle))
      << "orientation matters for multi-step paths";
  EXPECT_TRUE(
      PathConnects(g, *g.Find("JFK_Jr"), *g.Find("Ted"), uncle.Reversed()));
}

TEST(PredicatePathTest, EmptyPathHasNoEndpoints) {
  rdf::RdfGraph g = KennedyGraph();
  PredicatePath empty;
  auto ends = PathEndpoints(g, *g.Find("Ted"), empty);
  ASSERT_EQ(ends.size(), 1u) << "zero steps: the start itself";
  EXPECT_EQ(ends[0], *g.Find("Ted"));
}

}  // namespace
}  // namespace paraphrase
}  // namespace ganswer
