#include "paraphrase/maintenance.h"

#include <gtest/gtest.h>

namespace ganswer {
namespace paraphrase {
namespace {

// Small KB with two predicate families so maintenance can be selective.
rdf::RdfGraph BuildKb(bool with_directed_by) {
  rdf::RdfGraph g;
  for (int i = 0; i < 5; ++i) {
    std::string h = "h" + std::to_string(i);
    std::string w = "w" + std::to_string(i);
    std::string f = "f" + std::to_string(i);
    g.AddTriple(h, "spouse", w);
    g.AddTriple(f, "starring", h);
    if (with_directed_by) g.AddTriple(f, "directedBy", w);
  }
  EXPECT_TRUE(g.Finalize().ok());
  return g;
}

std::vector<RelationPhrase> Dataset() {
  std::vector<RelationPhrase> out(2);
  out[0].text = "be married to";
  out[1].text = "direct";
  for (int i = 0; i < 5; ++i) {
    out[0].support.emplace_back("h" + std::to_string(i),
                                "w" + std::to_string(i));
    out[1].support.emplace_back("w" + std::to_string(i),
                                "f" + std::to_string(i));
  }
  return out;
}

TEST(DictionaryMaintainerTest, RemovedPredicatesDropTheirEntries) {
  rdf::RdfGraph g = BuildKb(true);
  nlp::Lexicon lexicon;
  ParaphraseDictionary dict(&lexicon);
  DictionaryBuilder::Options opt;
  opt.max_path_length = 2;
  opt.top_k = 5;
  ASSERT_TRUE(DictionaryBuilder(opt).Build(g, Dataset(), &dict).ok());

  auto direct = dict.FindByLemmas({"direct"});
  ASSERT_TRUE(direct.has_value());
  ASSERT_FALSE(dict.Entries(*direct).empty());

  DictionaryMaintainer maintainer(opt);
  DictionaryMaintainer::MaintenanceStats stats;
  ASSERT_TRUE(
      maintainer.OnPredicatesRemoved({"directedBy"}, g, &dict, &stats).ok());
  EXPECT_GT(stats.entries_dropped, 0u);
  for (PhraseId id = 0; id < dict.NumPhrases(); ++id) {
    for (const ParaphraseEntry& e : dict.Entries(id)) {
      for (const PathStep& s : e.path.steps) {
        EXPECT_NE(g.dict().text(s.predicate), "directedBy");
      }
    }
  }
}

TEST(DictionaryMaintainerTest, RemovalKeepsUnrelatedEntries) {
  rdf::RdfGraph g = BuildKb(true);
  nlp::Lexicon lexicon;
  ParaphraseDictionary dict(&lexicon);
  DictionaryBuilder::Options opt;
  opt.max_path_length = 1;
  ASSERT_TRUE(DictionaryBuilder(opt).Build(g, Dataset(), &dict).ok());
  auto married = dict.FindByLemmas({"be", "marry", "to"});
  ASSERT_TRUE(married.has_value());
  size_t before = dict.Entries(*married).size();
  ASSERT_TRUE(DictionaryMaintainer(opt)
                  .OnPredicatesRemoved({"directedBy"}, g, &dict)
                  .ok());
  EXPECT_EQ(dict.Entries(*married).size(), before);
}

TEST(DictionaryMaintainerTest, AddedPredicatesRemineAffectedPhrasesOnly) {
  // Mine first without directedBy, then add it and maintain.
  rdf::RdfGraph without = BuildKb(false);
  nlp::Lexicon lexicon;
  ParaphraseDictionary dict(&lexicon);
  DictionaryBuilder::Options opt;
  opt.max_path_length = 1;
  opt.top_k = 5;
  ASSERT_TRUE(DictionaryBuilder(opt).Build(without, Dataset(), &dict).ok());
  auto direct = dict.FindByLemmas({"direct"});
  ASSERT_TRUE(direct.has_value());
  EXPECT_TRUE(dict.Entries(*direct).empty())
      << "no predicate connects (w, f) pairs yet";

  rdf::RdfGraph with = BuildKb(true);
  DictionaryMaintainer maintainer(opt);
  DictionaryMaintainer::MaintenanceStats stats;
  ASSERT_TRUE(maintainer
                  .OnPredicatesAdded({"directedBy"}, with, Dataset(), &dict,
                                     &stats)
                  .ok());
  EXPECT_GT(stats.phrases_remined, 0u);

  // "direct" now maps to the new predicate...
  ASSERT_FALSE(dict.Entries(*direct).empty());
  bool found = false;
  for (const ParaphraseEntry& e : dict.Entries(*direct)) {
    if (e.path.IsSinglePredicate() &&
        with.dict().text(e.path.steps[0].predicate) == "directedBy") {
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(DictionaryMaintainerTest, NullAndUnfinalizedRejected) {
  rdf::RdfGraph g = BuildKb(true);
  DictionaryMaintainer maintainer;
  EXPECT_TRUE(
      maintainer.OnPredicatesRemoved({"x"}, g, nullptr).IsInvalidArgument());
  rdf::RdfGraph unfinalized;
  unfinalized.AddTriple("a", "p", "b");
  nlp::Lexicon lexicon;
  ParaphraseDictionary dict(&lexicon);
  EXPECT_TRUE(maintainer.OnPredicatesAdded({"p"}, unfinalized, {}, &dict)
                  .IsInvalidArgument());
}

}  // namespace
}  // namespace paraphrase
}  // namespace ganswer
