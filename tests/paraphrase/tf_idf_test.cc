#include "paraphrase/tf_idf.h"

#include <gtest/gtest.h>

#include <cmath>

namespace ganswer {
namespace paraphrase {
namespace {

PredicatePath P(std::initializer_list<std::pair<uint32_t, bool>> steps) {
  PredicatePath p;
  for (const auto& [pred, fwd] : steps) p.steps.push_back({pred, fwd});
  return p;
}

TEST(TfIdfTest, TfCountsSupportPairsNotOccurrences) {
  PredicatePath spouse = P({{1, true}});
  PredicatePath noise = P({{2, true}, {2, false}});
  // Phrase 0: three pairs; spouse appears in two of them, noise in all.
  std::vector<PathSets> corpus(1);
  corpus[0] = {{spouse, noise}, {spouse, noise}, {noise}};
  TfIdfModel model(&corpus);
  EXPECT_EQ(model.Tf(spouse, 0), 2u);
  EXPECT_EQ(model.Tf(noise, 0), 3u);
  EXPECT_EQ(model.Tf(P({{9, true}}), 0), 0u);
}

TEST(TfIdfTest, IdfPenalizesUbiquitousPaths) {
  PredicatePath spouse = P({{1, true}});
  PredicatePath gender = P({{2, true}, {2, false}});
  // 4 phrases; gender noise appears in all, spouse only in phrase 0.
  std::vector<PathSets> corpus(4);
  corpus[0] = {{spouse, gender}};
  corpus[1] = {{gender}};
  corpus[2] = {{gender}};
  corpus[3] = {{gender}};
  TfIdfModel model(&corpus);
  EXPECT_EQ(model.DocumentFrequency(spouse), 1u);
  EXPECT_EQ(model.DocumentFrequency(gender), 4u);
  EXPECT_DOUBLE_EQ(model.Idf(spouse), std::log(4.0 / 2.0));
  EXPECT_DOUBLE_EQ(model.Idf(gender), std::log(4.0 / 5.0));
  EXPECT_LT(model.Idf(gender), 0.0) << "ubiquitous path gets negative idf";
  EXPECT_GT(model.TfIdf(spouse, 0), model.TfIdf(gender, 0));
}

TEST(TfIdfTest, UnknownPathHasZeroDfAndMaxIdf) {
  std::vector<PathSets> corpus(3);
  corpus[0] = {{P({{1, true}})}};
  TfIdfModel model(&corpus);
  PredicatePath unseen = P({{7, false}});
  EXPECT_EQ(model.DocumentFrequency(unseen), 0u);
  EXPECT_DOUBLE_EQ(model.Idf(unseen), std::log(3.0));
  EXPECT_DOUBLE_EQ(model.TfIdf(unseen, 0), 0.0) << "tf=0 dominates";
}

TEST(TfIdfTest, DefinitionFourArithmetic) {
  // tf-idf(L, PS(rel_i), T) = tf * idf exactly.
  PredicatePath L = P({{5, true}});
  std::vector<PathSets> corpus(2);
  corpus[0] = {{L}, {L}, {L}};  // tf = 3
  corpus[1] = {{P({{6, true}})}};
  TfIdfModel model(&corpus);
  double expected = 3.0 * std::log(2.0 / 2.0);
  EXPECT_DOUBLE_EQ(model.TfIdf(L, 0), expected);
}

TEST(TfIdfTest, CorpusSize) {
  std::vector<PathSets> corpus(5);
  TfIdfModel model(&corpus);
  EXPECT_EQ(model.corpus_size(), 5u);
}

}  // namespace
}  // namespace paraphrase
}  // namespace ganswer
