#include "paraphrase/paraphrase_dictionary.h"

#include <gtest/gtest.h>

#include <sstream>

#include "rdf/rdf_graph.h"

namespace ganswer {
namespace paraphrase {
namespace {

class ParaphraseDictionaryTest : public ::testing::Test {
 protected:
  ParaphraseDictionaryTest() : dict_(&lexicon_) {
    graph_.AddTriple("a", "spouse", "b");
    graph_.AddTriple("a", "hasChild", "c");
    EXPECT_TRUE(graph_.Finalize().ok());
    spouse_ = *graph_.Find("spouse");
    has_child_ = *graph_.Find("hasChild");
  }

  ParaphraseEntry Entry(rdf::TermId pred, bool fwd, double conf) {
    ParaphraseEntry e;
    e.path.steps = {{pred, fwd}};
    e.confidence = conf;
    return e;
  }

  nlp::Lexicon lexicon_;
  ParaphraseDictionary dict_;
  rdf::RdfGraph graph_;
  rdf::TermId spouse_, has_child_;
};

TEST_F(ParaphraseDictionaryTest, AddAndLookupByLemmas) {
  PhraseId id = dict_.AddPhrase("be married to", {Entry(spouse_, true, 1.0)});
  EXPECT_EQ(dict_.NumPhrases(), 1u);
  EXPECT_EQ(dict_.PhraseText(id), "be married to");
  EXPECT_EQ(dict_.PhraseLemmas(id),
            (std::vector<std::string>{"be", "marry", "to"}));
  auto found = dict_.FindByLemmas({"be", "marry", "to"});
  ASSERT_TRUE(found.has_value());
  EXPECT_EQ(*found, id);
  EXPECT_FALSE(dict_.FindByLemmas({"be", "marry"}).has_value());
}

TEST_F(ParaphraseDictionaryTest, EntriesAreSortedByConfidence) {
  PhraseId id = dict_.AddPhrase(
      "play in", {Entry(spouse_, true, 0.3), Entry(has_child_, true, 0.9)});
  const auto& entries = dict_.Entries(id);
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_GT(entries[0].confidence, entries[1].confidence);
}

TEST_F(ParaphraseDictionaryTest, InvertedIndexFindsPhrasesByWord) {
  PhraseId married = dict_.AddPhrase("be married to", {});
  PhraseId born = dict_.AddPhrase("be born in", {});
  dict_.AddPhrase("play in", {});
  auto with_be = dict_.PhrasesContaining("be");
  EXPECT_EQ(with_be.size(), 2u);
  EXPECT_TRUE(std::find(with_be.begin(), with_be.end(), married) !=
              with_be.end());
  EXPECT_TRUE(std::find(with_be.begin(), with_be.end(), born) !=
              with_be.end());
  EXPECT_EQ(dict_.PhrasesContaining("in").size(), 2u);
  EXPECT_TRUE(dict_.PhrasesContaining("zzz").empty());
}

TEST_F(ParaphraseDictionaryTest, InvertedIndexUsesLemmas) {
  dict_.AddPhrase("be married to", {});
  // Question-side lemma "marry" (from "married") must hit the phrase.
  EXPECT_EQ(dict_.PhrasesContaining("marry").size(), 1u);
  EXPECT_TRUE(dict_.PhrasesContaining("married").empty())
      << "index stores lemmas, not surface forms";
}

TEST_F(ParaphraseDictionaryTest, ReAddReplacesEntries) {
  PhraseId id = dict_.AddPhrase("play in", {Entry(spouse_, true, 1.0)});
  PhraseId id2 = dict_.AddPhrase("play in", {Entry(has_child_, true, 0.5),
                                             Entry(spouse_, false, 0.2)});
  EXPECT_EQ(id, id2);
  EXPECT_EQ(dict_.NumPhrases(), 1u);
  EXPECT_EQ(dict_.Entries(id).size(), 2u);
}

TEST_F(ParaphraseDictionaryTest, NormalizeConfidencesScalesBestToOne) {
  PhraseId id = dict_.AddPhrase(
      "play in", {Entry(spouse_, true, 4.0), Entry(has_child_, true, 2.0)});
  dict_.NormalizeConfidences();
  EXPECT_DOUBLE_EQ(dict_.Entries(id)[0].confidence, 1.0);
  EXPECT_DOUBLE_EQ(dict_.Entries(id)[1].confidence, 0.5);
}

TEST_F(ParaphraseDictionaryTest, SaveLoadRoundTrip) {
  ParaphraseEntry multi;
  multi.path.steps = {{has_child_, false}, {has_child_, true}};
  multi.confidence = 0.75;
  dict_.AddPhrase("uncle of", {multi});
  dict_.AddPhrase("be married to", {Entry(spouse_, true, 1.0)});
  dict_.AddPhrase("orphan phrase", {});

  std::ostringstream out;
  ASSERT_TRUE(dict_.Save(&out, graph_.dict()).ok());

  ParaphraseDictionary loaded(&lexicon_);
  std::istringstream in(out.str());
  ASSERT_TRUE(loaded.Load(&in, &graph_).ok()) << out.str();
  EXPECT_EQ(loaded.NumPhrases(), 3u);

  auto uncle = loaded.FindByLemmas({"uncle", "of"});
  ASSERT_TRUE(uncle.has_value());
  ASSERT_EQ(loaded.Entries(*uncle).size(), 1u);
  const ParaphraseEntry& e = loaded.Entries(*uncle)[0];
  EXPECT_EQ(e.path.steps.size(), 2u);
  EXPECT_FALSE(e.path.steps[0].forward);
  EXPECT_DOUBLE_EQ(e.confidence, 0.75);

  auto orphan = loaded.FindByLemmas({"orphan", "phrase"});
  ASSERT_TRUE(orphan.has_value());
  EXPECT_TRUE(loaded.Entries(*orphan).empty());
}

TEST_F(ParaphraseDictionaryTest, LoadRejectsMalformedLines) {
  ParaphraseDictionary loaded(&lexicon_);
  std::istringstream bad_cols("only one column");
  EXPECT_TRUE(loaded.Load(&bad_cols, &graph_).IsCorruption());
  std::istringstream bad_step("phrase\tspouse\t1.0");  // missing +/- prefix
  EXPECT_TRUE(loaded.Load(&bad_step, &graph_).IsCorruption());
  std::istringstream bad_conf("phrase\t+spouse\tnotanumber");
  EXPECT_TRUE(loaded.Load(&bad_conf, &graph_).IsCorruption());
}

}  // namespace
}  // namespace paraphrase
}  // namespace ganswer
