#include "paraphrase/path_finder.h"

#include <gtest/gtest.h>

#include <functional>
#include <set>

#include "common/random.h"

namespace ganswer {
namespace paraphrase {
namespace {

rdf::RdfGraph KennedyGraph() {
  rdf::RdfGraph g;
  g.AddTriple("Joseph", "hasChild", "JFK");
  g.AddTriple("Joseph", "hasChild", "Ted");
  g.AddTriple("JFK", "hasChild", "JFK_Jr");
  g.AddTriple("Ted", "hasGender", "male");
  g.AddTriple("JFK_Jr", "hasGender", "male");
  g.AddTriple("Ted", "rdf:type", "Person");
  g.AddTriple("JFK_Jr", "rdf:type", "Person");
  EXPECT_TRUE(g.Finalize().ok());
  return g;
}

TEST(PathFinderTest, FindsUnclePathIgnoringDirections) {
  rdf::RdfGraph g = KennedyGraph();
  PathFinder::Options opt;
  opt.max_length = 3;
  PathFinder finder(g, opt);
  auto paths = finder.FindPaths(*g.Find("Ted"), *g.Find("JFK_Jr"));
  // Expect <-hasChild ->hasChild ->hasChild (the uncle path) and
  // ->hasGender <-hasGender (the noise path) at least.
  std::set<std::string> texts;
  for (const auto& p : paths) texts.insert(p.ToString(g.dict()));
  EXPECT_TRUE(texts.count("<-hasChild ->hasChild ->hasChild"))
      << ::testing::PrintToString(texts);
  EXPECT_TRUE(texts.count("->hasGender <-hasGender"));
}

TEST(PathFinderTest, SchemaEdgesAreSkippedByDefault) {
  rdf::RdfGraph g = KennedyGraph();
  PathFinder::Options opt;
  opt.max_length = 2;
  PathFinder finder(g, opt);
  auto paths = finder.FindPaths(*g.Find("Ted"), *g.Find("JFK_Jr"));
  for (const auto& p : paths) {
    for (const PathStep& s : p.steps) {
      EXPECT_NE(s.predicate, g.type_predicate())
          << "rdf:type must not appear: " << p.ToString(g.dict());
    }
  }
  // With schema edges allowed, the type-hub path appears.
  opt.skip_schema_edges = false;
  PathFinder with_schema(g, opt);
  auto more = with_schema.FindPaths(*g.Find("Ted"), *g.Find("JFK_Jr"));
  EXPECT_GT(more.size(), paths.size());
}

TEST(PathFinderTest, RespectsLengthThreshold) {
  rdf::RdfGraph g = KennedyGraph();
  PathFinder::Options opt;
  opt.max_length = 2;
  PathFinder finder(g, opt);
  auto paths = finder.FindPaths(*g.Find("Ted"), *g.Find("JFK_Jr"));
  for (const auto& p : paths) {
    EXPECT_LE(p.Length(), 2u);
  }
  // The length-3 uncle path needs threshold 3.
  std::set<std::string> texts;
  for (const auto& p : paths) texts.insert(p.ToString(g.dict()));
  EXPECT_FALSE(texts.count("<-hasChild ->hasChild ->hasChild"));
}

TEST(PathFinderTest, DisconnectedPairGivesNoPaths) {
  rdf::RdfGraph g;
  g.AddTriple("a", "p", "b");
  g.AddTriple("x", "p", "y");
  ASSERT_TRUE(g.Finalize().ok());
  PathFinder finder(g);
  EXPECT_TRUE(finder.FindPaths(*g.Find("a"), *g.Find("x")).empty());
}

TEST(PathFinderTest, SameVertexGivesNoPaths) {
  rdf::RdfGraph g = KennedyGraph();
  PathFinder finder(g);
  EXPECT_TRUE(finder.FindPaths(*g.Find("Ted"), *g.Find("Ted")).empty());
}

TEST(PathFinderTest, MaxPathsCapsOutput) {
  // Dense bipartite-ish graph with many parallel 2-paths.
  rdf::RdfGraph g;
  for (int i = 0; i < 10; ++i) {
    std::string mid = "m" + std::to_string(i);
    g.AddTriple("a", "p" + std::to_string(i), mid);
    g.AddTriple(mid, "q" + std::to_string(i), "b");
  }
  ASSERT_TRUE(g.Finalize().ok());
  PathFinder::Options opt;
  opt.max_length = 2;
  opt.max_paths = 4;
  PathFinder finder(g, opt);
  EXPECT_EQ(finder.FindPaths(*g.Find("a"), *g.Find("b")).size(), 4u);
}

TEST(PathFinderTest, HubGuardBlocksHighDegreeIntermediates) {
  rdf::RdfGraph g;
  // a - hub - b where hub has high degree, plus a direct quiet path.
  g.AddTriple("a", "p", "hub");
  g.AddTriple("hub", "p", "b");
  g.AddTriple("a", "q", "mid");
  g.AddTriple("mid", "q", "b");
  for (int i = 0; i < 20; ++i) {
    g.AddTriple("hub", "noise", "n" + std::to_string(i));
  }
  ASSERT_TRUE(g.Finalize().ok());
  PathFinder::Options opt;
  opt.max_length = 2;
  opt.max_intermediate_degree = 5;
  PathFinder finder(g, opt);
  auto paths = finder.FindPaths(*g.Find("a"), *g.Find("b"));
  ASSERT_EQ(paths.size(), 1u);
  EXPECT_EQ(paths[0].ToString(g.dict()), "->q ->q");
}

// ---------------------------------------------------------------------------
// Property: on random small graphs, FindPaths equals a brute-force
// enumeration of simple undirected paths.
// ---------------------------------------------------------------------------

std::set<std::string> BruteForcePaths(const rdf::RdfGraph& g, rdf::TermId from,
                                      rdf::TermId to, size_t max_len) {
  std::set<std::string> out;
  std::vector<rdf::TermId> chain{from};
  PredicatePath current;
  std::function<void(rdf::TermId)> dfs = [&](rdf::TermId v) {
    if (v == to && !current.steps.empty()) {
      out.insert(current.ToString(g.dict()));
      return;
    }
    if (current.steps.size() >= max_len) return;
    auto step = [&](const rdf::Edge& e, bool fwd) {
      if (e.predicate == g.type_predicate() ||
          e.predicate == g.subclass_predicate() ||
          e.predicate == g.label_predicate()) {
        return;
      }
      if (std::find(chain.begin(), chain.end(), e.neighbor) != chain.end()) {
        return;
      }
      chain.push_back(e.neighbor);
      current.steps.push_back({e.predicate, fwd});
      dfs(e.neighbor);
      current.steps.pop_back();
      chain.pop_back();
    };
    for (const rdf::Edge& e : g.OutEdges(v)) step(e, true);
    for (const rdf::Edge& e : g.InEdges(v)) step(e, false);
  };
  dfs(from);
  return out;
}

class PathFinderPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PathFinderPropertyTest, MatchesBruteForce) {
  Rng rng(GetParam());
  rdf::RdfGraph g;
  std::vector<std::string> vs;
  for (int i = 0; i < 7; ++i) vs.push_back("v" + std::to_string(i));
  std::vector<std::string> ps{"p", "q", "r"};
  for (int i = 0; i < 14; ++i) {
    g.AddTriple(rng.Pick(vs), rng.Pick(ps), rng.Pick(vs));
  }
  ASSERT_TRUE(g.Finalize().ok());

  for (size_t max_len : {1u, 2u, 3u, 4u}) {
    PathFinder::Options opt;
    opt.max_length = max_len;
    PathFinder finder(g, opt);
    for (const auto& a : vs) {
      for (const auto& b : vs) {
        if (a == b) continue;
        // A random draw may leave some vertex names unused; Find then
        // returns nullopt and dereferencing it would be UB.
        auto ia = g.Find(a);
        auto ib = g.Find(b);
        if (!ia.has_value() || !ib.has_value()) continue;
        auto got_paths = finder.FindPaths(*ia, *ib);
        std::set<std::string> got;
        for (const auto& p : got_paths) got.insert(p.ToString(g.dict()));
        EXPECT_EQ(got, BruteForcePaths(g, *ia, *ib, max_len))
            << a << "->" << b << " len=" << max_len
            << " seed=" << GetParam();
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RandomGraphs, PathFinderPropertyTest,
                         ::testing::Values(10, 11, 12, 13, 14, 15));

}  // namespace
}  // namespace paraphrase
}  // namespace ganswer
