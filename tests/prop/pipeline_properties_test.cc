// End-to-end answer-identity properties over randomized mini worlds
// (generated KB + mined dictionary + gold workload, all functions of one
// seed): the answer set must be invariant under (1) the thread count,
// (2) a snapshot save/load round trip, (3) the question cache.

#include <gtest/gtest.h>

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "prop/prop_support.h"
#include "qa/ganswer.h"
#include "store/snapshot.h"
#include "test_support.h"

namespace ganswer {
namespace testing {
namespace {

std::vector<std::string> Questions(const MiniWorld& w, size_t limit) {
  std::vector<std::string> qs;
  for (const datagen::GoldQuestion& q : w.workload) {
    qs.push_back(q.text);
    if (qs.size() == limit) break;
  }
  return qs;
}

void ExpectSameResponse(const StatusOr<qa::GAnswer::Response>& a,
                        const StatusOr<qa::GAnswer::Response>& b,
                        const std::string& question) {
  SCOPED_TRACE("question: " + question);
  ASSERT_EQ(a.ok(), b.ok());
  if (!a.ok()) return;
  EXPECT_EQ(a->is_ask, b->is_ask);
  EXPECT_EQ(a->ask_result, b->ask_result);
  ASSERT_EQ(a->answers.size(), b->answers.size());
  for (size_t i = 0; i < a->answers.size(); ++i) {
    EXPECT_EQ(a->answers[i].text, b->answers[i].text) << "answer " << i;
    EXPECT_DOUBLE_EQ(a->answers[i].score, b->answers[i].score)
        << "answer " << i;
  }
  EXPECT_EQ(a->matches.size(), b->matches.size());
}

// One Ask() per question under both configurations, answers compared
// text-for-text and score-for-score.
TEST(PipelinePropertyTest, ThreadCountDoesNotChangeAnswers) {
  ForEachSeed(5000, 3, [](uint64_t seed) {
    std::unique_ptr<MiniWorld> w = BuildMiniWorld(seed);
    qa::GAnswer::Options serial_opt;
    serial_opt.matching.exec.threads = 1;
    qa::GAnswer::Options par_opt;
    par_opt.matching.exec.threads = 4;
    par_opt.exec.threads = 4;
    qa::GAnswer serial(&w->kb.graph, &w->lexicon, w->dict.get(), serial_opt);
    qa::GAnswer parallel(&w->kb.graph, &w->lexicon, w->dict.get(), par_opt);

    std::vector<std::string> qs = Questions(*w, 12);
    std::vector<StatusOr<qa::GAnswer::Response>> batch =
        parallel.BatchAnswer(qs);
    ASSERT_EQ(batch.size(), qs.size());
    for (size_t i = 0; i < qs.size(); ++i) {
      ExpectSameResponse(serial.Ask(qs[i]), batch[i], qs[i]);
    }
  });
}

// A system built from ReadSnapshot(WriteSnapshot(...)) must answer exactly
// like the system built from the original in-memory artifacts.
TEST(PipelinePropertyTest, SnapshotRoundTripDoesNotChangeAnswers) {
  ForEachSeed(5100, 3, [](uint64_t seed) {
    std::unique_ptr<MiniWorld> w = BuildMiniWorld(seed);
    qa::GAnswer direct(&w->kb.graph, &w->lexicon, w->dict.get());

    std::string bytes;
    ASSERT_TRUE(store::WriteSnapshot(w->kb.graph, *w->dict, &bytes).ok());
    auto snap = store::ReadSnapshot(bytes, &w->lexicon);
    ASSERT_TRUE(snap.ok()) << snap.status().ToString();

    qa::GAnswer::Options opt;
    opt.matching.signatures = snap->signatures.get();
    opt.entity_index = snap->entity_index.get();
    opt.snapshot_identity = snap->fingerprint;
    qa::GAnswer loaded(snap->graph.get(), &w->lexicon,
                       snap->dictionary.get(), opt);

    for (const std::string& q : Questions(*w, 10)) {
      ExpectSameResponse(direct.Ask(q), loaded.Ask(q), q);
    }
  });
}

// Same property through the storage tier's other end: a compressed
// container loaded via mmap (compressed sections decode, raw sections view
// the mapping) answers exactly like the direct system.
TEST(PipelinePropertyTest, CompressedMmapSnapshotDoesNotChangeAnswers) {
  ForEachSeed(5150, 3, [](uint64_t seed) {
    std::unique_ptr<MiniWorld> w = BuildMiniWorld(seed);
    qa::GAnswer direct(&w->kb.graph, &w->lexicon, w->dict.get());

    std::string path =
        "prop_snapshot_" + std::to_string(seed) + ".snap";
    ASSERT_TRUE(store::WriteSnapshotFile(w->kb.graph, *w->dict, path,
                                         nullptr, {.compress = true})
                    .ok());
    auto snap = store::ReadSnapshotFile(path, &w->lexicon,
                                        store::SnapshotLoadMode::kMmap);
    ASSERT_TRUE(snap.ok()) << snap.status().ToString();

    qa::GAnswer::Options opt;
    opt.matching.signatures = snap->signatures.get();
    opt.entity_index = snap->entity_index.get();
    opt.snapshot_identity = snap->fingerprint;
    qa::GAnswer loaded(snap->graph.get(), &w->lexicon,
                       snap->dictionary.get(), opt);

    for (const std::string& q : Questions(*w, 10)) {
      ExpectSameResponse(direct.Ask(q), loaded.Ask(q), q);
    }
    std::remove(path.c_str());
  });
}

// Cache hits must serve byte-identical answers: ask twice with the cache on
// (second call is a hit) and compare both against a cache-off system.
TEST(PipelinePropertyTest, QuestionCacheDoesNotChangeAnswers) {
  ForEachSeed(5200, 3, [](uint64_t seed) {
    std::unique_ptr<MiniWorld> w = BuildMiniWorld(seed);
    qa::GAnswer plain(&w->kb.graph, &w->lexicon, w->dict.get());
    qa::GAnswer::Options copt;
    copt.question_cache_capacity = 64;
    qa::GAnswer cached(&w->kb.graph, &w->lexicon, w->dict.get(), copt);

    for (const std::string& q : Questions(*w, 10)) {
      auto want = plain.Ask(q);
      auto miss = cached.Ask(q);
      auto hit = cached.Ask(q);
      ExpectSameResponse(want, miss, q);
      ExpectSameResponse(want, hit, q);
      if (hit.ok()) EXPECT_TRUE(hit->cache_hit) << q;
      if (miss.ok()) EXPECT_FALSE(miss->cache_hit) << q;
    }
    auto stats = cached.cache_stats();
    EXPECT_GT(stats.hits, 0u);
  });
}

}  // namespace
}  // namespace testing
}  // namespace ganswer
