// Structural properties of RdfGraph's CSR against a reference adjacency
// built straight from the raw triple list, plus the N-Triples text
// round-trip. These are the invariants every other component leans on
// (sorted spans, exact triple membership, degree accounting, type closure).

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <map>
#include <span>
#include <set>
#include <sstream>
#include <vector>

#include "prop/prop_support.h"
#include "rdf/ntriples.h"
#include "rdf/rdf_graph.h"
#include "test_support.h"

namespace ganswer {
namespace testing {
namespace {

using rdf::Edge;
using rdf::TermId;

struct RefAdjacency {
  std::set<std::array<TermId, 3>> triples;
  std::map<TermId, std::vector<Edge>> out, in;
};

RefAdjacency BuildReference(const rdf::RdfGraph& g,
                            const std::vector<RawTriple>& raw) {
  RefAdjacency ref;
  for (const RawTriple& t : raw) {
    auto s = g.dict().Lookup(t.s, rdf::TermKind::kIri);
    auto p = g.dict().Lookup(t.p, rdf::TermKind::kIri);
    auto o = g.dict().Lookup(t.o, t.object_kind);
    if (!s || !p || !o) std::abort();
    if (!ref.triples.insert({*s, *p, *o}).second) continue;
    ref.out[*s].push_back({*p, *o});
    ref.in[*o].push_back({*p, *s});
  }
  for (auto* side : {&ref.out, &ref.in}) {
    for (auto& [v, edges] : *side) std::sort(edges.begin(), edges.end());
  }
  return ref;
}

TEST(GraphPropertyTest, CsrMatchesReferenceAdjacency) {
  ForEachSeed(6000, 30, [](uint64_t seed) {
    Rng rng(seed);
    RandomGraphOptions gopts;
    gopts.num_vertices = 5 + rng.Next(12);
    gopts.num_predicates = 1 + rng.Next(4);
    gopts.num_triples = 8 + rng.Next(40);
    gopts.literal_rate = rng.Chance(0.5) ? 0.2 : 0.0;
    gopts.duplicate_rate = 0.2;  // stress Finalize() dedup
    RandomGraphData data = BuildRandomGraph(seed * 5 + 4, gopts);
    RefAdjacency ref = BuildReference(data.graph, data.triples);

    EXPECT_EQ(data.graph.NumTriples(), ref.triples.size());

    size_t max_degree = 0;
    for (TermId v = 0; v < data.graph.NumTerms(); ++v) {
      std::span<const Edge> out = data.graph.OutEdges(v);
      std::span<const Edge> in = data.graph.InEdges(v);
      EXPECT_TRUE(std::is_sorted(out.begin(), out.end()))
          << "OutEdges(" << v << ") not sorted by (predicate, neighbor)";
      EXPECT_TRUE(std::is_sorted(in.begin(), in.end()))
          << "InEdges(" << v << ") not sorted by (predicate, neighbor)";
      std::vector<Edge> got_out(out.begin(), out.end());
      std::vector<Edge> got_in(in.begin(), in.end());
      EXPECT_EQ(got_out, ref.out[v]) << "OutEdges mismatch at v=" << v;
      EXPECT_EQ(got_in, ref.in[v]) << "InEdges mismatch at v=" << v;
      EXPECT_EQ(data.graph.Degree(v), got_out.size() + got_in.size());
      max_degree = std::max(max_degree, data.graph.Degree(v));
    }
    EXPECT_EQ(data.graph.MaxDegree(), max_degree);

    // HasTriple / Objects / Subjects agree with the reference set on both
    // present and absent triples.
    for (const auto& t : ref.triples) {
      EXPECT_TRUE(data.graph.HasTriple(t[0], t[1], t[2]));
      auto objs = data.graph.Objects(t[0], t[1]);
      EXPECT_TRUE(std::find(objs.begin(), objs.end(), t[2]) != objs.end());
      auto subs = data.graph.Subjects(t[1], t[2]);
      EXPECT_TRUE(std::find(subs.begin(), subs.end(), t[0]) != subs.end());
    }
    for (int i = 0; i < 20; ++i) {
      TermId s = rng.Next(data.graph.NumTerms());
      TermId p = rng.Next(data.graph.NumTerms());
      TermId o = rng.Next(data.graph.NumTerms());
      EXPECT_EQ(data.graph.HasTriple(s, p, o),
                ref.triples.count({s, p, o}) > 0);
    }
  });
}

// IsInstanceOf must equal the reflexive-transitive closure computed naively
// over the raw rdf:type / rdfs:subClassOf triples.
TEST(GraphPropertyTest, TypeClosureMatchesNaiveClosure) {
  ForEachSeed(6100, 15, [](uint64_t seed) {
    Rng rng(seed);
    RandomGraphOptions gopts;
    gopts.num_classes = 3;
    gopts.type_rate = 0.6;
    RandomGraphData data = BuildRandomGraph(seed * 3 + 8, gopts);
    // Add a subclass chain and refinalize (Finalize supports rebuilds).
    data.graph.AddTriple("C0", rdf::kSubClassOfPredicate, "C1");
    data.graph.AddTriple("C1", rdf::kSubClassOfPredicate, "C2");
    data.triples.push_back({"C0", std::string(rdf::kSubClassOfPredicate), "C1",
                            rdf::TermKind::kIri});
    data.triples.push_back({"C1", std::string(rdf::kSubClassOfPredicate), "C2",
                            rdf::TermKind::kIri});
    std::sort(data.triples.begin(), data.triples.end());
    ASSERT_TRUE(data.graph.Finalize().ok());

    // Naive closure from raw triples.
    std::map<TermId, std::set<TermId>> direct, subclass;
    TermId type_p = *data.graph.Find(rdf::kTypePredicate);
    TermId sub_p = *data.graph.Find(rdf::kSubClassOfPredicate);
    for (const RawTriple& t : data.triples) {
      auto s = data.graph.dict().Lookup(t.s, rdf::TermKind::kIri);
      auto p = data.graph.dict().Lookup(t.p, rdf::TermKind::kIri);
      auto o = data.graph.dict().Lookup(t.o, t.object_kind);
      if (!s || !p || !o) continue;
      if (*p == type_p) direct[*s].insert(*o);
      if (*p == sub_p) subclass[*s].insert(*o);
    }
    auto closed_instance_of = [&](TermId v, TermId cls) {
      auto it = direct.find(v);
      if (it == direct.end()) return false;
      std::vector<TermId> stack(it->second.begin(), it->second.end());
      std::set<TermId> seen(stack.begin(), stack.end());
      while (!stack.empty()) {
        TermId c = stack.back();
        stack.pop_back();
        if (c == cls) return true;
        auto sit = subclass.find(c);
        if (sit == subclass.end()) continue;
        for (TermId super : sit->second) {
          if (seen.insert(super).second) stack.push_back(super);
        }
      }
      return false;
    };

    for (TermId v = 0; v < data.graph.NumTerms(); ++v) {
      for (int c = 0; c < 3; ++c) {
        auto cls = data.graph.Find("C" + std::to_string(c));
        if (!cls.has_value()) continue;
        EXPECT_EQ(data.graph.IsInstanceOf(v, *cls),
                  closed_instance_of(v, *cls))
            << "v=" << data.graph.dict().text(v) << " cls=C" << c;
      }
    }
  });
}

// Write -> parse -> Finalize must reproduce the exact triple set.
TEST(GraphPropertyTest, NtriplesRoundTripPreservesTriples) {
  ForEachSeed(6200, 15, [](uint64_t seed) {
    Rng rng(seed);
    RandomGraphOptions gopts;
    gopts.num_triples = 10 + rng.Next(30);
    gopts.literal_rate = 0.2;
    RandomGraphData data = BuildRandomGraph(seed * 9 + 6, gopts);

    std::ostringstream text;
    ASSERT_TRUE(rdf::NTriplesWriter::Write(data.graph, &text).ok());
    rdf::RdfGraph reparsed;
    ASSERT_TRUE(rdf::NTriplesReader::ParseString(text.str(), &reparsed).ok());
    ASSERT_TRUE(reparsed.Finalize().ok());

    ASSERT_EQ(reparsed.NumTriples(), data.graph.NumTriples());
    // Every raw triple is present in the reparsed graph (text-keyed, so
    // TermId renumbering cannot hide a mismatch).
    for (const RawTriple& t : data.triples) {
      auto s = reparsed.dict().Lookup(t.s, rdf::TermKind::kIri);
      auto p = reparsed.dict().Lookup(t.p, rdf::TermKind::kIri);
      auto o = reparsed.dict().Lookup(t.o, t.object_kind);
      ASSERT_TRUE(s.has_value() && p.has_value() && o.has_value())
          << t.s << " " << t.p << " " << t.o;
      EXPECT_TRUE(reparsed.HasTriple(*s, *p, *o));
    }
  });
}

}  // namespace
}  // namespace testing
}  // namespace ganswer
