#ifndef GANSWER_TESTS_PROP_PROP_SUPPORT_H_
#define GANSWER_TESTS_PROP_PROP_SUPPORT_H_

// Tiny property-test harness on top of GoogleTest.
//
// A property test calls ForEachSeed(base, count, body): `body(seed)` runs
// for the fixed seeds base, base+1, ..., base+count-1 (so CI is fully
// deterministic), unless the GANSWER_PROP_SEED environment variable is set,
// in which case exactly that one seed runs — that is the replay path.
//
// When a seed fails (any fatal or non-fatal GoogleTest failure inside
// `body`), the harness stops and prints a one-line repro:
//
//   [prop-repro] GANSWER_PROP_SEED=<seed> ./<binary> --gtest_filter=<test>
//
// Re-running the printed command reproduces exactly the failing instance,
// because every generator in tests/test_support.h is a pure function of its
// seed. The nightly CI job exports a fresh GANSWER_PROP_SEED per run to
// widen coverage beyond the fixed ranges.

#include <gtest/gtest.h>

#include <cstdint>
#include <iostream>
#include <string>

#include "test_support.h"

namespace ganswer {
namespace testing {

inline void PrintSeedRepro(uint64_t seed) {
  const ::testing::TestInfo* info =
      ::testing::UnitTest::GetInstance()->current_test_info();
  std::string filter = info == nullptr
                           ? "<test>"
                           : std::string(info->test_suite_name()) + "." +
                                 info->name();
  std::cerr << "[prop-repro] GANSWER_PROP_SEED=" << seed
            << " ctest/--gtest_filter=" << filter << std::endl;
}

template <typename Fn>
void ForEachSeed(uint64_t base, size_t count, Fn&& body) {
  if (std::optional<uint64_t> over = PropSeedOverride()) {
    SCOPED_TRACE("GANSWER_PROP_SEED=" + std::to_string(*over));
    body(*over);
    if (::testing::Test::HasFailure()) PrintSeedRepro(*over);
    return;
  }
  for (size_t i = 0; i < count; ++i) {
    uint64_t seed = base + i;
    {
      SCOPED_TRACE("seed=" + std::to_string(seed));
      body(seed);
    }
    if (::testing::Test::HasFailure()) {
      PrintSeedRepro(seed);
      return;  // stop at the first failing seed; one repro line, small logs
    }
  }
}

}  // namespace testing
}  // namespace ganswer

#endif  // GANSWER_TESTS_PROP_PROP_SUPPORT_H_
