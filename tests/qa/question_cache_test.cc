#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "qa/ganswer.h"
#include "test_support.h"

namespace ganswer {
namespace qa {
namespace {

std::vector<std::string> AnswerTexts(const GAnswer::Response& r) {
  std::vector<std::string> out;
  for (const auto& a : r.answers) out.push_back(a.text);
  return out;
}

GAnswer::Options CachedOptions(size_t capacity, uint64_t identity = 7) {
  GAnswer::Options opt;
  opt.question_cache_capacity = capacity;
  opt.question_cache_shards = 1;  // deterministic eviction for the tests
  opt.snapshot_identity = identity;
  return opt;
}

TEST(QuestionCacheTest, HitServesWithoutUnderstandingOrMatching) {
  const auto& world = ganswer::testing::World();
  GAnswer system(&world.kb.graph, &world.lexicon, world.verified.get(),
                 CachedOptions(16));
  const std::string q = "Who is the mayor of Berlin ?";

  auto first = system.Ask(q);
  ASSERT_TRUE(first.ok());
  EXPECT_FALSE(first->cache_hit);
  EXPECT_GT(first->TotalMs(), 0.0);

  auto second = system.Ask(q);
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE(second->cache_hit);
  // Neither stage ran: the stage timers are zeroed on a hit.
  EXPECT_EQ(second->understanding_ms, 0.0);
  EXPECT_EQ(second->evaluation_ms, 0.0);
  EXPECT_EQ(AnswerTexts(*second), AnswerTexts(*first));

  auto stats = system.cache_stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.entries, 1u);
}

TEST(QuestionCacheTest, NormalizedKeySharesEntries) {
  const auto& world = ganswer::testing::World();
  GAnswer system(&world.kb.graph, &world.lexicon, world.verified.get(),
                 CachedOptions(16));
  auto first = system.Ask("Who is the mayor of Berlin ?");
  ASSERT_TRUE(first.ok());
  // Case and whitespace differences hit the same entry.
  auto second = system.Ask("  who  IS the MAYOR of Berlin ?  ");
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE(second->cache_hit);
  EXPECT_EQ(AnswerTexts(*second), AnswerTexts(*first));
  EXPECT_EQ(system.CacheKey("A  b\tC"), system.CacheKey("a b c"));
  EXPECT_NE(system.CacheKey("a b c"), system.CacheKey("a bc"));
}

TEST(QuestionCacheTest, SnapshotIdentityPartitionsKeys) {
  const auto& world = ganswer::testing::World();
  GAnswer a(&world.kb.graph, &world.lexicon, world.verified.get(),
            CachedOptions(16, /*identity=*/1));
  GAnswer b(&world.kb.graph, &world.lexicon, world.verified.get(),
            CachedOptions(16, /*identity=*/2));
  // Entries cached under one snapshot identity can never serve another.
  EXPECT_NE(a.CacheKey("who is x ?"), b.CacheKey("who is x ?"));
}

TEST(QuestionCacheTest, EvictionDropsLeastRecentQuestion) {
  const auto& world = ganswer::testing::World();
  GAnswer system(&world.kb.graph, &world.lexicon, world.verified.get(),
                 CachedOptions(2));
  ASSERT_TRUE(system.Ask("Who is the mayor of Berlin ?").ok());
  ASSERT_TRUE(system.Ask("What is the capital of Canada ?").ok());
  // Capacity 2: a third distinct question evicts the Berlin entry.
  ASSERT_TRUE(system.Ask("Who developed Minecraft ?").ok());
  auto again = system.Ask("Who is the mayor of Berlin ?");
  ASSERT_TRUE(again.ok());
  EXPECT_FALSE(again->cache_hit);
  EXPECT_GE(system.cache_stats().evictions, 1u);
}

TEST(QuestionCacheTest, InvalidateCacheForcesRecompute) {
  const auto& world = ganswer::testing::World();
  GAnswer system(&world.kb.graph, &world.lexicon, world.verified.get(),
                 CachedOptions(16));
  const std::string q = "What is the capital of Canada ?";
  ASSERT_TRUE(system.Ask(q).ok());
  system.InvalidateCache();
  auto after = system.Ask(q);
  ASSERT_TRUE(after.ok());
  EXPECT_FALSE(after->cache_hit);
  EXPECT_EQ(system.cache_stats().entries, 1u);
}

TEST(QuestionCacheTest, DisabledByDefault) {
  const auto& world = ganswer::testing::World();
  GAnswer system(&world.kb.graph, &world.lexicon, world.verified.get());
  const std::string q = "Who developed Minecraft ?";
  ASSERT_TRUE(system.Ask(q).ok());
  auto second = system.Ask(q);
  ASSERT_TRUE(second.ok());
  EXPECT_FALSE(second->cache_hit);
  auto stats = system.cache_stats();
  EXPECT_EQ(stats.hits, 0u);
  EXPECT_EQ(stats.misses, 0u);
}

TEST(QuestionCacheTest, BatchAnswerCountsRepeatsAsHits) {
  const auto& world = ganswer::testing::World();
  GAnswer::Options opt = CachedOptions(16);
  // Serial batch: every repeat after the first answer must be a hit (there
  // is no miss coalescing, so a parallel batch could miss more than once).
  opt.exec.threads = 1;
  GAnswer system(&world.kb.graph, &world.lexicon, world.verified.get(), opt);
  std::vector<std::string> questions;
  for (int i = 0; i < 6; ++i) {
    questions.push_back("Who is the mayor of Berlin ?");
  }
  auto results = system.BatchAnswer(questions);
  ASSERT_EQ(results.size(), questions.size());
  for (const auto& r : results) ASSERT_TRUE(r.ok());
  auto stats = system.cache_stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, questions.size() - 1);
}

}  // namespace
}  // namespace qa
}  // namespace ganswer
