#include "qa/argument_finder.h"

#include <gtest/gtest.h>

#include "nlp/dependency_parser.h"
#include "qa/relation_extractor.h"

namespace ganswer {
namespace qa {
namespace {

class ArgumentFinderTest : public ::testing::Test {
 protected:
  ArgumentFinderTest() : dict_(&lexicon_), parser_(lexicon_) {
    for (const char* p :
         {"be married to", "play in", "star in", "mayor of", "be born in",
          "die in", "members of", "be directed by", "direct", "tall", "creator of",
          "come from", "children of"}) {
      dict_.AddPhrase(p, {});
    }
  }

  // Extracts the relation for the given phrase and finds its arguments.
  SemanticRelation Extract(const std::string& question,
                           const std::string& phrase,
                           ArgumentFinder::Options opt = {}) {
    auto tree = parser_.Parse(question);
    EXPECT_TRUE(tree.ok());
    tree_ = std::move(tree).value();
    RelationExtractor extractor(&dict_);
    for (const Embedding& e : extractor.FindEmbeddings(tree_)) {
      if (e.phrase != kNoPhrase && dict_.PhraseText(e.phrase) == phrase) {
        SemanticRelation rel;
        rel.phrase = e.phrase;
        rel.embedding = e;
        found_ = ArgumentFinder(opt).FindArguments(tree_, &rel);
        return rel;
      }
    }
    ADD_FAILURE() << "phrase not embedded: " << phrase;
    return {};
  }

  nlp::Lexicon lexicon_;
  paraphrase::ParaphraseDictionary dict_;
  nlp::DependencyParser parser_;
  nlp::DependencyTree tree_;
  bool found_ = false;
};

TEST_F(ArgumentFinderTest, SubjectAndPrepositionObject) {
  SemanticRelation rel = Extract(
      "Who was married to an actor that played in Philadelphia ?",
      "be married to");
  ASSERT_TRUE(found_);
  EXPECT_EQ(rel.arg1_text, "Who");
  EXPECT_EQ(rel.arg2_text, "actor");
}

TEST_F(ArgumentFinderTest, RelativeClauseSubject) {
  SemanticRelation rel = Extract(
      "Who was married to an actor that played in Philadelphia ?", "play in");
  ASSERT_TRUE(found_);
  EXPECT_EQ(rel.arg1_text, "that");
  EXPECT_EQ(rel.arg2_text, "Philadelphia");
}

TEST_F(ArgumentFinderTest, CopularNounPhrase) {
  SemanticRelation rel = Extract("Who is the mayor of Berlin ?", "mayor of");
  ASSERT_TRUE(found_);
  EXPECT_EQ(rel.arg1_text, "Who");
  EXPECT_EQ(rel.arg2_text, "Berlin");
}

TEST_F(ArgumentFinderTest, Rule2PartmodGovernorBecomesArgument) {
  // The reduced relative has no "be", so the embedded phrase is "direct";
  // Rule 1 extends over the light "by" for arg2, Rule 2 supplies the
  // modified NP as arg1.
  SemanticRelation rel = Extract(
      "Give me all movies directed by Francis Ford Coppola .", "direct");
  ASSERT_TRUE(found_);
  EXPECT_EQ(rel.arg1_text, "movies") << "the modified NP (Rule 2)";
  EXPECT_EQ(rel.arg2_text, "Francis Ford Coppola");
}

TEST_F(ArgumentFinderTest, Rule2RootAsAnswerVariable) {
  SemanticRelation rel =
      Extract("Give me all members of Prodigy ?", "members of");
  ASSERT_TRUE(found_);
  EXPECT_EQ(rel.arg1_text, "members")
      << "the head noun doubles as the answer argument";
  EXPECT_EQ(rel.arg2_text, "Prodigy");
}

TEST_F(ArgumentFinderTest, Rule3ConjoinedVerbInheritsSubject) {
  SemanticRelation rel = Extract(
      "Give me all people that were born in Vienna and died in Berlin ?",
      "die in");
  ASSERT_TRUE(found_);
  EXPECT_EQ(rel.arg1_text, "that") << "inherited from the parent verb";
  EXPECT_EQ(rel.arg2_text, "Berlin");
}

TEST_F(ArgumentFinderTest, Rule4WhFallbackForAdjectivePredicate) {
  SemanticRelation rel = Extract("How tall is Michael Jordan ?", "tall");
  ASSERT_TRUE(found_);
  EXPECT_EQ(rel.arg1_text, "Michael Jordan");
  EXPECT_EQ(rel.arg2_text, "How") << "nearest wh-word (Rule 4)";
}

TEST_F(ArgumentFinderTest, SharedVertexAcrossRelations) {
  // "creator of Miffy" and "come from" share the 'creator' argument.
  SemanticRelation creator = Extract(
      "Which country does the creator of Miffy come from ?", "creator of");
  ASSERT_TRUE(found_);
  EXPECT_EQ(creator.arg1_text, "creator");
  EXPECT_EQ(creator.arg2_text, "Miffy");
  SemanticRelation come = Extract(
      "Which country does the creator of Miffy come from ?", "come from");
  ASSERT_TRUE(found_);
  EXPECT_EQ(come.arg1_text, "creator");
  EXPECT_EQ(come.arg2_text, "country");
  EXPECT_EQ(come.arg1_node, creator.arg1_node);
}

TEST_F(ArgumentFinderTest, RulesDisabledLosesRecoverableArguments) {
  ArgumentFinder::Options off;
  off.rule1_extend_light_words = false;
  off.rule2_root_parent = false;
  off.rule3_parent_subject = false;
  off.rule4_wh_fallback = false;
  // Rule 1/2 case: without the rules the partmod relation has neither
  // argument.
  auto tree = parser_.Parse("Give me all movies directed by Coppola .");
  ASSERT_TRUE(tree.ok());
  RelationExtractor extractor(&dict_);
  auto embeddings = extractor.FindEmbeddings(*tree);
  ASSERT_FALSE(embeddings.empty());
  SemanticRelation rel;
  rel.phrase = embeddings[0].phrase;
  rel.embedding = embeddings[0];
  EXPECT_FALSE(ArgumentFinder(off).FindArguments(*tree, &rel))
      << "the paper discards relations with missing arguments";
  EXPECT_TRUE(ArgumentFinder().FindArguments(*tree, &rel));
}

TEST_F(ArgumentFinderTest, MultiWordArgumentPhrases) {
  SemanticRelation rel = Extract(
      "Give me all movies directed by Francis Ford Coppola .", "direct");
  ASSERT_TRUE(found_);
  EXPECT_EQ(rel.arg2_text, "Francis Ford Coppola")
      << "nn-compounds joined in sentence order";
}

TEST_F(ArgumentFinderTest, DefaultPrepArgumentsAreParentAndPobj) {
  auto tree = parser_.Parse("Give me all companies in Munich .");
  ASSERT_TRUE(tree.ok());
  RelationExtractor extractor(&dict_);
  auto defaults = extractor.FindDefaultPrepEmbeddings(
      *tree, extractor.FindEmbeddings(*tree));
  ASSERT_EQ(defaults.size(), 1u);
  SemanticRelation rel;
  rel.phrase = kNoPhrase;
  rel.embedding = defaults[0];
  ASSERT_TRUE(ArgumentFinder().FindArguments(*tree, &rel));
  EXPECT_EQ(rel.arg1_text, "companies");
  EXPECT_EQ(rel.arg2_text, "Munich");
}

}  // namespace
}  // namespace qa
}  // namespace ganswer
