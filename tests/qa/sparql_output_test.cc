#include "qa/sparql_output.h"

#include <gtest/gtest.h>

#include <set>

#include "qa/ganswer.h"
#include "rdf/sparql_engine.h"
#include "test_support.h"

namespace ganswer {
namespace qa {
namespace {

class SparqlOutputTest : public ::testing::Test {
 protected:
  SparqlOutputTest()
      : world_(ganswer::testing::World()),
        system_(&world_.kb.graph, &world_.lexicon, world_.verified.get()),
        engine_(world_.kb.graph) {}

  GAnswer::Response Ask(const std::string& q) {
    auto r = system_.Ask(q);
    EXPECT_TRUE(r.ok());
    return std::move(r).value();
  }

  const ganswer::testing::SharedWorld& world_;
  GAnswer system_;
  rdf::SparqlEngine engine_;
};

TEST_F(SparqlOutputTest, RunningExampleLowersToThePaperQuery) {
  auto r = Ask("Who was married to an actor that played in Philadelphia ?");
  ASSERT_FALSE(r.matches.empty());
  auto q = SparqlOutput::MatchToSparql(r.understanding.sqg, r.matches[0],
                                       world_.kb.graph);
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  std::string text = q->ToString();
  EXPECT_NE(text.find("<spouse>"), std::string::npos) << text;
  EXPECT_NE(text.find("<starring>"), std::string::npos) << text;
  EXPECT_NE(text.find("<Philadelphia_(film)>"), std::string::npos)
      << "the disambiguated entity is frozen into the query: " << text;
}

TEST_F(SparqlOutputTest, GeneratedQueryEvaluatesToTheMatchAnswer) {
  for (const char* question :
       {"Who was married to an actor that played in Philadelphia ?",
        "Who is the mayor of Berlin ?",
        "Which movies did Antonio Banderas star in ?",
        "Who is the uncle of John F. Kennedy Jr. ?"}) {
    auto r = Ask(question);
    ASSERT_FALSE(r.matches.empty()) << question;
    const auto& sqg = r.understanding.sqg;
    auto q = SparqlOutput::MatchToSparql(sqg, r.matches[0], world_.kb.graph);
    ASSERT_TRUE(q.ok()) << question << ": " << q.status().ToString();
    auto result = engine_.Execute(*q);
    ASSERT_TRUE(result.ok()) << q->ToString();
    // The match's target binding appears among the query's results.
    rdf::TermId expected = r.matches[0].assignment[sqg.target_vertex];
    bool found = false;
    for (const auto& row : result->rows) {
      if (!row.empty() && row[0] == expected) found = true;
    }
    EXPECT_TRUE(found) << question << "\n" << q->ToString();
  }
}

TEST_F(SparqlOutputTest, ClassMatchedTargetGetsTypePattern) {
  auto r = Ask("Which movies did Antonio Banderas star in ?");
  ASSERT_FALSE(r.matches.empty());
  auto q = SparqlOutput::MatchToSparql(r.understanding.sqg, r.matches[0],
                                       world_.kb.graph);
  ASSERT_TRUE(q.ok());
  EXPECT_NE(q->ToString().find("rdf:type"), std::string::npos)
      << q->ToString();
}

TEST_F(SparqlOutputTest, PredicatePathLowersToChain) {
  auto r = Ask("Who is the uncle of John F. Kennedy Jr. ?");
  ASSERT_FALSE(r.matches.empty());
  auto q = SparqlOutput::MatchToSparql(r.understanding.sqg, r.matches[0],
                                       world_.kb.graph);
  ASSERT_TRUE(q.ok());
  EXPECT_GE(q->patterns.size(), 3u) << "length-3 path chains three patterns: "
                                    << q->ToString();
}

TEST_F(SparqlOutputTest, TopKQueriesDeduplicates) {
  auto r = Ask("Give me all movies directed by Francis Ford Coppola .");
  ASSERT_GE(r.matches.size(), 2u);
  auto queries = SparqlOutput::TopKQueries(r.understanding.sqg, r.matches,
                                           world_.kb.graph, 10);
  // All three film matches differ only in the target binding, so they
  // lower to ONE query.
  ASSERT_FALSE(queries.empty());
  std::set<std::string> texts;
  for (const auto& q : queries) texts.insert(q.ToString());
  EXPECT_EQ(texts.size(), queries.size());
  EXPECT_LT(queries.size(), r.matches.size());
}

TEST_F(SparqlOutputTest, SizeMismatchRejected) {
  auto r = Ask("Who is the mayor of Berlin ?");
  match::Match bogus;
  bogus.assignment = {0};
  auto q = SparqlOutput::MatchToSparql(r.understanding.sqg, bogus,
                                       world_.kb.graph);
  if (r.understanding.sqg.vertices.size() != 1) {
    EXPECT_FALSE(q.ok());
  }
}

}  // namespace
}  // namespace qa
}  // namespace ganswer
