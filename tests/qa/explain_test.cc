#include "qa/explain.h"

#include <gtest/gtest.h>

#include <sstream>
#include <vector>

#include "qa/ganswer.h"
#include "qa/sparql_output.h"
#include "test_support.h"

namespace ganswer {
namespace qa {
namespace {

class ExplainTest : public ::testing::Test {
 protected:
  ExplainTest()
      : world_(ganswer::testing::World()),
        system_(&world_.kb.graph, &world_.lexicon, world_.verified.get()),
        explainer_(&world_.kb.graph) {}

  std::string ExplainTop(const std::string& q) {
    auto r = system_.Ask(q);
    EXPECT_TRUE(r.ok());
    EXPECT_FALSE(r->matches.empty()) << q;
    auto text = explainer_.Explain(r->understanding.sqg, r->matches[0]);
    EXPECT_TRUE(text.ok()) << text.status().ToString();
    return text.ok() ? *text : "";
  }

  const ganswer::testing::SharedWorld& world_;
  GAnswer system_;
  AnswerExplainer explainer_;
};

TEST_F(ExplainTest, RunningExampleWitness) {
  std::string text =
      ExplainTop("Who was married to an actor that played in Philadelphia ?");
  EXPECT_NE(text.find("\"Who\" = <Melanie_Griffith>"), std::string::npos)
      << text;
  EXPECT_NE(text.find("[answer]"), std::string::npos);
  EXPECT_NE(text.find("--spouse-->"), std::string::npos) << text;
  EXPECT_NE(text.find("--starring-->"), std::string::npos) << text;
  EXPECT_NE(text.find("rdf:type <Actor>"), std::string::npos) << text;
}

TEST_F(ExplainTest, PredicatePathWitnessShowsIntermediates) {
  std::string text = ExplainTop("Who is the uncle of John F. Kennedy Jr. ?");
  // The length-3 hasChild path must show the concrete chain through the
  // grandparent and the parent.
  EXPECT_NE(text.find("<Joseph_P._Kennedy> --hasChild--> <Ted_Kennedy>"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("<John_F._Kennedy> --hasChild--> <John_F._Kennedy_Jr.>"),
            std::string::npos)
      << text;
}

TEST_F(ExplainTest, EveryWitnessTripleIsInTheGraph) {
  // Property: each "--pred-->" line names a real triple.
  for (const char* q :
       {"Who is the mayor of Berlin ?",
        "Which movies did Antonio Banderas star in ?",
        "Which country does the creator of Miffy come from ?"}) {
    std::string text = ExplainTop(q);
    std::istringstream lines(text);
    std::string line;
    size_t checked = 0;
    while (std::getline(lines, line)) {
      size_t arrow = line.find("--");
      if (arrow == std::string::npos || line.find("-->") == std::string::npos) {
        continue;
      }
      size_t s0 = line.find('<');
      size_t s1 = line.find('>', s0);
      std::string subj = line.substr(s0 + 1, s1 - s0 - 1);
      size_t p0 = line.find("--", s1) + 2;
      size_t p1 = line.find("-->", p0);
      std::string pred = line.substr(p0, p1 - p0);
      size_t o0 = line.find('<', p1);
      size_t o1 = line.find('>', o0);
      std::string obj = line.substr(o0 + 1, o1 - o0 - 1);
      auto si = world_.kb.graph.Find(subj);
      auto pi = world_.kb.graph.Find(pred);
      auto oi = world_.kb.graph.Find(obj);
      ASSERT_TRUE(si && pi && oi) << line;
      EXPECT_TRUE(world_.kb.graph.HasTriple(*si, *pi, *oi)) << line;
      ++checked;
    }
    EXPECT_GT(checked, 0u) << q;
  }
}

TEST_F(ExplainTest, SizeMismatchRejected) {
  auto r = system_.Ask("Who is the mayor of Berlin ?");
  ASSERT_TRUE(r.ok());
  match::Match bogus;
  bogus.assignment = {0, 1, 2, 3, 4, 5, 6};
  EXPECT_FALSE(explainer_.Explain(r->understanding.sqg, bogus).ok());
}

TEST_F(ExplainTest, QueryPlansRenderPerInterpretation) {
  auto r = system_.Ask(
      "Who was married to an actor that played in Philadelphia ?");
  ASSERT_TRUE(r.ok());
  ASSERT_FALSE(r->matches.empty());
  std::vector<rdf::SparqlQuery> queries = SparqlOutput::TopKQueries(
      r->understanding.sqg, r->matches, world_.kb.graph, 3);
  ASSERT_FALSE(queries.empty());

  rdf::SparqlEngine engine(world_.kb.graph);
  auto text = ExplainQueryPlans(engine, queries);
  ASSERT_TRUE(text.ok()) << text.status().ToString();
  EXPECT_NE(text->find("-- interpretation 1 of "), std::string::npos) << *text;
  EXPECT_NE(text->find("cost-based join order"), std::string::npos) << *text;
  EXPECT_NE(text->find("rows via"), std::string::npos) << *text;

  // The naive engine renders the same queries under its own header.
  rdf::SparqlEngine::Options naive_options;
  naive_options.use_planner = false;
  rdf::SparqlEngine naive(world_.kb.graph, naive_options);
  auto naive_text = ExplainQueryPlans(naive, queries);
  ASSERT_TRUE(naive_text.ok());
  EXPECT_NE(naive_text->find("naive textual order"), std::string::npos);
}

}  // namespace
}  // namespace qa
}  // namespace ganswer
