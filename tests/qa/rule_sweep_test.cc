#include <gtest/gtest.h>

#include "qa/ganswer.h"
#include "test_support.h"

namespace ganswer {
namespace qa {
namespace {

// Table 9, at rule granularity: disabling any single heuristic rule must
// never IMPROVE the number of questions whose arguments are found, and
// disabling all of them must hurt. Parameterized over which rule is off.
class RuleSweepTest : public ::testing::TestWithParam<int> {
 public:
  static size_t QuestionsWithRelations(const ArgumentFinder::Options& rules) {
    const auto& world = ganswer::testing::World();
    GAnswer::Options opt;
    opt.understanding.argument_options = rules;
    GAnswer system(&world.kb.graph, &world.lexicon, world.verified.get(),
                   opt);
    size_t found = 0;
    for (const auto& q : world.workload) {
      auto r = system.Ask(q.text);
      if (r.ok() && !r->understanding.relations.empty()) ++found;
    }
    return found;
  }
};

TEST_P(RuleSweepTest, DisablingOneRuleNeverHelps) {
  ArgumentFinder::Options all_on;
  size_t baseline = QuestionsWithRelations(all_on);

  ArgumentFinder::Options one_off;
  switch (GetParam()) {
    case 1:
      one_off.rule1_extend_light_words = false;
      break;
    case 2:
      one_off.rule2_root_parent = false;
      break;
    case 3:
      one_off.rule3_parent_subject = false;
      break;
    case 4:
      one_off.rule4_wh_fallback = false;
      break;
  }
  EXPECT_LE(QuestionsWithRelations(one_off), baseline)
      << "rule " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Rules, RuleSweepTest, ::testing::Values(1, 2, 3, 4));

TEST(RuleSweepAllOffTest, AllRulesOffHurtsMaterially) {
  ArgumentFinder::Options all_on;
  ArgumentFinder::Options all_off;
  all_off.rule1_extend_light_words = false;
  all_off.rule2_root_parent = false;
  all_off.rule3_parent_subject = false;
  all_off.rule4_wh_fallback = false;
  size_t with = RuleSweepTest::QuestionsWithRelations(all_on);
  size_t without = RuleSweepTest::QuestionsWithRelations(all_off);
  EXPECT_GT(with, without + 5) << with << " vs " << without;
}

}  // namespace
}  // namespace qa
}  // namespace ganswer
