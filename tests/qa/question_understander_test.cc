#include "qa/question_understander.h"

#include <gtest/gtest.h>

#include "test_support.h"

namespace ganswer {
namespace qa {
namespace {

class QuestionUnderstanderTest : public ::testing::Test {
 protected:
  QuestionUnderstanderTest()
      : world_(ganswer::testing::World()),
        parser_(world_.lexicon),
        index_(world_.kb.graph),
        linker_(&index_),
        understander_(&parser_, world_.verified.get(), &linker_) {}

  QuestionUnderstander::Result Understand(const std::string& q) {
    auto r = understander_.Understand(q);
    EXPECT_TRUE(r.ok()) << q << ": " << r.status().ToString();
    return std::move(r).value();
  }

  const ganswer::testing::SharedWorld& world_;
  nlp::DependencyParser parser_;
  linking::EntityIndex index_;
  linking::EntityLinker linker_;
  QuestionUnderstander understander_;
};

TEST_F(QuestionUnderstanderTest, RunningExampleBuildsFigure2QueryGraph) {
  auto r = Understand(
      "Who was married to an actor that played in Philadelphia ?");
  const SemanticQueryGraph& sqg = r.sqg;
  ASSERT_EQ(sqg.vertices.size(), 3u) << sqg.ToString();
  ASSERT_EQ(sqg.edges.size(), 2u) << sqg.ToString();
  // The two edges share the 'actor' vertex through coreference.
  int shared = -1;
  for (size_t i = 0; i < sqg.vertices.size(); ++i) {
    auto incident = sqg.IncidentEdges(static_cast<int>(i));
    if (incident.size() == 2) shared = static_cast<int>(i);
  }
  ASSERT_GE(shared, 0) << "coreference must merge 'that' into 'actor'";
  EXPECT_EQ(sqg.vertices[shared].text, "actor");
  // Target is the wh vertex.
  ASSERT_GE(sqg.target_vertex, 0);
  EXPECT_TRUE(sqg.vertices[sqg.target_vertex].is_wh);
  EXPECT_EQ(sqg.form, SemanticQueryGraph::QuestionForm::kSelect);
}

TEST_F(QuestionUnderstanderTest, AmbiguityIsPreservedNotResolved) {
  auto r = Understand(
      "Who was married to an actor that played in Philadelphia ?");
  const SemanticQueryGraph& sqg = r.sqg;
  // The Philadelphia vertex must still carry multiple candidates.
  int phila = -1;
  for (size_t i = 0; i < sqg.vertices.size(); ++i) {
    if (sqg.vertices[i].text == "Philadelphia") phila = static_cast<int>(i);
  }
  ASSERT_GE(phila, 0);
  EXPECT_GE(sqg.vertices[phila].candidates.size(), 3u)
      << "city, film and team all stay candidates at this stage";
}

TEST_F(QuestionUnderstanderTest, WhDeterminerVertexIsTargetWithClass) {
  auto r = Understand("Which movies did Antonio Banderas star in ?");
  const SemanticQueryGraph& sqg = r.sqg;
  ASSERT_GE(sqg.target_vertex, 0);
  const SqgVertex& target = sqg.vertices[sqg.target_vertex];
  EXPECT_EQ(target.text, "movies");
  EXPECT_FALSE(target.is_wh);
  EXPECT_TRUE(target.is_wh_target);
  bool has_film_class = false;
  for (const auto& c : target.candidates) {
    if (c.is_class) has_film_class = true;
  }
  EXPECT_TRUE(has_film_class) << "class constraint survives targeting";
}

TEST_F(QuestionUnderstanderTest, AskFormDetected) {
  auto r = Understand("Is Michelle Obama the wife of Barack Obama ?");
  EXPECT_EQ(r.sqg.form, SemanticQueryGraph::QuestionForm::kAsk);
  EXPECT_EQ(r.sqg.target_vertex, -1);
}

TEST_F(QuestionUnderstanderTest, ImperativeTargetsTheObject) {
  auto r = Understand("Give me all members of Prodigy ?");
  ASSERT_GE(r.sqg.target_vertex, 0);
  EXPECT_EQ(r.sqg.vertices[r.sqg.target_vertex].text, "members");
}

TEST_F(QuestionUnderstanderTest, WildcardEdgesForDefaultPrepositions) {
  auto r = Understand("Give me all companies in Munich .");
  ASSERT_EQ(r.sqg.edges.size(), 1u);
  EXPECT_TRUE(r.sqg.edges[0].wildcard);
}

TEST_F(QuestionUnderstanderTest, EdgeCandidatesComeFromDictionary) {
  auto r = Understand("Who is the mayor of Berlin ?");
  ASSERT_EQ(r.sqg.edges.size(), 1u);
  const SqgEdge& e = r.sqg.edges[0];
  ASSERT_FALSE(e.candidates.empty());
  EXPECT_EQ(e.candidates[0].path.ToString(world_.kb.graph.dict()),
            "<-mayor");
}

TEST_F(QuestionUnderstanderTest, UnlinkableVertexBecomesWildcard) {
  auto r = Understand("Who is the mayor of Zxqvutopia ?");
  bool any_wildcard = false;
  for (const SqgVertex& v : r.sqg.vertices) {
    if (v.text == "Zxqvutopia") {
      EXPECT_TRUE(v.wildcard);
      any_wildcard = true;
    }
  }
  EXPECT_TRUE(any_wildcard);
}

TEST_F(QuestionUnderstanderTest, NoRelationFallbackSingleVertex) {
  auto r = Understand("Give me all politicians .");
  EXPECT_TRUE(r.sqg.edges.empty());
  ASSERT_EQ(r.sqg.vertices.size(), 1u);
  bool has_class = false;
  for (const auto& c : r.sqg.vertices[0].candidates) {
    has_class |= c.is_class;
  }
  EXPECT_TRUE(has_class);
}

TEST_F(QuestionUnderstanderTest, TimingsArePopulated) {
  auto r = Understand("Who is the mayor of Berlin ?");
  EXPECT_GE(r.timings.TotalMs(), 0.0);
  EXPECT_GE(r.timings.parse_ms, 0.0);
}

TEST_F(QuestionUnderstanderTest, QuestionUnderstandingIsFast) {
  // The paper's claim: question understanding stays under 100 ms.
  auto r = Understand(
      "Who was married to an actor that played in Philadelphia ?");
  EXPECT_LT(r.timings.TotalMs(), 100.0);
}

}  // namespace
}  // namespace qa
}  // namespace ganswer
