#include "qa/relation_extractor.h"

#include <gtest/gtest.h>

#include "nlp/dependency_parser.h"

namespace ganswer {
namespace qa {
namespace {

class RelationExtractorTest : public ::testing::Test {
 protected:
  RelationExtractorTest() : dict_(&lexicon_), parser_(lexicon_) {
    dict_.AddPhrase("be married to", {});
    dict_.AddPhrase("play in", {});
    dict_.AddPhrase("star in", {});
    dict_.AddPhrase("mayor of", {});
    dict_.AddPhrase("be born in", {});
    dict_.AddPhrase("die in", {});
    dict_.AddPhrase("marry", {});  // strict sub-phrase of "be married to"
  }

  nlp::DependencyTree Parse(const std::string& q) {
    auto tree = parser_.Parse(q);
    EXPECT_TRUE(tree.ok()) << tree.status().ToString();
    return std::move(tree).value();
  }

  std::string PhraseOf(const Embedding& e) {
    return e.phrase == kNoPhrase ? "<none>" : dict_.PhraseText(e.phrase);
  }

  nlp::Lexicon lexicon_;
  paraphrase::ParaphraseDictionary dict_;
  nlp::DependencyParser parser_;
};

TEST_F(RelationExtractorTest, FindsBothRelationsOfRunningExample) {
  nlp::DependencyTree tree =
      Parse("Who was married to an actor that played in Philadelphia ?");
  RelationExtractor extractor(&dict_);
  auto embeddings = extractor.FindEmbeddings(tree);
  ASSERT_EQ(embeddings.size(), 2u);
  std::set<std::string> phrases;
  for (const auto& e : embeddings) phrases.insert(PhraseOf(e));
  EXPECT_TRUE(phrases.count("be married to"));
  EXPECT_TRUE(phrases.count("play in"));
}

TEST_F(RelationExtractorTest, MaximalityPrefersLongerPhrase) {
  // "marry" is also in the dictionary; Def. 5 condition 2 keeps only the
  // maximal "be married to" embedding.
  nlp::DependencyTree tree = Parse("Who was married to Amanda Palmer ?");
  RelationExtractor extractor(&dict_);
  auto embeddings = extractor.FindEmbeddings(tree);
  ASSERT_EQ(embeddings.size(), 1u);
  EXPECT_EQ(PhraseOf(embeddings[0]), "be married to");
  EXPECT_EQ(embeddings[0].nodes.size(), 3u) << "was + married + to";
}

TEST_F(RelationExtractorTest, EmbeddingIsConnectedSubtree) {
  nlp::DependencyTree tree =
      Parse("Who was married to an actor that played in Philadelphia ?");
  RelationExtractor extractor(&dict_);
  for (const auto& e : extractor.FindEmbeddings(tree)) {
    for (int n : e.nodes) {
      if (n == e.root) continue;
      EXPECT_TRUE(tree.IsDescendant(n, e.root))
          << "embedding nodes hang under the embedding root";
      // Walking up from n stays inside the embedding until the root.
      int cur = tree.node(n).parent;
      while (cur != e.root && cur >= 0) {
        EXPECT_TRUE(e.Contains(cur));
        cur = tree.node(cur).parent;
      }
    }
  }
}

TEST_F(RelationExtractorTest, FrontedPrepositionStillEmbeds) {
  nlp::DependencyTree tree =
      Parse("In which movies did Antonio Banderas star ?");
  RelationExtractor extractor(&dict_);
  auto embeddings = extractor.FindEmbeddings(tree);
  ASSERT_EQ(embeddings.size(), 1u);
  EXPECT_EQ(PhraseOf(embeddings[0]), "star in");
}

TEST_F(RelationExtractorTest, NoPhraseNoEmbedding) {
  nlp::DependencyTree tree = Parse("Who quarreled with Edison ?");
  RelationExtractor extractor(&dict_);
  EXPECT_TRUE(extractor.FindEmbeddings(tree).empty());
}

TEST_F(RelationExtractorTest, OverlapResolutionIsNodeDisjoint) {
  nlp::DependencyTree tree =
      Parse("Give me all people that were born in Vienna and died in Berlin ?");
  RelationExtractor extractor(&dict_);
  auto embeddings = extractor.FindEmbeddings(tree);
  ASSERT_EQ(embeddings.size(), 2u);
  std::set<int> seen;
  for (const auto& e : embeddings) {
    for (int n : e.nodes) {
      EXPECT_TRUE(seen.insert(n).second) << "embeddings share node " << n;
    }
  }
}

TEST_F(RelationExtractorTest, DefaultPrepRelationForUncoveredNounPp) {
  nlp::DependencyTree tree = Parse("Give me all companies in Munich .");
  RelationExtractor extractor(&dict_);
  auto embeddings = extractor.FindEmbeddings(tree);
  auto defaults = extractor.FindDefaultPrepEmbeddings(tree, embeddings);
  ASSERT_EQ(defaults.size(), 1u);
  EXPECT_EQ(defaults[0].phrase, kNoPhrase);
  EXPECT_EQ(tree.node(defaults[0].root).token.lower, "in");
}

TEST_F(RelationExtractorTest, DefaultPrepSkippedWhenCoveredByPhrase) {
  nlp::DependencyTree tree = Parse("Who is the mayor of Berlin ?");
  RelationExtractor extractor(&dict_);
  auto embeddings = extractor.FindEmbeddings(tree);
  ASSERT_EQ(embeddings.size(), 1u);  // "mayor of"
  auto defaults = extractor.FindDefaultPrepEmbeddings(tree, embeddings);
  EXPECT_TRUE(defaults.empty()) << "'of' already claimed by 'mayor of'";
}

TEST_F(RelationExtractorTest, DefaultPrepCanBeDisabled) {
  RelationExtractor::Options opt;
  opt.default_prep_relations = false;
  RelationExtractor extractor(&dict_, opt);
  nlp::DependencyTree tree = Parse("Give me all companies in Munich .");
  auto defaults = extractor.FindDefaultPrepEmbeddings(
      tree, extractor.FindEmbeddings(tree));
  EXPECT_TRUE(defaults.empty());
}

}  // namespace
}  // namespace qa
}  // namespace ganswer
