#include "qa/superlative.h"

#include <gtest/gtest.h>

#include "nlp/dependency_parser.h"
#include "qa/ganswer.h"
#include "test_support.h"

namespace ganswer {
namespace qa {
namespace {

class SuperlativeTest : public ::testing::Test {
 protected:
  SuperlativeTest()
      : world_(ganswer::testing::World()),
        parser_(world_.lexicon),
        resolver_(&world_.kb.graph) {}

  std::optional<SuperlativeResolver::Detection> Detect(const std::string& q) {
    auto tree = parser_.Parse(q);
    EXPECT_TRUE(tree.ok());
    return resolver_.Detect(*tree);
  }

  const ganswer::testing::SharedWorld& world_;
  nlp::DependencyParser parser_;
  SuperlativeResolver resolver_;
};

TEST_F(SuperlativeTest, DetectsSuperlativeAdjectives) {
  auto d = Detect("Who is the youngest player in the Chicago Bulls ?");
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->value_predicate, "birthDate");
  EXPECT_TRUE(d->take_max);

  auto h = Detect("What is the highest mountain in Valdoria ?");
  ASSERT_TRUE(h.has_value());
  EXPECT_EQ(h->value_predicate, "elevation");

  auto o = Detect("Who is the oldest player in the Chicago Bulls ?");
  ASSERT_TRUE(o.has_value());
  EXPECT_FALSE(o->take_max);
}

TEST_F(SuperlativeTest, DetectsMostInhabitants) {
  auto d = Detect("Which city has the most inhabitants ?");
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->value_predicate, "populationTotal");
  EXPECT_TRUE(d->take_max);
}

TEST_F(SuperlativeTest, DetectsCountQuestions) {
  auto tree = parser_.Parse("How many members does The Prodigy have ?");
  ASSERT_TRUE(tree.ok());
  EXPECT_TRUE(SuperlativeResolver::DetectCount(*tree));
  auto plain = parser_.Parse("Who is the mayor of Berlin ?");
  ASSERT_TRUE(plain.ok());
  EXPECT_FALSE(SuperlativeResolver::DetectCount(*plain));
}

TEST_F(SuperlativeTest, HaveBecomesMainVerbUnderDoSupport) {
  auto tree = parser_.Parse("How many members does The Prodigy have ?");
  ASSERT_TRUE(tree.ok());
  int have = -1;
  for (int i = 0; i < static_cast<int>(tree->size()); ++i) {
    if (tree->node(i).token.lower == "have") have = i;
  }
  ASSERT_GE(have, 0);
  EXPECT_EQ(tree->node(have).token.pos, nlp::PosTag::kVerb);
  EXPECT_EQ(tree->root(), have) << tree->ToString();
}

TEST_F(SuperlativeTest, NoDetectionOnPlainQuestions) {
  EXPECT_FALSE(Detect("Who is the mayor of Berlin ?").has_value());
  EXPECT_FALSE(Detect("Give me all movies directed by X .").has_value());
  // "largest city" IS a real predicate question (largestCity) handled by
  // the ordinary pipeline; detection still fires but only changes behavior
  // when the extension is enabled and candidates carry the value predicate.
}

TEST_F(SuperlativeTest, ApplyKeepsArgmax) {
  const rdf::RdfGraph& g = world_.kb.graph;
  rdf::RdfGraph local;
  local.AddTriple("a", "elevation", "1000", rdf::TermKind::kLiteral);
  local.AddTriple("b", "elevation", "8848", rdf::TermKind::kLiteral);
  local.AddTriple("c", "elevation", "999", rdf::TermKind::kLiteral);
  ASSERT_TRUE(local.Finalize().ok());
  SuperlativeResolver resolver(&local);
  SuperlativeResolver::Detection d;
  d.value_predicate = "elevation";
  d.take_max = true;
  auto kept = resolver.Apply(
      d, {*local.Find("a"), *local.Find("b"), *local.Find("c")});
  ASSERT_EQ(kept.size(), 1u);
  EXPECT_EQ(kept[0], *local.Find("b"));
  d.take_max = false;
  kept = resolver.Apply(
      d, {*local.Find("a"), *local.Find("b"), *local.Find("c")});
  ASSERT_EQ(kept.size(), 1u);
  EXPECT_EQ(kept[0], *local.Find("c")) << "numeric, not lexicographic";
  (void)g;
}

TEST_F(SuperlativeTest, ApplyNumericComparisonAcrossWidths) {
  rdf::RdfGraph local;
  local.AddTriple("small", "populationTotal", "9999", rdf::TermKind::kLiteral);
  local.AddTriple("big", "populationTotal", "10000", rdf::TermKind::kLiteral);
  ASSERT_TRUE(local.Finalize().ok());
  SuperlativeResolver resolver(&local);
  SuperlativeResolver::Detection d;
  d.value_predicate = "populationTotal";
  d.take_max = true;
  auto kept = resolver.Apply(d, {*local.Find("small"), *local.Find("big")});
  ASSERT_EQ(kept.size(), 1u);
  EXPECT_EQ(kept[0], *local.Find("big"));
}

TEST_F(SuperlativeTest, CandidatesWithoutValueAreDropped) {
  rdf::RdfGraph local;
  local.AddTriple("a", "elevation", "100", rdf::TermKind::kLiteral);
  local.AddTriple("b", "other", "x");
  ASSERT_TRUE(local.Finalize().ok());
  SuperlativeResolver resolver(&local);
  SuperlativeResolver::Detection d;
  d.value_predicate = "elevation";
  auto kept = resolver.Apply(d, {*local.Find("a"), *local.Find("b")});
  ASSERT_EQ(kept.size(), 1u);
  EXPECT_EQ(kept[0], *local.Find("a"));
}

TEST_F(SuperlativeTest, TiesAreKept) {
  rdf::RdfGraph local;
  local.AddTriple("a", "elevation", "500", rdf::TermKind::kLiteral);
  local.AddTriple("b", "elevation", "500", rdf::TermKind::kLiteral);
  ASSERT_TRUE(local.Finalize().ok());
  SuperlativeResolver resolver(&local);
  SuperlativeResolver::Detection d;
  d.value_predicate = "elevation";
  EXPECT_EQ(resolver.Apply(d, {*local.Find("a"), *local.Find("b")}).size(),
            2u);
}

class SuperlativeEndToEndTest : public ::testing::Test {
 protected:
  SuperlativeEndToEndTest() : world_(ganswer::testing::World()) {}
  const ganswer::testing::SharedWorld& world_;
};

TEST_F(SuperlativeEndToEndTest, AggregationQuestionsAnsweredWhenEnabled) {
  GAnswer::Options opt;
  opt.enable_superlatives = true;
  GAnswer extended(&world_.kb.graph, &world_.lexicon, world_.verified.get(),
                   opt);
  GAnswer paper_faithful(&world_.kb.graph, &world_.lexicon,
                         world_.verified.get());

  size_t agg_total = 0, extended_right = 0, paper_right = 0;
  for (const auto& q : world_.workload) {
    if (q.category != datagen::QuestionCategory::kAggregation) continue;
    ++agg_total;
    for (auto* system : {&extended, &paper_faithful}) {
      auto r = system->Ask(q.text);
      if (!r.ok()) continue;
      std::vector<std::string> answers;
      for (const auto& a : r->answers) answers.push_back(a.text);
      std::sort(answers.begin(), answers.end());
      std::vector<std::string> gold = q.gold_answers;
      std::sort(gold.begin(), gold.end());
      if (answers == gold) {
        (system == &extended ? extended_right : paper_right) += 1;
      }
    }
  }
  ASSERT_GT(agg_total, 4u);
  // Paper-faithful mode mostly fails these (a lone-member team can make
  // "all players" accidentally equal the superlative gold).
  EXPECT_LT(paper_right, agg_total / 2) << "paper-faithful mode";
  EXPECT_GT(extended_right, agg_total / 2)
      << extended_right << "/" << agg_total;
  EXPECT_GT(extended_right, paper_right);
}

TEST_F(SuperlativeEndToEndTest, CountQuestionAnswered) {
  GAnswer::Options opt;
  opt.enable_superlatives = true;
  GAnswer extended(&world_.kb.graph, &world_.lexicon, world_.verified.get(),
                   opt);
  auto r = extended.Ask("How many members does The Prodigy have ?");
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->answers.size(), 1u);
  EXPECT_EQ(r->answers[0].text, "3");
  EXPECT_TRUE(r->superlative_applied);

  GAnswer plain(&world_.kb.graph, &world_.lexicon, world_.verified.get());
  auto p = plain.Ask("How many members does The Prodigy have ?");
  ASSERT_TRUE(p.ok());
  // Paper-faithful mode lists the members instead of counting: wrong by
  // the gold, which is the Table 10 aggregation failure mode.
  bool has_count = false;
  for (const auto& a : p->answers) has_count |= a.text == "3";
  EXPECT_FALSE(has_count);
}

TEST_F(SuperlativeEndToEndTest, ExtensionDoesNotPerturbOtherQuestions) {
  GAnswer::Options opt;
  opt.enable_superlatives = true;
  GAnswer extended(&world_.kb.graph, &world_.lexicon, world_.verified.get(),
                   opt);
  GAnswer plain(&world_.kb.graph, &world_.lexicon, world_.verified.get());
  size_t checked = 0;
  for (const auto& q : world_.workload) {
    if (q.category == datagen::QuestionCategory::kAggregation) continue;
    if (++checked > 30) break;
    auto a = extended.Ask(q.text);
    auto b = plain.Ask(q.text);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    std::vector<std::string> av, bv;
    for (const auto& x : a->answers) av.push_back(x.text);
    for (const auto& x : b->answers) bv.push_back(x.text);
    EXPECT_EQ(av, bv) << q.text;
  }
}

}  // namespace
}  // namespace qa
}  // namespace ganswer
