#include "qa/ganswer.h"

#include <gtest/gtest.h>

#include "test_support.h"

namespace ganswer {
namespace qa {
namespace {

class GAnswerTest : public ::testing::Test {
 protected:
  GAnswerTest()
      : world_(ganswer::testing::World()),
        system_(&world_.kb.graph, &world_.lexicon, world_.verified.get()) {}

  std::vector<std::string> Answers(const std::string& q) {
    auto r = system_.Ask(q);
    EXPECT_TRUE(r.ok()) << q;
    std::vector<std::string> out;
    for (const auto& a : r->answers) out.push_back(a.text);
    std::sort(out.begin(), out.end());
    return out;
  }

  const ganswer::testing::SharedWorld& world_;
  GAnswer system_;
};

TEST_F(GAnswerTest, RunningExample) {
  EXPECT_EQ(Answers("Who was married to an actor that played in Philadelphia ?"),
            std::vector<std::string>{"Melanie_Griffith"});
}

TEST_F(GAnswerTest, SimpleFactoids) {
  EXPECT_EQ(Answers("Who is the mayor of Berlin ?"),
            std::vector<std::string>{"Klaus_Wowereit"});
  EXPECT_EQ(Answers("What is the capital of Canada ?"),
            std::vector<std::string>{"Ottawa"});
  EXPECT_EQ(Answers("Who developed Minecraft ?"),
            std::vector<std::string>{"Mojang"});
  EXPECT_EQ(Answers("Who was the successor of John F. Kennedy ?"),
            std::vector<std::string>{"Lyndon_B._Johnson"});
  EXPECT_EQ(Answers("Who was the father of Queen Elizabeth II ?"),
            std::vector<std::string>{"George_VI"});
}

TEST_F(GAnswerTest, TypeConstrainedImperative) {
  EXPECT_EQ(Answers("Give me all movies directed by Francis Ford Coppola ."),
            (std::vector<std::string>{"Apocalypse_Now", "The_Conversation",
                                      "The_Godfather"}));
}

TEST_F(GAnswerTest, BandMembers) {
  EXPECT_EQ(Answers("Give me all members of Prodigy ?"),
            (std::vector<std::string>{"Keith_Flint", "Liam_Howlett",
                                      "Maxim_Reality"}));
}

TEST_F(GAnswerTest, LiteralAnswers) {
  EXPECT_EQ(Answers("How tall is Michael Jordan ?"),
            std::vector<std::string>{"1.98"});
  EXPECT_EQ(Answers("When did Michael Jackson die ?"),
            std::vector<std::string>{"2009-06-25"});
  EXPECT_EQ(Answers("How high is Mount Everest ?"),
            std::vector<std::string>{"8848"});
  EXPECT_EQ(Answers("What is the time zone of Salt Lake City ?"),
            std::vector<std::string>{"Mountain Standard Time"});
}

TEST_F(GAnswerTest, PredicatePathQuestion) {
  EXPECT_EQ(Answers("Who is the uncle of John F. Kennedy Jr. ?"),
            std::vector<std::string>{"Ted_Kennedy"});
}

TEST_F(GAnswerTest, AskQuestions) {
  auto yes = system_.Ask("Is Michelle Obama the wife of Barack Obama ?");
  ASSERT_TRUE(yes.ok());
  EXPECT_TRUE(yes->is_ask);
  EXPECT_TRUE(yes->ask_result);
  auto no = system_.Ask("Is Melanie Griffith the wife of Barack Obama ?");
  ASSERT_TRUE(no.ok());
  EXPECT_TRUE(no->is_ask);
  EXPECT_FALSE(no->ask_result);
}

TEST_F(GAnswerTest, NicknameLiteralLinking) {
  EXPECT_EQ(Answers("Who was called Scarface ?"),
            std::vector<std::string>{"Al_Capone"});
}

TEST_F(GAnswerTest, MultiHopThroughSharedVertex) {
  EXPECT_EQ(Answers("Which country does the creator of Miffy come from ?"),
            std::vector<std::string>{"Netherlands"});
}

TEST_F(GAnswerTest, DisambiguationIsDataDriven) {
  // "Philadelphia" must bind to the film in the starred-in reading and to
  // the basketball team in the plays-for reading.
  auto film = system_.Ask("Which movies did Antonio Banderas star in ?");
  ASSERT_TRUE(film.ok());
  bool saw_film = false;
  for (const auto& a : film->answers) {
    saw_film |= a.text == "Philadelphia_(film)";
    EXPECT_NE(a.text, "Philadelphia");
    EXPECT_NE(a.text, "Philadelphia_76ers");
  }
  EXPECT_TRUE(saw_film);
}

TEST_F(GAnswerTest, AggregationQuestionFails) {
  auto r = system_.Ask("Who is the youngest player in the Chicago Bulls ?");
  ASSERT_TRUE(r.ok());
  // The pipeline produces no aggregation; whatever it returns cannot equal
  // a superlative gold. It should either fail or return plain members.
  EXPECT_NE(r->failure, GAnswer::FailureStage::kParse);
}

TEST_F(GAnswerTest, UnlinkableEntityDegradesOrFails) {
  // "ZZX9" cannot be linked; the company vertex degrades to a wildcard and
  // whatever comes back cannot name the company's actual headquarters with
  // confidence (the Table 10 entity-linking failure mode).
  auto r = system_.Ask("In which city are the headquarters of the ZZX9 ?");
  ASSERT_TRUE(r.ok());
  EXPECT_NE(r->failure, GAnswer::FailureStage::kParse);
}

TEST_F(GAnswerTest, FullyUnlinkableQuestionReportsNoLinking) {
  auto r = system_.Ask("Who quarreled with Zxqvutopia ?");
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->answers.empty());
  EXPECT_NE(r->failure, GAnswer::FailureStage::kNone);
}

TEST_F(GAnswerTest, AnswersComeRankedWithScores) {
  auto r = system_.Ask("Who was married to an actor that played in Philadelphia ?");
  ASSERT_TRUE(r.ok());
  for (size_t i = 1; i < r->answers.size(); ++i) {
    EXPECT_GE(r->answers[i - 1].score, r->answers[i].score);
  }
  EXPECT_FALSE(r->matches.empty());
}

TEST_F(GAnswerTest, ResponseTimesAreMilliseconds) {
  auto r = system_.Ask("Who is the mayor of Berlin ?");
  ASSERT_TRUE(r.ok());
  EXPECT_LT(r->TotalMs(), 3000.0) << "paper's Table 11 range";
}

}  // namespace
}  // namespace qa
}  // namespace ganswer
