// Differential test: PathFinder (reverse-BFS distance pruning, schema
// skipping, hub guard) vs the naive enumerate-all-simple-paths DFS oracle,
// over randomized graphs and randomized endpoint pairs. Both sides return
// sorted distinct predicate paths, so the comparison is exact vector
// equality.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "oracle/path_oracle.h"
#include "paraphrase/path_finder.h"
#include "prop/prop_support.h"
#include "test_support.h"

namespace ganswer {
namespace testing {
namespace {

void CheckPair(const RandomGraphData& data, rdf::TermId from, rdf::TermId to,
               const paraphrase::PathFinder::Options& opt) {
  SCOPED_TRACE("from=" + std::string(data.graph.dict().text(from)) +
               " to=" + std::string(data.graph.dict().text(to)) +
               " theta=" + std::to_string(opt.max_length) +
               " skip_schema=" + std::to_string(opt.skip_schema_edges) +
               " hub=" + std::to_string(opt.max_intermediate_degree));
  paraphrase::PathFinder finder(data.graph, opt);
  std::vector<paraphrase::PredicatePath> got = finder.FindPaths(from, to);
  std::vector<paraphrase::PredicatePath> want =
      NaiveEnumeratePaths(data.graph, data.triples, from, to, opt);
  EXPECT_EQ(got, want);
}

// 14 random graphs x 5 endpoint pairs x 3 option sets = 210 differential
// instances at fixed seeds.
TEST(PathOracleTest, FinderMatchesNaiveDfs) {
  ForEachSeed(8000, 14, [](uint64_t seed) {
    Rng rng(seed);
    RandomGraphOptions gopts;
    gopts.num_vertices = 6 + rng.Next(5);
    gopts.num_predicates = 2 + rng.Next(3);
    gopts.num_triples = 12 + rng.Next(16);
    gopts.type_rate = 0.4;  // schema edges present so skipping matters
    RandomGraphData data = BuildRandomGraph(seed * 11 + 2, gopts);

    paraphrase::PathFinder::Options base;
    base.max_paths = 0;  // oracle has no cap

    for (int pair = 0; pair < 5; ++pair) {
      auto from = data.graph.Find("v" + std::to_string(rng.Next(gopts.num_vertices)));
      auto to = data.graph.Find("v" + std::to_string(rng.Next(gopts.num_vertices)));
      if (!from.has_value() || !to.has_value()) continue;  // vertex never added

      paraphrase::PathFinder::Options a = base;
      a.max_length = 2;
      CheckPair(data, *from, *to, a);

      paraphrase::PathFinder::Options b = base;
      b.max_length = 4;
      b.skip_schema_edges = rng.Chance(0.5);
      CheckPair(data, *from, *to, b);

      paraphrase::PathFinder::Options c = base;
      c.max_length = 3;
      c.max_intermediate_degree = 2 + rng.Next(4);
      CheckPair(data, *from, *to, c);
    }
  });
}

// Deterministic corners: self pair, disconnected pair, path through the
// target (the `to` vertex terminates a path on first arrival — longer
// continuations through it must not be reported).
TEST(PathOracleTest, EdgeCases) {
  RandomGraphData data;
  auto add = [&](const std::string& s, const std::string& p,
                 const std::string& o) {
    data.graph.AddTriple(s, p, o);
    data.triples.push_back({s, p, o, rdf::TermKind::kIri});
  };
  // a -p0-> b -p1-> c -p2-> d, plus b -p3-> d and an isolated edge x->y.
  add("a", "p0", "b");
  add("b", "p1", "c");
  add("c", "p2", "d");
  add("b", "p3", "d");
  add("x", "p0", "y");
  ASSERT_TRUE(data.graph.Finalize().ok());

  paraphrase::PathFinder::Options opt;
  opt.max_length = 4;

  auto id = [&](const std::string& n) { return *data.graph.Find(n); };
  CheckPair(data, id("a"), id("d"), opt);  // two routes, one through c
  CheckPair(data, id("a"), id("b"), opt);  // `to` adjacent: 1-step only path
  CheckPair(data, id("a"), id("y"), opt);  // disconnected: empty

  paraphrase::PathFinder finder(data.graph, opt);
  EXPECT_TRUE(finder.FindPaths(id("a"), id("a")).empty());
}

}  // namespace
}  // namespace testing
}  // namespace ganswer
