#ifndef GANSWER_TESTS_ORACLE_MATCH_ORACLE_H_
#define GANSWER_TESTS_ORACLE_MATCH_ORACLE_H_

// Reference oracle for the TA-style top-k matcher: enumerate EVERY
// injective assignment of query vertices to graph terms, check Definition 3
// directly against the RAW triple list (own adjacency, own rdf:type /
// subclass closure — nothing shared with CandidateSpace, SubgraphMatcher or
// the CSR), score by Definition 6, rank by the pinned MatchOrder and cut
// with the documented keep-ties rule.
//
// Caveat: the oracle assigns every query vertex, so it only agrees with
// TopKMatcher on CONNECTED query graphs (the matcher leaves vertices
// outside the anchor's component as kInvalidTerm). Generators must produce
// connected queries.

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdlib>
#include <functional>
#include <map>
#include <set>
#include <vector>

#include "match/query_graph.h"
#include "paraphrase/predicate_path.h"
#include "rdf/rdf_graph.h"
#include "test_support.h"

namespace ganswer {
namespace testing {

class MatchOracle {
 public:
  MatchOracle(const rdf::RdfGraph& graph, const std::vector<RawTriple>& raw)
      : dict_(graph.dict()) {
    num_terms_ = dict_.size();
    auto type_id = dict_.Lookup(rdf::kTypePredicate);
    auto sub_id = dict_.Lookup(rdf::kSubClassOfPredicate);
    for (const RawTriple& t : raw) {
      auto s = dict_.Lookup(t.s, rdf::TermKind::kIri);
      auto p = dict_.Lookup(t.p, rdf::TermKind::kIri);
      auto o = dict_.Lookup(t.o, t.object_kind);
      if (!s || !p || !o) std::abort();
      if (!triples_.insert({*s, *p, *o}).second) continue;
      out_[*s].push_back({*p, *o});
      in_[*o].push_back({*p, *s});
      if (type_id && *p == *type_id) direct_types_[*s].insert(*o);
      if (sub_id && *p == *sub_id) subclass_[*s].insert(*o);
    }
  }

  bool HasTriple(rdf::TermId s, rdf::TermId p, rdf::TermId o) const {
    return triples_.count({s, p, o}) > 0;
  }

  /// rdf:type with the reflexive-transitive rdfs:subClassOf closure,
  /// computed here from the raw triples (differentially checks the graph's
  /// own type machinery).
  bool IsInstanceOf(rdf::TermId v, rdf::TermId cls) const {
    auto it = direct_types_.find(v);
    if (it == direct_types_.end()) return false;
    for (rdf::TermId t : it->second) {
      if (t == cls || ReachesSuper(t, cls)) return true;
    }
    return false;
  }

  /// PathConnects semantics: some vertex-simple instantiation of \p path
  /// (read from `from`) ends at `to`.
  bool PathConnects(rdf::TermId from, rdf::TermId to,
                    const paraphrase::PredicatePath& path) const {
    std::vector<rdf::TermId> chain{from};
    return Instantiate(from, path, 0, &chain, to);
  }

  std::optional<double> VertexDelta(const match::QueryVertex& qv,
                                    rdf::TermId u) const {
    if (qv.wildcard) return qv.wildcard_confidence;
    double best = -1;
    for (const linking::LinkCandidate& c : qv.candidates) {
      if (c.is_class) {
        if (IsInstanceOf(u, c.vertex)) best = std::max(best, c.confidence);
      } else if (c.vertex == u) {
        best = std::max(best, c.confidence);
      }
    }
    if (best <= 0) return std::nullopt;
    return best;
  }

  std::optional<double> EdgeDelta(const match::QueryEdge& e, rdf::TermId uf,
                                  rdf::TermId ut) const {
    if (e.wildcard) {
      auto it = out_.find(uf);
      if (it != out_.end()) {
        for (const auto& [p, o] : it->second) {
          if (o == ut) return e.wildcard_confidence;
        }
      }
      it = in_.find(uf);
      if (it != in_.end()) {
        for (const auto& [p, s] : it->second) {
          if (s == ut) return e.wildcard_confidence;
        }
      }
      return std::nullopt;
    }
    std::optional<double> best;
    for (const paraphrase::ParaphraseEntry& cand : e.candidates) {
      if (best.has_value() && cand.confidence <= *best) continue;
      bool connects;
      if (cand.path.IsSinglePredicate()) {
        rdf::TermId p = cand.path.steps[0].predicate;
        connects = HasTriple(uf, p, ut) || HasTriple(ut, p, uf);
      } else {
        // uf stands at the edge's arg1 here (callers pass uf = vertex
        // matched to e.from), so the path is walked as written.
        connects = PathConnects(uf, ut, cand.path);
      }
      if (connects) best = cand.confidence;
    }
    return best;
  }

  /// Every injective full assignment satisfying Definition 3, scored by
  /// Definition 6, sorted by the pinned MatchOrder. Not cut to k.
  std::vector<match::Match> AllMatches(const match::QueryGraph& q) const {
    std::vector<match::Match> out;
    std::vector<rdf::TermId> assignment(q.vertices.size(), rdf::kInvalidTerm);
    std::function<void(size_t, double)> rec = [&](size_t depth, double score) {
      if (depth == q.vertices.size()) {
        double edge_score = 0;
        for (const match::QueryEdge& e : q.edges) {
          auto d = EdgeDelta(e, assignment[e.from], assignment[e.to]);
          if (!d.has_value()) return;
          edge_score += std::log(*d);
        }
        match::Match m;
        m.assignment = assignment;
        m.score = score + edge_score;
        out.push_back(std::move(m));
        return;
      }
      for (rdf::TermId u = 0; u < num_terms_; ++u) {
        bool used = false;
        for (size_t i = 0; i < depth; ++i) {
          if (assignment[i] == u) used = true;
        }
        if (used) continue;
        auto d = VertexDelta(q.vertices[depth], u);
        if (!d.has_value()) continue;
        assignment[depth] = u;
        rec(depth + 1, score + std::log(*d));
        assignment[depth] = rdf::kInvalidTerm;
      }
    };
    rec(0, 0.0);
    std::sort(out.begin(), out.end(), match::MatchOrder);
    return out;
  }

 private:
  bool ReachesSuper(rdf::TermId cls, rdf::TermId target) const {
    std::set<rdf::TermId> seen{cls};
    std::vector<rdf::TermId> stack{cls};
    while (!stack.empty()) {
      rdf::TermId c = stack.back();
      stack.pop_back();
      if (c == target) return true;
      auto it = subclass_.find(c);
      if (it == subclass_.end()) continue;
      for (rdf::TermId super : it->second) {
        if (seen.insert(super).second) stack.push_back(super);
      }
    }
    return false;
  }

  bool Instantiate(rdf::TermId v, const paraphrase::PredicatePath& path,
                   size_t depth, std::vector<rdf::TermId>* chain,
                   rdf::TermId target) const {
    if (depth == path.steps.size()) return v == target;
    const paraphrase::PathStep& step = path.steps[depth];
    const auto& adj = step.forward ? out_ : in_;
    auto it = adj.find(v);
    if (it == adj.end()) return false;
    for (const auto& [p, next] : it->second) {
      if (p != step.predicate) continue;
      if (std::find(chain->begin(), chain->end(), next) != chain->end()) {
        continue;
      }
      chain->push_back(next);
      bool hit = Instantiate(next, path, depth + 1, chain, target);
      chain->pop_back();
      if (hit) return true;
    }
    return false;
  }

  const rdf::TermDictionary& dict_;
  rdf::TermId num_terms_ = 0;
  std::set<std::array<rdf::TermId, 3>> triples_;
  std::map<rdf::TermId, std::vector<std::pair<rdf::TermId, rdf::TermId>>> out_;
  std::map<rdf::TermId, std::vector<std::pair<rdf::TermId, rdf::TermId>>> in_;
  std::map<rdf::TermId, std::set<rdf::TermId>> direct_types_;
  std::map<rdf::TermId, std::set<rdf::TermId>> subclass_;
};

}  // namespace testing
}  // namespace ganswer

#endif  // GANSWER_TESTS_ORACLE_MATCH_ORACLE_H_
