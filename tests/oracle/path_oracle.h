#ifndef GANSWER_TESTS_ORACLE_PATH_ORACLE_H_
#define GANSWER_TESTS_ORACLE_PATH_ORACLE_H_

// Reference oracle for PathFinder: enumerate ALL simple undirected paths
// between two vertices by plain DFS over the raw triple list — no reverse
// BFS distance map, no pruning — and report the distinct predicate paths.
// PathFinder's bidirectional pruning must return exactly this set.

#include <algorithm>
#include <array>
#include <cstdlib>
#include <functional>
#include <map>
#include <set>
#include <vector>

#include "paraphrase/predicate_path.h"
#include "paraphrase/path_finder.h"
#include "rdf/rdf_graph.h"
#include "test_support.h"

namespace ganswer {
namespace testing {

/// All distinct predicate paths realized by simple paths from \p from to
/// \p to of length <= options.max_length, mirroring PathFinder's contract:
/// `to` terminates a path on first arrival, schema edges are skipped when
/// requested, intermediate vertices (never the endpoints) respect the hub
/// guard. Result is sorted, like PathFinder's.
inline std::vector<paraphrase::PredicatePath> NaiveEnumeratePaths(
    const rdf::RdfGraph& graph, const std::vector<RawTriple>& raw,
    rdf::TermId from, rdf::TermId to,
    const paraphrase::PathFinder::Options& options) {
  std::vector<paraphrase::PredicatePath> result;
  if (from == to) return result;

  const rdf::TermDictionary& dict = graph.dict();
  // Own adjacency from the raw triples (deduplicated).
  std::set<std::array<rdf::TermId, 3>> triples;
  std::map<rdf::TermId, std::vector<std::pair<rdf::TermId, rdf::TermId>>> out,
      in;
  std::map<rdf::TermId, size_t> degree;
  for (const RawTriple& t : raw) {
    auto s = dict.Lookup(t.s, rdf::TermKind::kIri);
    auto p = dict.Lookup(t.p, rdf::TermKind::kIri);
    auto o = dict.Lookup(t.o, t.object_kind);
    if (!s || !p || !o) std::abort();
    if (!triples.insert({*s, *p, *o}).second) continue;
    out[*s].push_back({*p, *o});
    in[*o].push_back({*p, *s});
    ++degree[*s];
    ++degree[*o];
  }

  auto is_schema = [&](rdf::TermId p) {
    if (!options.skip_schema_edges) return false;
    return p == graph.type_predicate() || p == graph.subclass_predicate() ||
           p == graph.label_predicate();
  };
  auto hub_blocked = [&](rdf::TermId v) {
    if (options.max_intermediate_degree == 0) return false;
    auto it = degree.find(v);
    return it != degree.end() && it->second > options.max_intermediate_degree;
  };

  std::set<paraphrase::PredicatePath> seen;
  std::vector<rdf::TermId> chain{from};
  paraphrase::PredicatePath current;

  std::function<void(rdf::TermId)> dfs = [&](rdf::TermId v) {
    if (v == to && !current.steps.empty()) {
      seen.insert(current);
      return;  // simple paths cannot revisit `to`
    }
    if (current.steps.size() >= options.max_length) return;
    auto try_edge = [&](rdf::TermId p, rdf::TermId next, bool forward) {
      if (is_schema(p)) return;
      if (next != to && hub_blocked(next)) return;
      if (std::find(chain.begin(), chain.end(), next) != chain.end()) return;
      chain.push_back(next);
      current.steps.push_back({p, forward});
      dfs(next);
      current.steps.pop_back();
      chain.pop_back();
    };
    auto oit = out.find(v);
    if (oit != out.end()) {
      for (const auto& [p, o] : oit->second) try_edge(p, o, true);
    }
    auto iit = in.find(v);
    if (iit != in.end()) {
      for (const auto& [p, s] : iit->second) try_edge(p, s, false);
    }
  };
  dfs(from);

  result.assign(seen.begin(), seen.end());
  return result;
}

}  // namespace testing
}  // namespace ganswer

#endif  // GANSWER_TESTS_ORACLE_PATH_ORACLE_H_
