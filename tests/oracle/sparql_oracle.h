#ifndef GANSWER_TESTS_ORACLE_SPARQL_ORACLE_H_
#define GANSWER_TESTS_ORACLE_SPARQL_ORACLE_H_

// Reference oracle for the SPARQL-lite evaluator: a deliberately naive
// nested-loop join over the RAW triple list (the text triples the test
// added, not RdfGraph's CSR), with none of SparqlEngine's machinery — no
// predicate index, no selectivity reordering, no early termination. Any
// answer disagreement between this and SparqlEngine is a bug in one of
// them.

#include <algorithm>
#include <array>
#include <cstdlib>
#include <functional>
#include <limits>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "rdf/rdf_graph.h"
#include "rdf/sparql.h"
#include "test_support.h"

namespace ganswer {
namespace testing {

struct SparqlOracleResult {
  /// False mirrors SparqlEngine's InvalidArgument cases (selected or
  /// ORDER BY variable not bound by any pattern).
  bool ok = true;
  /// SELECT rows BEFORE ORDER BY / OFFSET / LIMIT, but after DISTINCT.
  /// Row order is meaningless (compare as sorted multisets).
  std::vector<std::vector<rdf::TermId>> rows;
  std::vector<std::string> var_names;
  bool ask_result = false;
};

/// Evaluates \p query against the raw triple list by exhaustive nested-loop
/// join in the patterns' written order.
inline SparqlOracleResult NaiveSparqlEvaluate(
    const rdf::RdfGraph& graph, const std::vector<RawTriple>& raw,
    const rdf::SparqlQuery& query) {
  SparqlOracleResult result;
  const rdf::TermDictionary& dict = graph.dict();

  // Encode the ground-truth triples (dedup; AddTriple dedups at Finalize).
  std::set<std::array<rdf::TermId, 3>> triple_set;
  for (const RawTriple& t : raw) {
    auto s = dict.Lookup(t.s, rdf::TermKind::kIri);
    auto p = dict.Lookup(t.p, rdf::TermKind::kIri);
    auto o = dict.Lookup(t.o, t.object_kind);
    if (!s || !p || !o) std::abort();  // raw triples were interned by Add
    triple_set.insert({*s, *p, *o});
  }
  std::vector<std::array<rdf::TermId, 3>> triples(triple_set.begin(),
                                                  triple_set.end());

  // Output variables, mirroring the engine: SELECT * takes variables in
  // first-occurrence order across the patterns.
  std::vector<std::string> out_vars = query.select_vars;
  if (query.form == rdf::SparqlQuery::Form::kSelect && query.select_all) {
    std::set<std::string> seen;
    for (const rdf::TriplePattern& tp : query.patterns) {
      for (const rdf::PatternTerm* t :
           {&tp.subject, &tp.predicate, &tp.object}) {
        if (t->is_var && seen.insert(t->text).second) {
          out_vars.push_back(t->text);
        }
      }
    }
  }
  if (query.form == rdf::SparqlQuery::Form::kAsk) out_vars.clear();

  std::set<std::string> bound_vars;
  for (const rdf::TriplePattern& tp : query.patterns) {
    for (const rdf::PatternTerm* t : {&tp.subject, &tp.predicate, &tp.object}) {
      if (t->is_var) bound_vars.insert(t->text);
    }
  }
  for (const std::string& v : out_vars) {
    if (!bound_vars.count(v)) {
      result.ok = false;
      return result;
    }
  }
  if (query.form == rdf::SparqlQuery::Form::kSelect &&
      query.order_by.has_value() &&
      std::find(out_vars.begin(), out_vars.end(), query.order_by->var) ==
          out_vars.end()) {
    result.ok = false;  // engine: ORDER BY var must be a result var
    return result;
  }
  result.var_names = out_vars;

  // Nested-loop join in written pattern order.
  std::map<std::string, rdf::TermId> binding;
  auto term_matches = [&](const rdf::PatternTerm& t, rdf::TermId id,
                          std::vector<std::string>* newly) {
    if (t.is_var) {
      auto it = binding.find(t.text);
      if (it != binding.end()) return it->second == id;
      binding.emplace(t.text, id);
      newly->push_back(t.text);
      return true;
    }
    auto want = dict.Lookup(t.text, t.kind);
    return want.has_value() && *want == id;
  };

  std::vector<std::vector<rdf::TermId>> rows;
  auto emit = [&]() {
    std::vector<rdf::TermId> row;
    for (const std::string& v : out_vars) {
      auto it = binding.find(v);
      row.push_back(it == binding.end() ? rdf::kInvalidTerm : it->second);
    }
    rows.push_back(std::move(row));
  };

  std::function<void(size_t)> join = [&](size_t depth) {
    if (depth == query.patterns.size()) {
      emit();
      return;
    }
    const rdf::TriplePattern& tp = query.patterns[depth];
    for (const auto& t : triples) {
      std::vector<std::string> newly;
      bool ok_match = term_matches(tp.subject, t[0], &newly) &&
                      term_matches(tp.predicate, t[1], &newly) &&
                      term_matches(tp.object, t[2], &newly);
      if (ok_match) join(depth + 1);
      for (const std::string& v : newly) binding.erase(v);
    }
  };
  if (query.patterns.empty()) {
    emit();  // empty BGP: one (empty/unbound) solution, SPARQL semantics
  } else {
    join(0);
  }

  if (query.form == rdf::SparqlQuery::Form::kAsk) {
    result.ask_result = !rows.empty();
    return result;
  }
  if (query.distinct) {
    std::sort(rows.begin(), rows.end());
    rows.erase(std::unique(rows.begin(), rows.end()), rows.end());
  }
  result.rows = std::move(rows);
  return result;
}

/// The engine's ORDER BY key comparison, replicated for checking that an
/// engine result honoring ORDER BY really is sorted: values parsing fully
/// as numbers compare numerically, everything else lexicographically.
inline bool OrderByLeq(const rdf::TermDictionary& dict, rdf::TermId a,
                       rdf::TermId b, bool descending) {
  auto key = [&](rdf::TermId t) -> std::pair<double, std::string_view> {
    std::string_view text = dict.text(t);
    std::string buf(text);  // strtod needs a NUL terminator
    char* end = nullptr;
    double num = std::strtod(buf.c_str(), &end);
    bool numeric = end != buf.c_str() && *end == '\0';
    return {numeric ? num
                    : std::numeric_limits<double>::quiet_NaN(),
            text};
  };
  auto [na, ta] = key(a);
  auto [nb, tb] = key(b);
  bool both_numeric = na == na && nb == nb;
  bool lt = both_numeric ? na < nb : ta < tb;
  bool gt = both_numeric ? nb < na : tb < ta;
  return descending ? !lt : !gt;  // "a may precede b"
}

}  // namespace testing
}  // namespace ganswer

#endif  // GANSWER_TESTS_ORACLE_SPARQL_ORACLE_H_
