// Differential test: SparqlEngine (predicate index, greedy join reordering,
// ASK short-circuit) vs the naive nested-loop oracle, over randomized
// graphs and randomized SPARQL-lite queries. Also round-trips every query
// through ToString() + SparqlParser to pin the text syntax to the same
// semantics.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "oracle/sparql_oracle.h"
#include "prop/prop_support.h"
#include "rdf/sparql_engine.h"
#include "rdf/sparql_parser.h"
#include "test_support.h"

namespace ganswer {
namespace testing {
namespace {

using rdf::PatternTerm;
using rdf::SparqlQuery;
using rdf::TriplePattern;

// Random query over the generated graph's vocabulary. Mostly satisfiable
// shapes, with deliberate unknown constants and unbound selected variables
// mixed in to exercise the error/empty paths.
SparqlQuery RandomQuery(Rng& rng, const RandomGraphOptions& gopts) {
  SparqlQuery q;
  std::vector<std::string> var_pool{"a", "b", "c", "x"};
  auto vertex_name = [&]() -> std::string {
    if (rng.Chance(0.06)) return "zz_unknown";  // never interned
    return "v" + std::to_string(rng.Next(gopts.num_vertices));
  };
  auto pred_name = [&]() -> std::string {
    if (rng.Chance(0.05)) return "zz_unknown_pred";
    return "p" + std::to_string(rng.Next(gopts.num_predicates));
  };
  auto term = [&](bool predicate_pos) -> PatternTerm {
    if (predicate_pos) {
      if (rng.Chance(0.2)) return PatternTerm::Var(rng.Pick(var_pool));
      return PatternTerm::Iri(pred_name());
    }
    if (rng.Chance(0.55)) return PatternTerm::Var(rng.Pick(var_pool));
    return PatternTerm::Iri(vertex_name());
  };

  size_t num_patterns = 1 + rng.Next(3);
  for (size_t i = 0; i < num_patterns; ++i) {
    TriplePattern tp;
    tp.subject = term(false);
    tp.predicate = term(true);
    tp.object = term(false);
    q.patterns.push_back(std::move(tp));
  }

  std::vector<std::string> used;
  for (const TriplePattern& tp : q.patterns) {
    for (const PatternTerm* t : {&tp.subject, &tp.predicate, &tp.object}) {
      if (t->is_var &&
          std::find(used.begin(), used.end(), t->text) == used.end()) {
        used.push_back(t->text);
      }
    }
  }

  if (rng.Chance(0.2)) {
    q.form = SparqlQuery::Form::kAsk;
    return q;
  }
  q.form = SparqlQuery::Form::kSelect;
  q.distinct = rng.Chance(0.4);
  if (used.empty() || rng.Chance(0.3)) {
    q.select_all = true;
  } else {
    size_t n = 1 + rng.Next(used.size());
    rng.Shuffle(&used);
    q.select_vars.assign(used.begin(), used.begin() + n);
    if (rng.Chance(0.08)) q.select_vars.push_back("unbound_var");
  }
  if (!q.select_vars.empty() && rng.Chance(0.25)) {
    SparqlQuery::OrderBy ob;
    ob.var = rng.Pick(q.select_vars);
    ob.descending = rng.Chance(0.5);
    q.order_by = ob;
  }
  if (rng.Chance(0.25)) q.limit = rng.Next(6);
  if (rng.Chance(0.15)) q.offset = rng.Next(4);
  return q;
}

void CheckAgainstOracle(const rdf::SparqlEngine& engine,
                        const rdf::RdfGraph& graph,
                        const std::vector<RawTriple>& raw,
                        const SparqlQuery& q) {
  SCOPED_TRACE("query: " + q.ToString());
  auto got = engine.Execute(q);
  SparqlOracleResult want = NaiveSparqlEvaluate(graph, raw, q);

  ASSERT_EQ(got.ok(), want.ok) << (got.ok() ? "engine ok, oracle rejected"
                                            : got.status().ToString());
  if (!want.ok) return;

  if (q.form == SparqlQuery::Form::kAsk) {
    EXPECT_EQ(got->ask_result, want.ask_result);
    return;
  }
  ASSERT_EQ(got->var_names, want.var_names);

  std::vector<std::vector<rdf::TermId>> got_rows = got->rows;
  std::vector<std::vector<rdf::TermId>> want_rows = want.rows;

  if (!q.limit.has_value() && !q.offset.has_value()) {
    // Full result: same multiset of rows.
    std::sort(got_rows.begin(), got_rows.end());
    std::sort(want_rows.begin(), want_rows.end());
    EXPECT_EQ(got_rows, want_rows);
  } else {
    // Cut result: the cut size is determined, the chosen rows must come
    // from the full result multiset.
    size_t total = want_rows.size();
    size_t off = q.offset.value_or(0);
    size_t after_offset = off >= total ? 0 : total - off;
    size_t expect_size = q.limit.has_value()
                             ? std::min(after_offset, *q.limit)
                             : after_offset;
    EXPECT_EQ(got_rows.size(), expect_size);
    std::sort(want_rows.begin(), want_rows.end());
    for (const auto& row : got_rows) {
      EXPECT_TRUE(std::binary_search(want_rows.begin(), want_rows.end(), row))
          << "engine produced a row outside the oracle result";
    }
  }
  if (q.order_by.has_value()) {
    size_t col = 0;
    for (size_t i = 0; i < got->var_names.size(); ++i) {
      if (got->var_names[i] == q.order_by->var) col = i;
    }
    for (size_t i = 1; i < got->rows.size(); ++i) {
      EXPECT_TRUE(OrderByLeq(graph.dict(), got->rows[i - 1][col],
                             got->rows[i][col], q.order_by->descending))
          << "row " << i << " violates ORDER BY";
    }
  }
}

// 40 randomized (graph, workload-of-8-queries) instances at fixed seeds.
TEST(SparqlOracleTest, EngineMatchesNaiveNestedLoopJoin) {
  ForEachSeed(9000, 40, [](uint64_t seed) {
    Rng rng(seed);
    RandomGraphOptions gopts;
    gopts.num_vertices = 8 + rng.Next(6);
    gopts.num_predicates = 2 + rng.Next(3);
    gopts.num_triples = 16 + rng.Next(20);
    gopts.literal_rate = rng.Chance(0.5) ? 0.15 : 0.0;
    RandomGraphData data = BuildRandomGraph(seed * 7 + 1, gopts);
    rdf::SparqlEngine engine(data.graph);
    for (int i = 0; i < 8; ++i) {
      CheckAgainstOracle(engine, data.graph, data.triples,
                         RandomQuery(rng, gopts));
    }
  });
}

// Planner differential: the cost-based join order (sorted permutation
// indexes, merge joins) and the naive textual order must produce identical
// result multisets on every query — the planner only reorders an
// order-invariant backtracking join. Cut modifiers are dropped so the full
// multiset is comparable.
TEST(SparqlOracleTest, PlannedOrderMatchesNaiveOrder) {
  ForEachSeed(9000, 40, [](uint64_t seed) {
    Rng rng(seed);
    RandomGraphOptions gopts;
    gopts.num_vertices = 8 + rng.Next(6);
    gopts.num_predicates = 2 + rng.Next(3);
    gopts.num_triples = 16 + rng.Next(20);
    gopts.literal_rate = rng.Chance(0.5) ? 0.15 : 0.0;
    RandomGraphData data = BuildRandomGraph(seed * 7 + 1, gopts);
    rdf::SparqlEngine planned(data.graph);
    rdf::SparqlEngine::Options naive_options;
    naive_options.use_planner = false;
    rdf::SparqlEngine naive(data.graph, naive_options);
    for (int i = 0; i < 8; ++i) {
      SparqlQuery q = RandomQuery(rng, gopts);
      q.limit.reset();
      q.offset.reset();
      SCOPED_TRACE("query: " + q.ToString());
      auto a = planned.Execute(q);
      auto b = naive.Execute(q);
      ASSERT_EQ(a.ok(), b.ok())
          << (a.ok() ? b.status().ToString() : a.status().ToString());
      if (!a.ok()) continue;
      EXPECT_EQ(a->ask_result, b->ask_result);
      ASSERT_EQ(a->var_names, b->var_names);
      std::vector<std::vector<rdf::TermId>> ra = a->rows;
      std::vector<std::vector<rdf::TermId>> rb = b->rows;
      std::sort(ra.begin(), ra.end());
      std::sort(rb.begin(), rb.end());
      EXPECT_EQ(ra, rb);
    }
    // The two engines really took the two paths.
    EXPECT_GT(planned.planner_counters().planned_queries, 0u);
    EXPECT_EQ(planned.planner_counters().naive_queries, 0u);
    EXPECT_EQ(naive.planner_counters().planned_queries, 0u);
    EXPECT_GT(naive.planner_counters().naive_queries, 0u);
  });
}

// The text round trip must not change semantics: Execute(Parse(ToString(q)))
// == Execute(q) for queries without literals-with-quotes (ToString does not
// escape, documented SPARQL-lite).
TEST(SparqlOracleTest, TextRoundTripPreservesAnswers) {
  ForEachSeed(9100, 25, [](uint64_t seed) {
    Rng rng(seed);
    RandomGraphOptions gopts;
    gopts.num_vertices = 8;
    gopts.num_triples = 20;
    RandomGraphData data = BuildRandomGraph(seed * 13 + 5, gopts);
    rdf::SparqlEngine engine(data.graph);
    for (int i = 0; i < 6; ++i) {
      SparqlQuery q = RandomQuery(rng, gopts);
      std::string text = q.ToString();
      SCOPED_TRACE("text: " + text);
      auto reparsed = rdf::SparqlParser::Parse(text);
      ASSERT_TRUE(reparsed.ok()) << reparsed.status().ToString();
      auto direct = engine.Execute(q);
      auto via_text = engine.Execute(*reparsed);
      ASSERT_EQ(direct.ok(), via_text.ok());
      if (!direct.ok()) continue;
      EXPECT_EQ(direct->ask_result, via_text->ask_result);
      EXPECT_EQ(direct->var_names, via_text->var_names);
      EXPECT_EQ(direct->rows, via_text->rows);
    }
  });
}

// Deterministic edge cases the random generator may not hit every run.
TEST(SparqlOracleTest, EdgeCases) {
  RandomGraphData data = BuildRandomGraph(77);
  rdf::SparqlEngine engine(data.graph);

  // Empty BGP: one empty solution; ASK over it is true.
  SparqlQuery empty;
  empty.form = SparqlQuery::Form::kAsk;
  auto r = engine.Execute(empty);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->ask_result);
  EXPECT_TRUE(NaiveSparqlEvaluate(data.graph, data.triples, empty).ask_result);

  // Repeated variable inside one pattern (?x p ?x) — self-loop join.
  SparqlQuery self;
  self.select_all = true;
  TriplePattern tp;
  tp.subject = PatternTerm::Var("x");
  tp.predicate = PatternTerm::Iri("p0");
  tp.object = PatternTerm::Var("x");
  self.patterns.push_back(tp);
  CheckAgainstOracle(engine, data.graph, data.triples, self);
}

}  // namespace
}  // namespace testing
}  // namespace ganswer
