// Differential test: TopKMatcher (TA rounds, cursor fan-out, neighborhood
// pruning, signature pre-checks, EdgeMemo) vs the exhaustive enumerate-and-
// rank oracle, over randomized graphs and randomized connected query
// graphs. The matcher must return the same top-k score multiset in the
// pinned MatchOrder whatever its configuration (serial / parallel /
// pruning on or off / TA on or off / signatures on or off / planner
// statistics on or off).

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "match/top_k_matcher.h"
#include "oracle/match_oracle.h"
#include "prop/prop_support.h"
#include "rdf/graph_stats.h"
#include "rdf/signature_index.h"
#include "test_support.h"

namespace ganswer {
namespace testing {
namespace {

using match::Match;
using match::QueryEdge;
using match::QueryGraph;
using match::QueryVertex;

constexpr double kScoreTol = 1e-9;

// Log-score sums may associate differently between the matcher (plan
// order) and the oracle (vertex-index order), so equal-score ties can land
// kScoreTol apart. Compare rank-by-rank scores with tolerance and compare
// assignments as sets within each near-equal-score block.
void ExpectTopKEquals(const std::vector<Match>& got,
                      std::vector<Match> want_all, size_t k) {
  std::vector<Match> want = std::move(want_all);
  match::SortAndCutTopK(&want, k);
  ASSERT_EQ(got.size(), want.size());
  EXPECT_TRUE(std::is_sorted(got.begin(), got.end(),
                             [](const Match& a, const Match& b) {
                               return match::MatchOrder(a, b);
                             }))
      << "matcher result violates the pinned MatchOrder";
  size_t i = 0;
  while (i < got.size()) {
    size_t j = i;
    while (j < got.size() &&
           std::abs(want[j].score - want[i].score) <= kScoreTol) {
      ++j;
    }
    std::vector<std::vector<rdf::TermId>> ga, wa;
    for (size_t t = i; t < j; ++t) {
      EXPECT_NEAR(got[t].score, want[t].score, kScoreTol) << "rank " << t;
      ga.push_back(got[t].assignment);
      wa.push_back(want[t].assignment);
    }
    std::sort(ga.begin(), ga.end());
    std::sort(wa.begin(), wa.end());
    EXPECT_EQ(ga, wa) << "assignment block starting at rank " << i;
    i = j;
  }
}

// The terms of the generated vocabulary actually interned in the graph.
// A vertex/predicate name the random generator never used in a triple has
// no TermId — picking blindly by name would inject garbage ids that no
// engine is expected to handle.
std::vector<rdf::TermId> PresentTerms(const rdf::RdfGraph& g,
                                      const char* prefix, size_t count) {
  std::vector<rdf::TermId> out;
  for (size_t i = 0; i < count; ++i) {
    auto id = g.Find(std::string(prefix) + std::to_string(i));
    if (id.has_value()) out.push_back(*id);
  }
  return out;
}

// Random connected query graph over the generated graph's vocabulary:
// 2-3 vertices (entity lists / classes / wildcards, at least one concrete),
// path / star / triangle topology, edges carrying single predicates,
// occasional 2-hop paths or wildcards.
QueryGraph RandomQueryGraph(Rng& rng, const rdf::RdfGraph& g,
                            const RandomGraphOptions& gopts) {
  QueryGraph query;
  const double confs[] = {0.9, 0.8, 0.7, 0.5, 0.4};
  const std::vector<rdf::TermId> vertices =
      PresentTerms(g, "v", gopts.num_vertices);
  const std::vector<rdf::TermId> predicates =
      PresentTerms(g, "p", gopts.num_predicates);
  const std::vector<rdf::TermId> classes =
      PresentTerms(g, "C", gopts.num_classes);

  auto entity_candidate = [&]() {
    linking::LinkCandidate c;
    c.vertex = rng.Pick(vertices);
    c.confidence = confs[rng.Next(5)];
    return c;
  };
  auto make_vertex = [&](bool allow_wildcard) {
    QueryVertex v;
    if (allow_wildcard && rng.Chance(0.35)) {
      v.wildcard = true;
      return v;
    }
    if (!classes.empty() && rng.Chance(0.3)) {
      linking::LinkCandidate c;
      c.vertex = rng.Pick(classes);
      c.is_class = true;
      c.confidence = confs[rng.Next(5)];
      v.candidates.push_back(c);
      return v;
    }
    size_t n = 1 + rng.Next(3);
    for (size_t i = 0; i < n; ++i) v.candidates.push_back(entity_candidate());
    return v;
  };
  auto make_edge = [&](int from, int to) {
    QueryEdge e;
    e.from = from;
    e.to = to;
    if (rng.Chance(0.12)) {
      e.wildcard = true;
      return e;
    }
    size_t n = 1 + rng.Next(2);
    for (size_t i = 0; i < n; ++i) {
      paraphrase::ParaphraseEntry entry;
      rdf::TermId p = rng.Pick(predicates);
      if (rng.Chance(0.25)) {
        rdf::TermId p2 = rng.Pick(predicates);
        entry.path.steps = {{p, rng.Chance(0.5)}, {p2, rng.Chance(0.5)}};
      } else {
        entry.path.steps = {{p, true}};
      }
      entry.confidence = confs[rng.Next(5)];
      e.candidates.push_back(entry);
    }
    return e;
  };

  size_t num_vertices = 2 + rng.Next(2);
  query.vertices.push_back(make_vertex(/*allow_wildcard=*/false));
  for (size_t i = 1; i < num_vertices; ++i) {
    query.vertices.push_back(make_vertex(/*allow_wildcard=*/true));
  }
  // Connected topology: a path, plus an optional closing edge (triangle).
  for (size_t i = 1; i < num_vertices; ++i) {
    int from = static_cast<int>(i - 1), to = static_cast<int>(i);
    if (rng.Chance(0.5)) std::swap(from, to);
    query.edges.push_back(make_edge(from, to));
  }
  if (num_vertices == 3 && rng.Chance(0.3)) {
    query.edges.push_back(make_edge(2, 0));
  }
  return query;
}

// 48 randomized (graph, query) instances at fixed seeds, each checked
// against the oracle under four matcher configurations.
TEST(MatchOracleTest, TopKEqualsEnumerateAndRank) {
  ForEachSeed(7000, 48, [](uint64_t seed) {
    Rng rng(seed);
    RandomGraphOptions gopts;
    gopts.num_vertices = 7 + rng.Next(4);
    gopts.num_predicates = 2 + rng.Next(2);
    gopts.num_triples = 14 + rng.Next(14);
    RandomGraphData data = BuildRandomGraph(seed * 31 + 3, gopts);
    QueryGraph query = RandomQueryGraph(rng, data.graph, gopts);
    MatchOracle oracle(data.graph, data.triples);
    std::vector<Match> all = oracle.AllMatches(query);

    rdf::SignatureIndex signatures(data.graph);
    rdf::GraphStats graph_stats = rdf::GraphStats::Compute(data.graph);
    size_t k = 1 + rng.Next(8);

    struct Config {
      const char* name;
      bool pruning;
      bool ta;
      int threads;
      bool use_signatures;
      bool use_stats;
    };
    const Config configs[] = {
        {"serial", true, true, 1, false, false},
        {"parallel", true, true, 4, true, false},
        {"no-pruning", false, true, 1, false, false},
        {"exhaustive", true, false, 1, true, false},
        {"planned", true, true, 1, true, true},
        {"planned-exhaustive", false, false, 1, false, true},
    };
    for (const Config& c : configs) {
      SCOPED_TRACE(c.name);
      match::TopKMatcher::Options opt;
      opt.k = k;
      opt.neighborhood_pruning = c.pruning;
      opt.ta_early_stop = c.ta;
      opt.max_matches_per_anchor = 0;  // no caps: oracle has none
      opt.exec.threads = c.threads;
      opt.signatures = c.use_signatures ? &signatures : nullptr;
      opt.stats = c.use_stats ? &graph_stats : nullptr;
      auto got = match::TopKMatcher(&data.graph, opt).FindTopK(query);
      ASSERT_TRUE(got.ok()) << got.status().ToString();
      ExpectTopKEquals(*got, all, k);
    }
  });
}

// Single-vertex queries (no edges) take a separate code path in the
// matcher: the concrete vertex's domain is the answer set.
TEST(MatchOracleTest, SingleVertexQueriesMatchOracle) {
  ForEachSeed(7200, 12, [](uint64_t seed) {
    Rng rng(seed);
    RandomGraphOptions gopts;
    RandomGraphData data = BuildRandomGraph(seed * 17 + 9, gopts);
    QueryGraph query;
    QueryVertex v;
    auto cls = data.graph.Find("C0");
    if (cls.has_value() && rng.Chance(0.5)) {
      linking::LinkCandidate c;
      c.vertex = *cls;
      c.is_class = true;
      c.confidence = 0.8;
      v.candidates.push_back(c);
    } else {
      std::vector<rdf::TermId> vertices =
          PresentTerms(data.graph, "v", gopts.num_vertices);
      ASSERT_FALSE(vertices.empty());
      for (int i = 0; i < 2; ++i) {
        linking::LinkCandidate c;
        c.vertex = rng.Pick(vertices);
        c.confidence = 0.5 + 0.1 * static_cast<double>(rng.Next(5));
        v.candidates.push_back(c);
      }
    }
    query.vertices.push_back(v);

    MatchOracle oracle(data.graph, data.triples);
    std::vector<Match> all = oracle.AllMatches(query);
    match::TopKMatcher::Options opt;
    opt.k = 4;
    auto got = match::TopKMatcher(&data.graph, opt).FindTopK(query);
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    ExpectTopKEquals(*got, all, opt.k);
  });
}

}  // namespace
}  // namespace testing
}  // namespace ganswer
