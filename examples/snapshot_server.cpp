// Build-once, serve-many: the snapshot workflow for production startups.
//
//   ./build/examples/snapshot_server build kb.snap   # offline, pay once
//   ./build/examples/snapshot_server serve kb.snap   # online over HTTP
//   ./build/examples/snapshot_server demo            # both, self-contained
//
// `build` runs the full offline phase on the generated demo KB — mining
// the paraphrase dictionary (Algorithm 1) and constructing the entity and
// signature indexes — then writes everything into one versioned,
// checksummed snapshot file. `serve` hands that file to the canonical
// serving path, server::QaService (the same event-loop + worker-pool tier
// behind qa_httpd), and answers POST /answer over HTTP until SIGINT.
// `demo` runs build, boots the service on an ephemeral port, and drives it
// over a real loopback socket with canned questions, reporting the
// rebuild-vs-load timings and the cache counters.

#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>

#include "common/timer.h"
#include "datagen/kb_generator.h"
#include "datagen/phrase_dataset_generator.h"
#include "linking/entity_index.h"
#include "nlp/lexicon.h"
#include "paraphrase/dictionary_builder.h"
#include "rdf/signature_index.h"
#include "server/http_client.h"
#include "server/qa_service.h"
#include "store/snapshot.h"

using namespace ganswer;

namespace {

// The offline phase: demo KB + mined-and-verified dictionary + indexes,
// serialized into `path`. Returns the wall-clock cost of the rebuild work
// the snapshot will replace.
int BuildSnapshot(const std::string& path, double* rebuild_ms) {
  WallTimer timer;
  auto kb = datagen::KbGenerator::Generate({});
  if (!kb.ok()) {
    std::fprintf(stderr, "KB generation failed: %s\n",
                 kb.status().ToString().c_str());
    return 1;
  }
  auto phrases = datagen::PhraseDatasetGenerator::Generate(*kb, {});
  auto dataset = datagen::PhraseDatasetGenerator::StripGold(phrases);

  nlp::Lexicon lexicon;
  paraphrase::ParaphraseDictionary mined(&lexicon);
  paraphrase::DictionaryBuilder::Options mopt;
  mopt.max_path_length = 3;
  paraphrase::DictionaryBuilder builder(mopt);
  Status st = builder.Build(kb->graph, dataset, &mined);
  if (!st.ok()) {
    std::fprintf(stderr, "mining failed: %s\n", st.ToString().c_str());
    return 1;
  }
  paraphrase::ParaphraseDictionary verified(&lexicon);
  datagen::VerifyDictionary(phrases, kb->graph, mined, &verified);

  rdf::SignatureIndex signatures(kb->graph);
  linking::EntityIndex entity_index(kb->graph);
  if (rebuild_ms != nullptr) *rebuild_ms = timer.ElapsedMillis();

  std::string bytes;
  store::SnapshotStats stats;
  st = store::WriteSnapshot(kb->graph, signatures, entity_index, verified,
                            &bytes, &stats);
  if (!st.ok()) {
    std::fprintf(stderr, "snapshot write failed: %s\n", st.ToString().c_str());
    return 1;
  }
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  out.flush();
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return 1;
  }
  std::printf("wrote %s: %.2f MB (graph %zu B, signatures %zu B, "
              "entity index %zu B, dictionary %zu B), fingerprint %016llx\n",
              path.c_str(), stats.total_bytes / (1024.0 * 1024.0),
              stats.graph_bytes, stats.signature_bytes,
              stats.entity_index_bytes, stats.dictionary_bytes,
              static_cast<unsigned long long>(stats.fingerprint));
  return 0;
}

// The online phase, on the one canonical serving path: QaService loads the
// snapshot (bulk reads, zero rebuilds, cache on) and serves HTTP.
int StartService(const std::string& path, int port,
                 std::unique_ptr<server::QaService>* service,
                 double* load_ms) {
  server::QaService::Options options;
  options.snapshot_path = path;
  options.port = port;
  options.threads = 2;
  options.question_cache_capacity = 1024;
  WallTimer timer;
  *service = std::make_unique<server::QaService>(options);
  if (Status st = (*service)->Start(); !st.ok()) {
    std::fprintf(stderr, "startup failed: %s\n", st.ToString().c_str());
    return 1;
  }
  if (load_ms != nullptr) *load_ms = timer.ElapsedMillis();
  std::printf("serving %zu triples on 127.0.0.1:%d\n",
              (*service)->snapshot().graph->NumTriples(),
              (*service)->port());
  return 0;
}

int RunDemo() {
  const std::string path = "snapshot_server_demo.snap";
  double rebuild_ms = 0;
  if (int rc = BuildSnapshot(path, &rebuild_ms); rc != 0) return rc;

  std::unique_ptr<server::QaService> service;
  double startup_ms = 0;
  if (int rc = StartService(path, /*port=*/0, &service, &startup_ms);
      rc != 0) {
    return rc;
  }
  std::printf("offline rebuild was %.1f ms -> served after %.1f ms of "
              "startup (load + bind)\n\n", rebuild_ms, startup_ms);

  server::BlockingHttpClient client;
  if (Status st = client.Connect("127.0.0.1", service->port()); !st.ok()) {
    std::fprintf(stderr, "connect failed: %s\n", st.ToString().c_str());
    return 1;
  }
  const char* questions[] = {
      "Who is the mayor of Berlin ?",
      "What is the capital of Canada ?",
      "Who is the mayor of Berlin ?",  // repeat: served from the cache
  };
  for (const char* q : questions) {
    auto r = client.Post("/answer",
                         std::string("{\"question\": \"") + q + "\"}");
    if (!r.ok()) {
      std::fprintf(stderr, "request failed: %s\n",
                   r.status().ToString().c_str());
      return 1;
    }
    std::printf("Q: %s\n  HTTP %d %s\n", q, r->status, r->body.c_str());
  }

  auto stats = service->system()->cache_stats();
  std::printf("\ncache: %llu hits, %llu misses, %zu entries\n",
              static_cast<unsigned long long>(stats.hits),
              static_cast<unsigned long long>(stats.misses), stats.entries);
  client.Close();
  service->Shutdown();
  std::remove(path.c_str());
  return stats.hits >= 1 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc >= 3 && std::strcmp(argv[1], "build") == 0) {
    return BuildSnapshot(argv[2], nullptr);
  }
  if (argc >= 3 && std::strcmp(argv[1], "serve") == 0) {
    std::unique_ptr<server::QaService> service;
    int port = argc >= 4 ? std::atoi(argv[3]) : 8080;
    if (int rc = StartService(argv[2], port, &service, nullptr); rc != 0) {
      return rc;
    }
    // Serve until the process is killed; qa_httpd is the flagship binary
    // with the full signal-driven graceful shutdown.
    std::printf("POST /answer to port %d; Ctrl-C to stop\n",
                service->port());
    for (;;) pause();
  }
  if (argc == 1 || std::strcmp(argv[1], "demo") == 0) {
    return RunDemo();
  }
  std::fprintf(stderr,
               "usage: %s build FILE | serve FILE [PORT] | demo\n", argv[0]);
  return 2;
}
