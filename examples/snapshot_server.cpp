// Build-once, serve-many: the snapshot workflow for production startups.
//
//   ./build/examples/snapshot_server build kb.snap   # offline, pay once
//   ./build/examples/snapshot_server serve kb.snap   # online, starts cold
//   ./build/examples/snapshot_server demo            # both, self-contained
//
// `build` runs the full offline phase on the generated demo KB — mining
// the paraphrase dictionary (Algorithm 1) and constructing the entity and
// signature indexes — then writes everything into one versioned,
// checksummed snapshot file. `serve` loads that file with bulk reads (no
// re-interning, no re-indexing), wires the prebuilt indexes straight into
// GAnswer with the question cache on, and answers questions from stdin.
// `demo` runs build then serve-with-canned-questions and reports the
// rebuild-vs-load timings and the cache counters.

#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>

#include "common/timer.h"
#include "datagen/kb_generator.h"
#include "datagen/phrase_dataset_generator.h"
#include "linking/entity_index.h"
#include "nlp/lexicon.h"
#include "paraphrase/dictionary_builder.h"
#include "qa/ganswer.h"
#include "rdf/signature_index.h"
#include "store/snapshot.h"

using namespace ganswer;

namespace {

// The offline phase: demo KB + mined-and-verified dictionary + indexes,
// serialized into `path`. Returns the wall-clock cost of the rebuild work
// the snapshot will replace.
int BuildSnapshot(const std::string& path, double* rebuild_ms) {
  WallTimer timer;
  auto kb = datagen::KbGenerator::Generate({});
  if (!kb.ok()) {
    std::fprintf(stderr, "KB generation failed: %s\n",
                 kb.status().ToString().c_str());
    return 1;
  }
  auto phrases = datagen::PhraseDatasetGenerator::Generate(*kb, {});
  auto dataset = datagen::PhraseDatasetGenerator::StripGold(phrases);

  nlp::Lexicon lexicon;
  paraphrase::ParaphraseDictionary mined(&lexicon);
  paraphrase::DictionaryBuilder::Options mopt;
  mopt.max_path_length = 3;
  paraphrase::DictionaryBuilder builder(mopt);
  Status st = builder.Build(kb->graph, dataset, &mined);
  if (!st.ok()) {
    std::fprintf(stderr, "mining failed: %s\n", st.ToString().c_str());
    return 1;
  }
  paraphrase::ParaphraseDictionary verified(&lexicon);
  datagen::VerifyDictionary(phrases, kb->graph, mined, &verified);

  rdf::SignatureIndex signatures(kb->graph);
  linking::EntityIndex entity_index(kb->graph);
  if (rebuild_ms != nullptr) *rebuild_ms = timer.ElapsedMillis();

  std::string bytes;
  store::SnapshotStats stats;
  st = store::WriteSnapshot(kb->graph, signatures, entity_index, verified,
                            &bytes, &stats);
  if (!st.ok()) {
    std::fprintf(stderr, "snapshot write failed: %s\n", st.ToString().c_str());
    return 1;
  }
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  out.flush();
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return 1;
  }
  std::printf("wrote %s: %.2f MB (graph %zu B, signatures %zu B, "
              "entity index %zu B, dictionary %zu B), fingerprint %016llx\n",
              path.c_str(), stats.total_bytes / (1024.0 * 1024.0),
              stats.graph_bytes, stats.signature_bytes,
              stats.entity_index_bytes, stats.dictionary_bytes,
              static_cast<unsigned long long>(stats.fingerprint));
  return 0;
}

struct Server {
  nlp::Lexicon lexicon;
  store::Snapshot snapshot;
  std::unique_ptr<qa::GAnswer> system;
  double load_ms = 0;
};

// The online phase: one snapshot read, zero rebuilds, cache on.
int StartServer(const std::string& path, Server* server) {
  WallTimer timer;
  auto snapshot = store::ReadSnapshotFile(path, &server->lexicon);
  server->load_ms = timer.ElapsedMillis();
  if (!snapshot.ok()) {
    std::fprintf(stderr, "snapshot load failed: %s\n",
                 snapshot.status().ToString().c_str());
    return 1;
  }
  server->snapshot = std::move(snapshot).value();

  qa::GAnswer::Options opt;
  opt.entity_index = server->snapshot.entity_index.get();
  opt.matching.signatures = server->snapshot.signatures.get();
  opt.snapshot_identity = server->snapshot.fingerprint;
  opt.question_cache_capacity = 1024;
  server->system = std::make_unique<qa::GAnswer>(
      server->snapshot.graph.get(), &server->lexicon,
      server->snapshot.dictionary.get(), opt);
  std::printf("serving %zu triples, snapshot loaded in %.2f ms\n",
              server->snapshot.graph->NumTriples(), server->load_ms);
  return 0;
}

void AnswerOne(const qa::GAnswer& system, const std::string& q) {
  auto r = system.Ask(q);
  if (!r.ok()) {
    std::printf("  error: %s\n", r.status().ToString().c_str());
    return;
  }
  std::printf("Q: %s%s\n", q.c_str(), r->cache_hit ? "   [cache hit]" : "");
  if (r->is_ask) {
    std::printf("  %s\n", r->ask_result ? "yes" : "no");
  } else if (r->answers.empty()) {
    std::printf("  (no answers)\n");
  } else {
    for (const auto& a : r->answers) {
      std::printf("  %s  (%.3f)\n", a.text.c_str(), a.score);
    }
  }
  std::printf("  understanding %.2f ms, matching %.2f ms\n",
              r->understanding_ms, r->evaluation_ms);
}

int RunDemo() {
  const std::string path = "snapshot_server_demo.snap";
  double rebuild_ms = 0;
  if (int rc = BuildSnapshot(path, &rebuild_ms); rc != 0) return rc;

  Server server;
  if (int rc = StartServer(path, &server); rc != 0) return rc;
  std::printf("offline rebuild was %.1f ms -> %.0fx faster startup\n\n",
              rebuild_ms,
              server.load_ms > 0 ? rebuild_ms / server.load_ms : 0.0);

  const char* questions[] = {
      "Who is the mayor of Berlin ?",
      "What is the capital of Canada ?",
      "Who is the mayor of Berlin ?",  // repeat: served from the cache
  };
  for (const char* q : questions) AnswerOne(*server.system, q);

  auto stats = server.system->cache_stats();
  std::printf("\ncache: %llu hits, %llu misses, %zu entries\n",
              static_cast<unsigned long long>(stats.hits),
              static_cast<unsigned long long>(stats.misses), stats.entries);
  std::remove(path.c_str());
  return stats.hits >= 1 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc >= 3 && std::strcmp(argv[1], "build") == 0) {
    return BuildSnapshot(argv[2], nullptr);
  }
  if (argc >= 3 && std::strcmp(argv[1], "serve") == 0) {
    Server server;
    if (int rc = StartServer(argv[2], &server); rc != 0) return rc;
    std::string line;
    while (std::getline(std::cin, line)) {
      if (!line.empty()) AnswerOne(*server.system, line);
    }
    return 0;
  }
  if (argc == 1 || std::strcmp(argv[1], "demo") == 0) {
    return RunDemo();
  }
  std::fprintf(stderr,
               "usage: %s build FILE | serve FILE | demo\n", argv[0]);
  return 2;
}
