// qa_httpd — the production serving binary: snapshot in, HTTP out.
//
//   ./build/examples/qa_httpd --snapshot kb.snap --port 8080 \
//       --threads 4 --max-queue 64
//
// Loads one store/snapshot file (build it with `snapshot_server build` or
// `qa_httpd --build-demo-snapshot`), starts the QaService event loop, and
// answers until SIGTERM/SIGINT:
//
//   curl localhost:8080/healthz
//   curl -d '{"question": "Who is the mayor of Berlin ?"}' \
//        localhost:8080/answer
//   curl -d '{"query": "SELECT ?x WHERE { ?x <is_mayor_of> <Berlin> }"}' \
//        localhost:8080/sparql
//   curl localhost:8080/stats
//
// With --live DIR the snapshot only bootstraps a live store at DIR and the
// server additionally accepts streaming updates, applied without a rebuild
// and visible to the next query:
//
//   curl -d '<Berlin> <population> "3700000" .' localhost:8080/update
//
// Shutdown is graceful: the listen socket closes first, in-flight requests
// drain, responses flush, then the process exits 0.

#include <signal.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "common/logging.h"
#include "datagen/kb_generator.h"
#include "datagen/phrase_dataset_generator.h"
#include "nlp/lexicon.h"
#include "paraphrase/dictionary_builder.h"
#include "server/qa_service.h"
#include "server/shard_worker.h"
#include "store/sharded_kb.h"
#include "store/snapshot.h"

using namespace ganswer;

namespace {

// SIGTERM/SIGINT land here; a self-pipe write is async-signal-safe and
// wakes the main thread, which runs the actual (non-signal-safe) shutdown.
int g_shutdown_pipe[2] = {-1, -1};

void HandleSignal(int) {
  char byte = 1;
  [[maybe_unused]] ssize_t n = ::write(g_shutdown_pipe[1], &byte, 1);
}

int BuildDemoSnapshot(const std::string& path) {
  auto kb = datagen::KbGenerator::Generate({});
  if (!kb.ok()) {
    std::fprintf(stderr, "KB generation failed: %s\n",
                 kb.status().ToString().c_str());
    return 1;
  }
  auto phrases = datagen::PhraseDatasetGenerator::Generate(*kb, {});
  auto dataset = datagen::PhraseDatasetGenerator::StripGold(phrases);
  nlp::Lexicon lexicon;
  paraphrase::ParaphraseDictionary mined(&lexicon);
  paraphrase::DictionaryBuilder::Options mopt;
  mopt.max_path_length = 3;
  paraphrase::DictionaryBuilder builder(mopt);
  if (Status st = builder.Build(kb->graph, dataset, &mined); !st.ok()) {
    std::fprintf(stderr, "mining failed: %s\n", st.ToString().c_str());
    return 1;
  }
  paraphrase::ParaphraseDictionary verified(&lexicon);
  datagen::VerifyDictionary(phrases, kb->graph, mined, &verified);
  if (Status st = store::WriteSnapshotFile(kb->graph, verified, path);
      !st.ok()) {
    std::fprintf(stderr, "snapshot write failed: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("wrote demo snapshot to %s\n", path.c_str());
  return 0;
}

// Reuses an existing sharded KB next to the snapshot when its manifest
// matches the requested layout, else partitions and writes one.
StatusOr<store::ShardManifest> EnsureShards(const std::string& snapshot_path,
                                            uint32_t num_shards,
                                            uint32_t halo_hops) {
  const std::string manifest_path = store::ShardManifestPath(snapshot_path);
  if (auto existing = store::ReadShardManifest(manifest_path);
      existing.ok() && existing->num_shards == num_shards &&
      existing->halo_hops == halo_hops) {
    bool all_present = true;
    for (const store::ShardInfo& shard : existing->shards) {
      if (::access(shard.path.c_str(), R_OK) != 0) all_present = false;
    }
    if (all_present) return existing;
  }
  nlp::Lexicon lexicon;
  auto snapshot = store::ReadSnapshotFile(snapshot_path, &lexicon);
  if (!snapshot.ok()) return snapshot.status();
  store::ShardSpec spec;
  spec.num_shards = num_shards;
  spec.halo_hops = halo_hops;
  std::printf("partitioning %llu triples into %u shard(s), halo %u ...\n",
              static_cast<unsigned long long>(snapshot->graph->NumTriples()),
              num_shards, halo_hops);
  return store::WriteShardedKb(*snapshot->graph, *snapshot->dictionary,
                               snapshot_path, spec);
}

int Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s --snapshot FILE [--port N] [--address A] [--threads N]\n"
      "          [--pin-workers]\n"
      "          [--max-queue N] [--deadline-ms N] [--no-fast-path]\n"
      "          [--cache N] [--idle-timeout-ms N] [--mmap]\n"
      "          [--shards N] [--halo-hops H] [--shard-timeout-ms N]\n"
      "          [--live DIR [--compact-threshold N]]\n"
      "       %s --snapshot FILE --build-shards --shards N [--halo-hops H]\n"
      "       %s --build-demo-snapshot FILE\n"
      "--live serves a live store at DIR (bootstrapped from --snapshot on\n"
      "first start) and accepts streaming updates on POST /update;\n"
      "incompatible with --shards.\n",
      argv0, argv0, argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  server::QaService::Options options;
  int num_shards = 0;
  uint32_t halo_hops = store::ShardSpec{}.halo_hops;
  bool build_shards_only = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--snapshot") == 0 && i + 1 < argc) {
      options.snapshot_path = argv[++i];
    } else if (std::strcmp(argv[i], "--port") == 0 && i + 1 < argc) {
      options.port = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--address") == 0 && i + 1 < argc) {
      options.bind_address = argv[++i];
    } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      options.threads = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--pin-workers") == 0) {
      options.pin_workers = true;
    } else if (std::strcmp(argv[i], "--max-queue") == 0 && i + 1 < argc) {
      options.max_queue = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--deadline-ms") == 0 && i + 1 < argc) {
      options.deadline_ms = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--no-fast-path") == 0) {
      options.cached_fast_path = false;
    } else if (std::strcmp(argv[i], "--cache") == 0 && i + 1 < argc) {
      options.question_cache_capacity =
          static_cast<size_t>(std::atoll(argv[++i]));
    } else if (std::strcmp(argv[i], "--idle-timeout-ms") == 0 &&
               i + 1 < argc) {
      options.idle_timeout_ms = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--mmap") == 0) {
      options.mmap_load = true;
    } else if (std::strcmp(argv[i], "--live") == 0 && i + 1 < argc) {
      options.live_dir = argv[++i];
    } else if (std::strcmp(argv[i], "--compact-threshold") == 0 &&
               i + 1 < argc) {
      options.live_compact_threshold =
          static_cast<size_t>(std::atoll(argv[++i]));
    } else if (std::strcmp(argv[i], "--shards") == 0 && i + 1 < argc) {
      num_shards = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--halo-hops") == 0 && i + 1 < argc) {
      halo_hops = static_cast<uint32_t>(std::atoi(argv[++i]));
    } else if (std::strcmp(argv[i], "--shard-timeout-ms") == 0 &&
               i + 1 < argc) {
      options.shard_timeout_ms = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--build-shards") == 0) {
      build_shards_only = true;
    } else if (std::strcmp(argv[i], "--build-demo-snapshot") == 0 &&
               i + 1 < argc) {
      return BuildDemoSnapshot(argv[++i]);
    } else {
      return Usage(argv[0]);
    }
  }
  if (options.snapshot_path.empty()) return Usage(argv[0]);
  if (!options.live_dir.empty() && (num_shards >= 1 || build_shards_only)) {
    std::fprintf(stderr, "--live is incompatible with --shards\n");
    return 2;
  }

  if (build_shards_only) {
    if (num_shards < 1) return Usage(argv[0]);
    auto manifest = EnsureShards(options.snapshot_path,
                                 static_cast<uint32_t>(num_shards), halo_hops);
    if (!manifest.ok()) {
      std::fprintf(stderr, "shard build failed: %s\n",
                   manifest.status().ToString().c_str());
      return 1;
    }
    for (const store::ShardInfo& shard : manifest->shards) {
      std::printf("  %s: %llu owned / %llu total triples\n",
                  shard.path.c_str(),
                  static_cast<unsigned long long>(shard.owned_triples),
                  static_cast<unsigned long long>(shard.total_triples));
    }
    std::printf("wrote shard manifest to %s\n",
                store::ShardManifestPath(options.snapshot_path).c_str());
    return 0;
  }

  // Single-process sharded mode: partition the KB (or reuse an existing
  // matching sharded build), bring up one in-process ShardWorker per shard
  // on ephemeral loopback ports, and point the QaService router at them.
  // Operationally this is the scatter-gather demo / test topology; the
  // workers could equally run as separate processes on other machines.
  std::vector<std::unique_ptr<server::ShardWorker>> workers;
  if (num_shards >= 1) {
    auto manifest = EnsureShards(options.snapshot_path,
                                 static_cast<uint32_t>(num_shards), halo_hops);
    if (!manifest.ok()) {
      std::fprintf(stderr, "shard build failed: %s\n",
                   manifest.status().ToString().c_str());
      return 1;
    }
    for (uint32_t shard = 0; shard < manifest->num_shards; ++shard) {
      server::ShardWorker::Options worker_options;
      worker_options.snapshot_path = manifest->shards[shard].path;
      worker_options.mmap_load = options.mmap_load;
      worker_options.shard_id = shard;
      worker_options.num_shards = manifest->num_shards;
      worker_options.halo_hops = manifest->halo_hops;
      auto worker =
          std::make_unique<server::ShardWorker>(std::move(worker_options));
      if (Status st = worker->Start(); !st.ok()) {
        std::fprintf(stderr, "shard %u startup failed: %s\n", shard,
                     st.ToString().c_str());
        return 1;
      }
      options.shard_endpoints.push_back({"127.0.0.1", worker->port()});
      workers.push_back(std::move(worker));
    }
    options.shard_halo_hops = manifest->halo_hops;
    std::printf("started %u in-process shard worker(s)\n",
                manifest->num_shards);
  }

  if (::pipe(g_shutdown_pipe) != 0) {
    std::perror("pipe");
    return 1;
  }
  struct sigaction action;
  std::memset(&action, 0, sizeof(action));
  action.sa_handler = HandleSignal;
  ::sigaction(SIGTERM, &action, nullptr);
  ::sigaction(SIGINT, &action, nullptr);
  ::signal(SIGPIPE, SIG_IGN);  // broken client sockets are per-write errors

  server::QaService service(options);
  if (Status st = service.Start(); !st.ok()) {
    std::fprintf(stderr, "startup failed: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("qa_httpd serving on %s:%d (SIGTERM to stop)\n",
              options.bind_address.c_str(), service.port());
  std::fflush(stdout);

  // Block until a signal arrives.
  char byte;
  while (::read(g_shutdown_pipe[0], &byte, 1) < 0 && errno == EINTR) {
  }
  service.Shutdown();  // router first: no more scatters reach the workers
  for (auto& worker : workers) worker->Shutdown();

  server::QaService::EndpointStats answers = service.answer_stats();
  std::printf("served %llu /answer requests (%llu errors), rejected %llu\n",
              static_cast<unsigned long long>(answers.requests),
              static_cast<unsigned long long>(answers.errors),
              static_cast<unsigned long long>(service.rejected_total()));
  return 0;
}
