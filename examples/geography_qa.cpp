// Geography Q/A: capitals, rivers, mountains and yes/no questions over the
// generated KB — the domain behind several of the paper's Table 11
// questions (Q21 capital of Canada, Q44 Weser, Q45 Rhine, Q83 Everest).
//
//   ./build/examples/geography_qa

#include <cstdio>

#include "datagen/kb_generator.h"
#include "datagen/phrase_dataset_generator.h"
#include "paraphrase/dictionary_builder.h"
#include "qa/ganswer.h"

using namespace ganswer;

int main() {
  auto kb = datagen::KbGenerator::Generate({});
  if (!kb.ok()) return 1;
  auto phrases = datagen::PhraseDatasetGenerator::Generate(*kb, {});
  auto dataset = datagen::PhraseDatasetGenerator::StripGold(phrases);
  nlp::Lexicon lexicon;
  paraphrase::ParaphraseDictionary mined(&lexicon);
  paraphrase::DictionaryBuilder::Options mopt;
  mopt.max_path_length = 3;
  if (!paraphrase::DictionaryBuilder(mopt)
           .Build(kb->graph, dataset, &mined)
           .ok()) {
    return 1;
  }
  paraphrase::ParaphraseDictionary dict(&lexicon);
  datagen::VerifyDictionary(phrases, kb->graph, mined, &dict);
  qa::GAnswer system(&kb->graph, &lexicon, &dict);

  const char* questions[] = {
      "What is the capital of Canada ?",
      "What is the largest city in Australia ?",
      "Which cities does the Weser flow through ?",
      "Which countries are connected by the Rhine ?",
      "How high is Mount Everest ?",
      "What is the time zone of Salt Lake City ?",
      "What are the nicknames of San Francisco ?",
      "Is Ottawa the capital of Canada ?",
      "Is Sydney the capital of Canada ?",
      "In which city was the former Dutch queen Juliana buried ?",
  };

  for (const char* q : questions) {
    auto r = system.Ask(q);
    std::printf("Q: %s\n", q);
    if (!r.ok()) {
      std::printf("A: <error: %s>\n\n", r.status().ToString().c_str());
      continue;
    }
    if (r->is_ask) {
      std::printf("A: %s\n", r->ask_result ? "yes" : "no");
    } else if (r->answers.empty()) {
      std::printf("A: <no answer>\n");
    } else {
      std::printf("A:");
      for (const auto& a : r->answers) std::printf(" %s", a.text.c_str());
      std::printf("\n");
    }
    std::printf("   (%.2f ms)\n\n", r->TotalMs());
  }
  return 0;
}
