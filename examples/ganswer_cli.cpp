// Command-line Q/A tool: the system a downstream user would actually run.
//
//   ./build/examples/ganswer_cli                       # generated demo KB
//   ./build/examples/ganswer_cli --kb data.nt --dict dict.tsv
//   echo "Who is the mayor of Berlin ?" | ./build/examples/ganswer_cli
//
// Flags:
//   --kb FILE      load the knowledge base from an N-Triples file
//   --dict FILE    load the paraphrase dictionary (offline_dictionary's
//                  save format) instead of mining it
//   --superlatives enable the aggregation extension
//   --explain      print the semantic query graph and top-k SPARQL
//                  queries alongside the answers
//   --eval FILE    batch mode: run a workload TSV (datagen::SaveWorkload
//                  format) and print QALD-style metrics instead of a REPL
//   --save-workload FILE  write the generated demo workload as TSV
//   --vocab FILE   extend the lexicon ("noun spaceship" / "verb zorch" /
//                  "adjective quantal" lines) for file-loaded KBs

#include <cstdio>
#include <algorithm>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>

#include "datagen/kb_generator.h"
#include "datagen/phrase_dataset_generator.h"
#include "datagen/workload.h"
#include "paraphrase/dictionary_builder.h"
#include "qa/ganswer.h"
#include "qa/sparql_output.h"
#include "rdf/ntriples.h"

using namespace ganswer;

int main(int argc, char** argv) {
  std::string kb_path, dict_path, eval_path, save_workload_path, vocab_path;
  bool superlatives = false, explain = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--kb") == 0 && i + 1 < argc) {
      kb_path = argv[++i];
    } else if (std::strcmp(argv[i], "--dict") == 0 && i + 1 < argc) {
      dict_path = argv[++i];
    } else if (std::strcmp(argv[i], "--eval") == 0 && i + 1 < argc) {
      eval_path = argv[++i];
    } else if (std::strcmp(argv[i], "--save-workload") == 0 && i + 1 < argc) {
      save_workload_path = argv[++i];
    } else if (std::strcmp(argv[i], "--vocab") == 0 && i + 1 < argc) {
      vocab_path = argv[++i];
    } else if (std::strcmp(argv[i], "--superlatives") == 0) {
      superlatives = true;
    } else if (std::strcmp(argv[i], "--explain") == 0) {
      explain = true;
    } else {
      std::fprintf(stderr, "unknown flag %s\n", argv[i]);
      return 2;
    }
  }

  // Knowledge base: from file or generated demo.
  rdf::RdfGraph graph;
  datagen::KbGenerator::GeneratedKb generated;
  rdf::RdfGraph* kb = &graph;
  if (!kb_path.empty()) {
    Status st = rdf::NTriplesReader::ParseFile(kb_path, &graph);
    if (st.ok()) st = graph.Finalize();
    if (!st.ok()) {
      std::fprintf(stderr, "loading %s: %s\n", kb_path.c_str(),
                   st.ToString().c_str());
      return 1;
    }
  } else {
    auto g = datagen::KbGenerator::Generate({});
    if (!g.ok()) return 1;
    generated = std::move(g).value();
    kb = &generated.graph;
  }
  std::fprintf(stderr, "KB: %zu triples, %zu terms\n", kb->NumTriples(),
               kb->NumTerms());

  // Dictionary: from file, or mined + verified on the generated KB.
  nlp::Lexicon lexicon;
  if (!vocab_path.empty()) {
    std::ifstream vin(vocab_path);
    if (!vin) {
      std::fprintf(stderr, "cannot open %s\n", vocab_path.c_str());
      return 1;
    }
    Status st = lexicon.LoadVocabulary(&vin);
    if (!st.ok()) {
      std::fprintf(stderr, "vocabulary: %s\n", st.ToString().c_str());
      return 1;
    }
  }
  paraphrase::ParaphraseDictionary dict(&lexicon);
  if (!dict_path.empty()) {
    std::ifstream in(dict_path);
    if (!in) {
      std::fprintf(stderr, "cannot open %s\n", dict_path.c_str());
      return 1;
    }
    Status st = dict.Load(&in, kb);
    if (!st.ok()) {
      std::fprintf(stderr, "loading dictionary: %s\n", st.ToString().c_str());
      return 1;
    }
  } else if (kb_path.empty()) {
    auto phrases = datagen::PhraseDatasetGenerator::Generate(generated, {});
    auto dataset = datagen::PhraseDatasetGenerator::StripGold(phrases);
    paraphrase::ParaphraseDictionary mined(&lexicon);
    paraphrase::DictionaryBuilder::Options mopt;
    mopt.max_path_length = 3;
    if (!paraphrase::DictionaryBuilder(mopt)
             .Build(*kb, dataset, &mined)
             .ok()) {
      return 1;
    }
    datagen::VerifyDictionary(phrases, *kb, mined, &dict);
  } else {
    std::fprintf(stderr,
                 "--kb without --dict: no relation phrases known; pass a "
                 "dictionary mined with examples/offline_dictionary\n");
    return 2;
  }
  std::fprintf(stderr, "dictionary: %zu relation phrases\n",
               dict.NumPhrases());

  qa::GAnswer::Options options;
  options.enable_superlatives = superlatives;
  qa::GAnswer system(kb, &lexicon, &dict, options);

  if (!save_workload_path.empty()) {
    if (kb_path.empty()) {
      auto workload = datagen::WorkloadGenerator::Generate(generated, {});
      std::ofstream out(save_workload_path);
      Status st = datagen::SaveWorkload(workload, &out);
      if (!st.ok()) {
        std::fprintf(stderr, "%s\n", st.ToString().c_str());
        return 1;
      }
      std::fprintf(stderr, "wrote %zu questions to %s\n", workload.size(),
                   save_workload_path.c_str());
    } else {
      std::fprintf(stderr, "--save-workload needs the generated demo KB\n");
      return 2;
    }
  }

  if (!eval_path.empty()) {
    std::ifstream in(eval_path);
    if (!in) {
      std::fprintf(stderr, "cannot open %s\n", eval_path.c_str());
      return 1;
    }
    auto workload = datagen::LoadWorkload(&in);
    if (!workload.ok()) {
      std::fprintf(stderr, "%s\n", workload.status().ToString().c_str());
      return 1;
    }
    size_t right = 0, partial = 0, wrong = 0;
    for (const auto& q : *workload) {
      auto r = system.Ask(q.text);
      if (!r.ok()) {
        ++wrong;
        continue;
      }
      std::vector<std::string> answers;
      for (const auto& a : r->answers) answers.push_back(a.text);
      std::sort(answers.begin(), answers.end());
      std::vector<std::string> gold = q.gold_answers;
      std::sort(gold.begin(), gold.end());
      if (q.is_ask) {
        (r->is_ask && r->ask_result == q.gold_ask ? right : wrong) += 1;
      } else if (answers == gold) {
        ++right;
      } else {
        std::vector<std::string> inter;
        std::set_intersection(answers.begin(), answers.end(), gold.begin(),
                              gold.end(), std::back_inserter(inter));
        (inter.empty() ? wrong : partial) += 1;
      }
    }
    std::printf("questions %zu  right %zu  partially %zu  wrong %zu\n",
                workload->size(), right, partial, wrong);
    return 0;
  }

  std::fprintf(stderr, "ask away (empty line quits)\n> ");
  std::string line;
  while (std::getline(std::cin, line)) {
    if (line.empty()) break;
    auto r = system.Ask(line);
    if (!r.ok()) {
      std::printf("error: %s\n", r.status().ToString().c_str());
    } else if (r->is_ask) {
      std::printf("%s   (%.2f ms)\n", r->ask_result ? "yes" : "no",
                  r->TotalMs());
    } else if (r->answers.empty()) {
      std::printf("no answer   (%.2f ms)\n", r->TotalMs());
    } else {
      for (const auto& a : r->answers) {
        std::printf("%s   (score %.3f)\n", a.text.c_str(), a.score);
      }
      std::printf("   %.2f ms understanding, %.2f ms evaluation\n",
                  r->understanding_ms, r->evaluation_ms);
    }
    if (explain && r.ok()) {
      std::printf("--- Q^S ---\n%s", r->understanding.sqg.ToString().c_str());
      auto queries = qa::SparqlOutput::TopKQueries(r->understanding.sqg,
                                                   r->matches, *kb, 3);
      for (const auto& q : queries) {
        std::printf("--- SPARQL: %s\n", q.ToString().c_str());
      }
    }
    std::fprintf(stderr, "> ");
  }
  return 0;
}
