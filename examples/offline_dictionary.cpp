// Offline phase (Sec. 3 / Algorithm 1) as a standalone tool: mine the
// paraphrase dictionary from a KB and a relation-phrase dataset, save it to
// a file, reload it, and print some entries — demonstrating the offline /
// online split the paper describes.
//
//   ./build/examples/offline_dictionary [theta] [output-path]

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "common/timer.h"
#include "datagen/kb_generator.h"
#include "datagen/phrase_dataset_generator.h"
#include "paraphrase/dictionary_builder.h"

using namespace ganswer;

int main(int argc, char** argv) {
  size_t theta = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 3;
  std::string path = argc > 2 ? argv[2] : "/tmp/ganswer_dictionary.tsv";

  auto kb = datagen::KbGenerator::Generate({});
  if (!kb.ok()) return 1;
  auto phrases = datagen::PhraseDatasetGenerator::Generate(*kb, {});
  auto dataset = datagen::PhraseDatasetGenerator::StripGold(phrases);
  std::printf("KB: %zu triples; %zu relation phrases\n",
              kb->graph.NumTriples(), dataset.size());

  nlp::Lexicon lexicon;
  paraphrase::ParaphraseDictionary dict(&lexicon);
  paraphrase::DictionaryBuilder::Options opt;
  opt.max_path_length = theta;
  opt.top_k = 3;
  paraphrase::DictionaryBuilder builder(opt);
  paraphrase::DictionaryBuilder::BuildStats stats;

  WallTimer timer;
  Status st = builder.Build(kb->graph, dataset, &dict, &stats);
  if (!st.ok()) {
    std::fprintf(stderr, "mining failed: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf(
      "Algorithm 1 (theta=%zu): %.1f ms; %zu/%zu support pairs in the "
      "graph; %zu paths enumerated\n",
      theta, timer.ElapsedMillis(), stats.pairs_in_graph, stats.pairs_total,
      stats.paths_enumerated);

  // Save and reload (the paper's offline/online handover).
  {
    std::ofstream out(path);
    st = dict.Save(&out, kb->graph.dict());
    if (!st.ok()) {
      std::fprintf(stderr, "save failed: %s\n", st.ToString().c_str());
      return 1;
    }
  }
  paraphrase::ParaphraseDictionary reloaded(&lexicon);
  {
    std::ifstream in(path);
    st = reloaded.Load(&in, &kb->graph);
    if (!st.ok()) {
      std::fprintf(stderr, "load failed: %s\n", st.ToString().c_str());
      return 1;
    }
  }
  std::printf("Saved to %s and reloaded: %zu phrases\n\n", path.c_str(),
              reloaded.NumPhrases());

  for (const char* phrase :
       {"be married to", "play in", "uncle of", "be born in", "mayor of"}) {
    for (paraphrase::PhraseId id = 0; id < reloaded.NumPhrases(); ++id) {
      if (reloaded.PhraseText(id) != phrase) continue;
      std::printf("\"%s\"\n", phrase);
      for (const auto& e : reloaded.Entries(id)) {
        std::printf("    %.3f  %s\n", e.confidence,
                    e.path.ToString(kb->graph.dict()).c_str());
      }
    }
  }
  return 0;
}
