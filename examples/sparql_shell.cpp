// Interactive SPARQL-lite shell over the generated KB — the substrate the
// DEANNA baseline evaluates its generated queries on. Also dumps the KB as
// N-Triples when asked.
//
//   ./build/examples/sparql_shell            # interactive
//   ./build/examples/sparql_shell --dump kb.nt
//   echo 'SELECT ?x WHERE { <Berlin> <mayor> ?x }' | ./build/examples/sparql_shell

#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>

#include "datagen/kb_generator.h"
#include "rdf/ntriples.h"
#include "rdf/sparql_engine.h"

using namespace ganswer;

int main(int argc, char** argv) {
  auto kb = datagen::KbGenerator::Generate({});
  if (!kb.ok()) {
    std::fprintf(stderr, "%s\n", kb.status().ToString().c_str());
    return 1;
  }

  if (argc == 3 && std::strcmp(argv[1], "--dump") == 0) {
    std::ofstream out(argv[2]);
    Status st = rdf::NTriplesWriter::Write(kb->graph, &out);
    if (!st.ok()) {
      std::fprintf(stderr, "%s\n", st.ToString().c_str());
      return 1;
    }
    std::printf("wrote %zu triples to %s\n", kb->graph.NumTriples(), argv[2]);
    return 0;
  }

  rdf::SparqlEngine engine(kb->graph);
  std::fprintf(stderr,
               "SPARQL-lite shell over %zu triples. One query per line; "
               "empty line or EOF quits.\n> ",
               kb->graph.NumTriples());
  std::string line;
  while (std::getline(std::cin, line)) {
    if (line.empty()) break;
    auto result = engine.ExecuteText(line);
    if (!result.ok()) {
      std::printf("error: %s\n", result.status().ToString().c_str());
    } else if (result->var_names.empty() && result->rows.empty()) {
      std::printf("%s\n", result->ask_result ? "yes" : "no");
    } else {
      for (const auto& name : result->var_names) std::printf("?%s\t", name.c_str());
      std::printf("\n");
      size_t shown = 0;
      for (const auto& row : result->rows) {
        for (rdf::TermId t : row) {
          std::string text(t == rdf::kInvalidTerm
                               ? std::string_view("-")
                               : kb->graph.dict().text(t));
          std::printf("%s\t", text.c_str());
        }
        std::printf("\n");
        if (++shown >= 50) {
          std::printf("... (%zu rows total)\n", result->rows.size());
          break;
        }
      }
    }
    std::fprintf(stderr, "> ");
  }
  return 0;
}
