// Movie Q/A walk-through: the paper's running example on the generated
// DBpedia-like KB, with the intermediate artifacts printed — the dependency
// tree, the extracted semantic relations, the semantic query graph with its
// (ambiguous!) candidate lists, and the top-k matches that resolve the
// ambiguity from data.
//
//   ./build/examples/movie_qa ["your own question ?"]

#include <cstdio>

#include "datagen/kb_generator.h"
#include "datagen/phrase_dataset_generator.h"
#include "paraphrase/dictionary_builder.h"
#include "qa/ganswer.h"
#include "qa/sparql_output.h"

using namespace ganswer;

int main(int argc, char** argv) {
  std::string question =
      argc > 1 ? argv[1]
               : "Who was married to an actor that played in Philadelphia ?";

  std::printf("Building the knowledge base and mining the dictionary...\n");
  auto kb = datagen::KbGenerator::Generate({});
  if (!kb.ok()) return 1;
  auto phrases = datagen::PhraseDatasetGenerator::Generate(*kb, {});
  auto dataset = datagen::PhraseDatasetGenerator::StripGold(phrases);
  nlp::Lexicon lexicon;
  paraphrase::ParaphraseDictionary mined(&lexicon);
  paraphrase::DictionaryBuilder::Options mopt;
  mopt.max_path_length = 3;
  if (!paraphrase::DictionaryBuilder(mopt)
           .Build(kb->graph, dataset, &mined)
           .ok()) {
    return 1;
  }
  paraphrase::ParaphraseDictionary dict(&lexicon);
  datagen::VerifyDictionary(phrases, kb->graph, mined, &dict);

  qa::GAnswer system(&kb->graph, &lexicon, &dict);
  auto response = system.Ask(question);
  if (!response.ok()) {
    std::fprintf(stderr, "error: %s\n", response.status().ToString().c_str());
    return 1;
  }

  std::printf("\nQuestion: %s\n", question.c_str());
  std::printf("\n--- dependency tree (simulated Stanford parse) ---\n%s",
              response->understanding.tree.ToString().c_str());

  std::printf("\n--- semantic relations (Definition 1) ---\n");
  for (const auto& rel : response->understanding.relations) {
    std::printf("  %s\n", rel.ToString().c_str());
  }

  std::printf("\n--- semantic query graph Q^S (Definition 2) ---\n%s",
              response->understanding.sqg.ToString().c_str());

  const auto& sqg = response->understanding.sqg;
  std::printf("\n--- candidate lists (ambiguity preserved) ---\n");
  for (const auto& v : sqg.vertices) {
    std::printf("  vertex \"%s\":", v.text.c_str());
    if (v.wildcard) std::printf(" <matches everything>");
    for (const auto& c : v.candidates) {
      std::printf(" %s(%.2f)",
                  std::string(kb->graph.dict().text(c.vertex)).c_str(),
                  c.confidence);
    }
    std::printf("\n");
  }
  for (const auto& e : sqg.edges) {
    std::printf("  edge \"%s\":", e.relation.relation_text.c_str());
    if (e.wildcard) std::printf(" <any predicate>");
    for (const auto& c : e.candidates) {
      std::printf(" [%s](%.2f)",
                  c.path.ToString(kb->graph.dict()).c_str(), c.confidence);
    }
    std::printf("\n");
  }

  std::printf("\n--- top-k subgraph matches (Definition 3, Algorithm 3) ---\n");
  int shown = 0;
  for (const auto& m : response->matches) {
    std::printf("  match (score %.3f):", m.score);
    for (size_t v = 0; v < m.assignment.size(); ++v) {
      if (m.assignment[v] == rdf::kInvalidTerm) continue;
      std::printf(" %s=%s", sqg.vertices[v].text.c_str(),
                  std::string(kb->graph.dict().text(m.assignment[v]))
                      .c_str());
    }
    std::printf("\n");
    if (++shown >= 5) break;
  }

  std::printf("\n--- top-k SPARQL queries (Algorithm 3's output form) ---\n");
  for (const auto& sparql : qa::SparqlOutput::TopKQueries(
           sqg, response->matches, kb->graph, 3)) {
    std::printf("  %s\n", sparql.ToString().c_str());
  }

  std::printf("\n--- answers ---\n");
  if (response->is_ask) {
    std::printf("  %s\n", response->ask_result ? "yes" : "no");
  }
  for (const auto& a : response->answers) {
    std::printf("  %s  (score %.3f)\n", a.text.c_str(), a.score);
  }
  std::printf("\nunderstanding %.2f ms, evaluation %.2f ms\n",
              response->understanding_ms, response->evaluation_ms);
  return 0;
}
