// Quickstart: build a small RDF graph by hand, supply a few relation-phrase
// mappings, and ask natural-language questions.
//
//   cmake --build build && ./build/examples/quickstart

#include <cstdio>

#include "nlp/lexicon.h"
#include "paraphrase/paraphrase_dictionary.h"
#include "qa/ganswer.h"

using namespace ganswer;

int main() {
  // 1) An RDF graph: triples, then Finalize().
  rdf::RdfGraph graph;
  graph.AddTriple("Melanie_Griffith", "spouse", "Antonio_Banderas");
  graph.AddTriple("Antonio_Banderas", "rdf:type", "Actor");
  graph.AddTriple("Melanie_Griffith", "rdf:type", "Actor");
  graph.AddTriple("Philadelphia_(film)", "rdf:type", "Film");
  graph.AddTriple("Philadelphia_(film)", "starring", "Antonio_Banderas");
  graph.AddTriple("Philadelphia", "rdf:type", "City");
  graph.AddTriple("Philadelphia_76ers", "rdf:type", "BasketballTeam");
  graph.AddTriple("Philadelphia_76ers", "locationCity", "Philadelphia");
  graph.AddTriple("Berlin", "rdf:type", "City");
  graph.AddTriple("Berlin", "mayor", "Klaus_Wowereit");
  graph.AddTriple("Klaus_Wowereit", "rdf:type", "Person");
  Status st = graph.Finalize();
  if (!st.ok()) {
    std::fprintf(stderr, "graph: %s\n", st.ToString().c_str());
    return 1;
  }

  // 2) A paraphrase dictionary D: relation phrases -> predicates with
  // confidences. (Normally mined by paraphrase::DictionaryBuilder —
  // Algorithm 1 of the paper; see examples/offline_dictionary.)
  nlp::Lexicon lexicon;
  paraphrase::ParaphraseDictionary dict(&lexicon);
  auto entry = [&](const char* pred, bool forward, double confidence) {
    paraphrase::ParaphraseEntry e;
    e.path.steps = {{graph.dict().Intern(pred), forward}};
    e.confidence = confidence;
    return e;
  };
  dict.AddPhrase("be married to", {entry("spouse", true, 1.0)});
  dict.AddPhrase("play in", {entry("starring", false, 0.9),
                             entry("playForTeam", true, 0.5)});
  dict.AddPhrase("mayor of", {entry("mayor", false, 1.0)});

  // 3) Ask.
  qa::GAnswer system(&graph, &lexicon, &dict);
  for (const char* question :
       {"Who was married to an actor that played in Philadelphia ?",
        "Who is the mayor of Berlin ?"}) {
    auto response = system.Ask(question);
    if (!response.ok()) {
      std::fprintf(stderr, "error: %s\n",
                   response.status().ToString().c_str());
      continue;
    }
    std::printf("Q: %s\n", question);
    for (const auto& answer : response->answers) {
      std::printf("A: %s  (score %.3f)\n", answer.text.c_str(), answer.score);
    }
    std::printf("   understanding %.2f ms, evaluation %.2f ms\n\n",
                response->understanding_ms, response->evaluation_ms);
  }
  return 0;
}
