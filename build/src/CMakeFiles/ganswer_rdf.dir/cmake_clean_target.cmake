file(REMOVE_RECURSE
  "libganswer_rdf.a"
)
