file(REMOVE_RECURSE
  "CMakeFiles/ganswer_rdf.dir/rdf/ntriples.cc.o"
  "CMakeFiles/ganswer_rdf.dir/rdf/ntriples.cc.o.d"
  "CMakeFiles/ganswer_rdf.dir/rdf/rdf_graph.cc.o"
  "CMakeFiles/ganswer_rdf.dir/rdf/rdf_graph.cc.o.d"
  "CMakeFiles/ganswer_rdf.dir/rdf/signature_index.cc.o"
  "CMakeFiles/ganswer_rdf.dir/rdf/signature_index.cc.o.d"
  "CMakeFiles/ganswer_rdf.dir/rdf/sparql_engine.cc.o"
  "CMakeFiles/ganswer_rdf.dir/rdf/sparql_engine.cc.o.d"
  "CMakeFiles/ganswer_rdf.dir/rdf/sparql_parser.cc.o"
  "CMakeFiles/ganswer_rdf.dir/rdf/sparql_parser.cc.o.d"
  "CMakeFiles/ganswer_rdf.dir/rdf/term_dictionary.cc.o"
  "CMakeFiles/ganswer_rdf.dir/rdf/term_dictionary.cc.o.d"
  "libganswer_rdf.a"
  "libganswer_rdf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ganswer_rdf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
