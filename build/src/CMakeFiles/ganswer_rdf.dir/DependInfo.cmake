
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rdf/ntriples.cc" "src/CMakeFiles/ganswer_rdf.dir/rdf/ntriples.cc.o" "gcc" "src/CMakeFiles/ganswer_rdf.dir/rdf/ntriples.cc.o.d"
  "/root/repo/src/rdf/rdf_graph.cc" "src/CMakeFiles/ganswer_rdf.dir/rdf/rdf_graph.cc.o" "gcc" "src/CMakeFiles/ganswer_rdf.dir/rdf/rdf_graph.cc.o.d"
  "/root/repo/src/rdf/signature_index.cc" "src/CMakeFiles/ganswer_rdf.dir/rdf/signature_index.cc.o" "gcc" "src/CMakeFiles/ganswer_rdf.dir/rdf/signature_index.cc.o.d"
  "/root/repo/src/rdf/sparql_engine.cc" "src/CMakeFiles/ganswer_rdf.dir/rdf/sparql_engine.cc.o" "gcc" "src/CMakeFiles/ganswer_rdf.dir/rdf/sparql_engine.cc.o.d"
  "/root/repo/src/rdf/sparql_parser.cc" "src/CMakeFiles/ganswer_rdf.dir/rdf/sparql_parser.cc.o" "gcc" "src/CMakeFiles/ganswer_rdf.dir/rdf/sparql_parser.cc.o.d"
  "/root/repo/src/rdf/term_dictionary.cc" "src/CMakeFiles/ganswer_rdf.dir/rdf/term_dictionary.cc.o" "gcc" "src/CMakeFiles/ganswer_rdf.dir/rdf/term_dictionary.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ganswer_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
