# Empty compiler generated dependencies file for ganswer_rdf.
# This may be replaced when dependencies are built.
