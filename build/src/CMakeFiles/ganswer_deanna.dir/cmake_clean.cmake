file(REMOVE_RECURSE
  "CMakeFiles/ganswer_deanna.dir/deanna/deanna_qa.cc.o"
  "CMakeFiles/ganswer_deanna.dir/deanna/deanna_qa.cc.o.d"
  "CMakeFiles/ganswer_deanna.dir/deanna/disambiguation_graph.cc.o"
  "CMakeFiles/ganswer_deanna.dir/deanna/disambiguation_graph.cc.o.d"
  "CMakeFiles/ganswer_deanna.dir/deanna/ilp_solver.cc.o"
  "CMakeFiles/ganswer_deanna.dir/deanna/ilp_solver.cc.o.d"
  "CMakeFiles/ganswer_deanna.dir/deanna/sparql_generator.cc.o"
  "CMakeFiles/ganswer_deanna.dir/deanna/sparql_generator.cc.o.d"
  "libganswer_deanna.a"
  "libganswer_deanna.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ganswer_deanna.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
