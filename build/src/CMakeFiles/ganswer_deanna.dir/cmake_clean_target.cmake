file(REMOVE_RECURSE
  "libganswer_deanna.a"
)
