# Empty compiler generated dependencies file for ganswer_deanna.
# This may be replaced when dependencies are built.
