file(REMOVE_RECURSE
  "CMakeFiles/ganswer_paraphrase.dir/paraphrase/dictionary_builder.cc.o"
  "CMakeFiles/ganswer_paraphrase.dir/paraphrase/dictionary_builder.cc.o.d"
  "CMakeFiles/ganswer_paraphrase.dir/paraphrase/maintenance.cc.o"
  "CMakeFiles/ganswer_paraphrase.dir/paraphrase/maintenance.cc.o.d"
  "CMakeFiles/ganswer_paraphrase.dir/paraphrase/paraphrase_dictionary.cc.o"
  "CMakeFiles/ganswer_paraphrase.dir/paraphrase/paraphrase_dictionary.cc.o.d"
  "CMakeFiles/ganswer_paraphrase.dir/paraphrase/path_finder.cc.o"
  "CMakeFiles/ganswer_paraphrase.dir/paraphrase/path_finder.cc.o.d"
  "CMakeFiles/ganswer_paraphrase.dir/paraphrase/predicate_path.cc.o"
  "CMakeFiles/ganswer_paraphrase.dir/paraphrase/predicate_path.cc.o.d"
  "CMakeFiles/ganswer_paraphrase.dir/paraphrase/tf_idf.cc.o"
  "CMakeFiles/ganswer_paraphrase.dir/paraphrase/tf_idf.cc.o.d"
  "libganswer_paraphrase.a"
  "libganswer_paraphrase.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ganswer_paraphrase.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
