# Empty dependencies file for ganswer_paraphrase.
# This may be replaced when dependencies are built.
