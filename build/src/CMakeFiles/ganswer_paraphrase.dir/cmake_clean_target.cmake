file(REMOVE_RECURSE
  "libganswer_paraphrase.a"
)
