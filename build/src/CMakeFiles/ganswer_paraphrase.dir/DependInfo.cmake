
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/paraphrase/dictionary_builder.cc" "src/CMakeFiles/ganswer_paraphrase.dir/paraphrase/dictionary_builder.cc.o" "gcc" "src/CMakeFiles/ganswer_paraphrase.dir/paraphrase/dictionary_builder.cc.o.d"
  "/root/repo/src/paraphrase/maintenance.cc" "src/CMakeFiles/ganswer_paraphrase.dir/paraphrase/maintenance.cc.o" "gcc" "src/CMakeFiles/ganswer_paraphrase.dir/paraphrase/maintenance.cc.o.d"
  "/root/repo/src/paraphrase/paraphrase_dictionary.cc" "src/CMakeFiles/ganswer_paraphrase.dir/paraphrase/paraphrase_dictionary.cc.o" "gcc" "src/CMakeFiles/ganswer_paraphrase.dir/paraphrase/paraphrase_dictionary.cc.o.d"
  "/root/repo/src/paraphrase/path_finder.cc" "src/CMakeFiles/ganswer_paraphrase.dir/paraphrase/path_finder.cc.o" "gcc" "src/CMakeFiles/ganswer_paraphrase.dir/paraphrase/path_finder.cc.o.d"
  "/root/repo/src/paraphrase/predicate_path.cc" "src/CMakeFiles/ganswer_paraphrase.dir/paraphrase/predicate_path.cc.o" "gcc" "src/CMakeFiles/ganswer_paraphrase.dir/paraphrase/predicate_path.cc.o.d"
  "/root/repo/src/paraphrase/tf_idf.cc" "src/CMakeFiles/ganswer_paraphrase.dir/paraphrase/tf_idf.cc.o" "gcc" "src/CMakeFiles/ganswer_paraphrase.dir/paraphrase/tf_idf.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ganswer_rdf.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ganswer_nlp.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ganswer_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
