
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/linking/entity_index.cc" "src/CMakeFiles/ganswer_linking.dir/linking/entity_index.cc.o" "gcc" "src/CMakeFiles/ganswer_linking.dir/linking/entity_index.cc.o.d"
  "/root/repo/src/linking/entity_linker.cc" "src/CMakeFiles/ganswer_linking.dir/linking/entity_linker.cc.o" "gcc" "src/CMakeFiles/ganswer_linking.dir/linking/entity_linker.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ganswer_rdf.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ganswer_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
