# Empty compiler generated dependencies file for ganswer_linking.
# This may be replaced when dependencies are built.
