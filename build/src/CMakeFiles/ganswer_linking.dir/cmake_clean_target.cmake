file(REMOVE_RECURSE
  "libganswer_linking.a"
)
