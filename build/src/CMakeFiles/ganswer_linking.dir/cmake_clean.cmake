file(REMOVE_RECURSE
  "CMakeFiles/ganswer_linking.dir/linking/entity_index.cc.o"
  "CMakeFiles/ganswer_linking.dir/linking/entity_index.cc.o.d"
  "CMakeFiles/ganswer_linking.dir/linking/entity_linker.cc.o"
  "CMakeFiles/ganswer_linking.dir/linking/entity_linker.cc.o.d"
  "libganswer_linking.a"
  "libganswer_linking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ganswer_linking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
