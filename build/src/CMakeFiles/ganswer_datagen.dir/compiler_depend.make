# Empty compiler generated dependencies file for ganswer_datagen.
# This may be replaced when dependencies are built.
