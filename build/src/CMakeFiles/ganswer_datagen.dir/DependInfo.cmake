
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/datagen/kb_generator.cc" "src/CMakeFiles/ganswer_datagen.dir/datagen/kb_generator.cc.o" "gcc" "src/CMakeFiles/ganswer_datagen.dir/datagen/kb_generator.cc.o.d"
  "/root/repo/src/datagen/name_pools.cc" "src/CMakeFiles/ganswer_datagen.dir/datagen/name_pools.cc.o" "gcc" "src/CMakeFiles/ganswer_datagen.dir/datagen/name_pools.cc.o.d"
  "/root/repo/src/datagen/phrase_dataset_generator.cc" "src/CMakeFiles/ganswer_datagen.dir/datagen/phrase_dataset_generator.cc.o" "gcc" "src/CMakeFiles/ganswer_datagen.dir/datagen/phrase_dataset_generator.cc.o.d"
  "/root/repo/src/datagen/schema_rename.cc" "src/CMakeFiles/ganswer_datagen.dir/datagen/schema_rename.cc.o" "gcc" "src/CMakeFiles/ganswer_datagen.dir/datagen/schema_rename.cc.o.d"
  "/root/repo/src/datagen/workload.cc" "src/CMakeFiles/ganswer_datagen.dir/datagen/workload.cc.o" "gcc" "src/CMakeFiles/ganswer_datagen.dir/datagen/workload.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ganswer_rdf.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ganswer_paraphrase.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ganswer_nlp.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ganswer_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
