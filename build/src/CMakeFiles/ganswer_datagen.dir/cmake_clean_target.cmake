file(REMOVE_RECURSE
  "libganswer_datagen.a"
)
