file(REMOVE_RECURSE
  "CMakeFiles/ganswer_datagen.dir/datagen/kb_generator.cc.o"
  "CMakeFiles/ganswer_datagen.dir/datagen/kb_generator.cc.o.d"
  "CMakeFiles/ganswer_datagen.dir/datagen/name_pools.cc.o"
  "CMakeFiles/ganswer_datagen.dir/datagen/name_pools.cc.o.d"
  "CMakeFiles/ganswer_datagen.dir/datagen/phrase_dataset_generator.cc.o"
  "CMakeFiles/ganswer_datagen.dir/datagen/phrase_dataset_generator.cc.o.d"
  "CMakeFiles/ganswer_datagen.dir/datagen/schema_rename.cc.o"
  "CMakeFiles/ganswer_datagen.dir/datagen/schema_rename.cc.o.d"
  "CMakeFiles/ganswer_datagen.dir/datagen/workload.cc.o"
  "CMakeFiles/ganswer_datagen.dir/datagen/workload.cc.o.d"
  "libganswer_datagen.a"
  "libganswer_datagen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ganswer_datagen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
