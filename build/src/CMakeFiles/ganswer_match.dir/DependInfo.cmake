
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/match/candidates.cc" "src/CMakeFiles/ganswer_match.dir/match/candidates.cc.o" "gcc" "src/CMakeFiles/ganswer_match.dir/match/candidates.cc.o.d"
  "/root/repo/src/match/query_graph.cc" "src/CMakeFiles/ganswer_match.dir/match/query_graph.cc.o" "gcc" "src/CMakeFiles/ganswer_match.dir/match/query_graph.cc.o.d"
  "/root/repo/src/match/subgraph_matcher.cc" "src/CMakeFiles/ganswer_match.dir/match/subgraph_matcher.cc.o" "gcc" "src/CMakeFiles/ganswer_match.dir/match/subgraph_matcher.cc.o.d"
  "/root/repo/src/match/top_k_matcher.cc" "src/CMakeFiles/ganswer_match.dir/match/top_k_matcher.cc.o" "gcc" "src/CMakeFiles/ganswer_match.dir/match/top_k_matcher.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ganswer_rdf.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ganswer_paraphrase.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ganswer_linking.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ganswer_nlp.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ganswer_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
