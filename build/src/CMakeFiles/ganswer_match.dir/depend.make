# Empty dependencies file for ganswer_match.
# This may be replaced when dependencies are built.
