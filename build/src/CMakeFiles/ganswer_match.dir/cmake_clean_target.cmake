file(REMOVE_RECURSE
  "libganswer_match.a"
)
