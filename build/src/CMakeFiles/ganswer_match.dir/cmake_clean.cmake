file(REMOVE_RECURSE
  "CMakeFiles/ganswer_match.dir/match/candidates.cc.o"
  "CMakeFiles/ganswer_match.dir/match/candidates.cc.o.d"
  "CMakeFiles/ganswer_match.dir/match/query_graph.cc.o"
  "CMakeFiles/ganswer_match.dir/match/query_graph.cc.o.d"
  "CMakeFiles/ganswer_match.dir/match/subgraph_matcher.cc.o"
  "CMakeFiles/ganswer_match.dir/match/subgraph_matcher.cc.o.d"
  "CMakeFiles/ganswer_match.dir/match/top_k_matcher.cc.o"
  "CMakeFiles/ganswer_match.dir/match/top_k_matcher.cc.o.d"
  "libganswer_match.a"
  "libganswer_match.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ganswer_match.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
