file(REMOVE_RECURSE
  "libganswer_common.a"
)
