# Empty dependencies file for ganswer_common.
# This may be replaced when dependencies are built.
