file(REMOVE_RECURSE
  "CMakeFiles/ganswer_common.dir/common/logging.cc.o"
  "CMakeFiles/ganswer_common.dir/common/logging.cc.o.d"
  "CMakeFiles/ganswer_common.dir/common/status.cc.o"
  "CMakeFiles/ganswer_common.dir/common/status.cc.o.d"
  "CMakeFiles/ganswer_common.dir/common/string_util.cc.o"
  "CMakeFiles/ganswer_common.dir/common/string_util.cc.o.d"
  "libganswer_common.a"
  "libganswer_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ganswer_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
