file(REMOVE_RECURSE
  "libganswer_nlp.a"
)
