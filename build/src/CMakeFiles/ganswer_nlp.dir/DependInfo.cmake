
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nlp/coreference.cc" "src/CMakeFiles/ganswer_nlp.dir/nlp/coreference.cc.o" "gcc" "src/CMakeFiles/ganswer_nlp.dir/nlp/coreference.cc.o.d"
  "/root/repo/src/nlp/dependency_parser.cc" "src/CMakeFiles/ganswer_nlp.dir/nlp/dependency_parser.cc.o" "gcc" "src/CMakeFiles/ganswer_nlp.dir/nlp/dependency_parser.cc.o.d"
  "/root/repo/src/nlp/dependency_tree.cc" "src/CMakeFiles/ganswer_nlp.dir/nlp/dependency_tree.cc.o" "gcc" "src/CMakeFiles/ganswer_nlp.dir/nlp/dependency_tree.cc.o.d"
  "/root/repo/src/nlp/lexicon.cc" "src/CMakeFiles/ganswer_nlp.dir/nlp/lexicon.cc.o" "gcc" "src/CMakeFiles/ganswer_nlp.dir/nlp/lexicon.cc.o.d"
  "/root/repo/src/nlp/pos_tagger.cc" "src/CMakeFiles/ganswer_nlp.dir/nlp/pos_tagger.cc.o" "gcc" "src/CMakeFiles/ganswer_nlp.dir/nlp/pos_tagger.cc.o.d"
  "/root/repo/src/nlp/tokenizer.cc" "src/CMakeFiles/ganswer_nlp.dir/nlp/tokenizer.cc.o" "gcc" "src/CMakeFiles/ganswer_nlp.dir/nlp/tokenizer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ganswer_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
