file(REMOVE_RECURSE
  "CMakeFiles/ganswer_nlp.dir/nlp/coreference.cc.o"
  "CMakeFiles/ganswer_nlp.dir/nlp/coreference.cc.o.d"
  "CMakeFiles/ganswer_nlp.dir/nlp/dependency_parser.cc.o"
  "CMakeFiles/ganswer_nlp.dir/nlp/dependency_parser.cc.o.d"
  "CMakeFiles/ganswer_nlp.dir/nlp/dependency_tree.cc.o"
  "CMakeFiles/ganswer_nlp.dir/nlp/dependency_tree.cc.o.d"
  "CMakeFiles/ganswer_nlp.dir/nlp/lexicon.cc.o"
  "CMakeFiles/ganswer_nlp.dir/nlp/lexicon.cc.o.d"
  "CMakeFiles/ganswer_nlp.dir/nlp/pos_tagger.cc.o"
  "CMakeFiles/ganswer_nlp.dir/nlp/pos_tagger.cc.o.d"
  "CMakeFiles/ganswer_nlp.dir/nlp/tokenizer.cc.o"
  "CMakeFiles/ganswer_nlp.dir/nlp/tokenizer.cc.o.d"
  "libganswer_nlp.a"
  "libganswer_nlp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ganswer_nlp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
