# Empty compiler generated dependencies file for ganswer_nlp.
# This may be replaced when dependencies are built.
