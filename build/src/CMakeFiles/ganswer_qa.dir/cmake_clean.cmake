file(REMOVE_RECURSE
  "CMakeFiles/ganswer_qa.dir/qa/argument_finder.cc.o"
  "CMakeFiles/ganswer_qa.dir/qa/argument_finder.cc.o.d"
  "CMakeFiles/ganswer_qa.dir/qa/explain.cc.o"
  "CMakeFiles/ganswer_qa.dir/qa/explain.cc.o.d"
  "CMakeFiles/ganswer_qa.dir/qa/ganswer.cc.o"
  "CMakeFiles/ganswer_qa.dir/qa/ganswer.cc.o.d"
  "CMakeFiles/ganswer_qa.dir/qa/question_understander.cc.o"
  "CMakeFiles/ganswer_qa.dir/qa/question_understander.cc.o.d"
  "CMakeFiles/ganswer_qa.dir/qa/relation_extractor.cc.o"
  "CMakeFiles/ganswer_qa.dir/qa/relation_extractor.cc.o.d"
  "CMakeFiles/ganswer_qa.dir/qa/semantic_query_graph.cc.o"
  "CMakeFiles/ganswer_qa.dir/qa/semantic_query_graph.cc.o.d"
  "CMakeFiles/ganswer_qa.dir/qa/semantic_relation.cc.o"
  "CMakeFiles/ganswer_qa.dir/qa/semantic_relation.cc.o.d"
  "CMakeFiles/ganswer_qa.dir/qa/sparql_output.cc.o"
  "CMakeFiles/ganswer_qa.dir/qa/sparql_output.cc.o.d"
  "CMakeFiles/ganswer_qa.dir/qa/superlative.cc.o"
  "CMakeFiles/ganswer_qa.dir/qa/superlative.cc.o.d"
  "libganswer_qa.a"
  "libganswer_qa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ganswer_qa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
