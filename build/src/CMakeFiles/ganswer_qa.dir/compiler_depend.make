# Empty compiler generated dependencies file for ganswer_qa.
# This may be replaced when dependencies are built.
