file(REMOVE_RECURSE
  "libganswer_qa.a"
)
