
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/qa/argument_finder.cc" "src/CMakeFiles/ganswer_qa.dir/qa/argument_finder.cc.o" "gcc" "src/CMakeFiles/ganswer_qa.dir/qa/argument_finder.cc.o.d"
  "/root/repo/src/qa/explain.cc" "src/CMakeFiles/ganswer_qa.dir/qa/explain.cc.o" "gcc" "src/CMakeFiles/ganswer_qa.dir/qa/explain.cc.o.d"
  "/root/repo/src/qa/ganswer.cc" "src/CMakeFiles/ganswer_qa.dir/qa/ganswer.cc.o" "gcc" "src/CMakeFiles/ganswer_qa.dir/qa/ganswer.cc.o.d"
  "/root/repo/src/qa/question_understander.cc" "src/CMakeFiles/ganswer_qa.dir/qa/question_understander.cc.o" "gcc" "src/CMakeFiles/ganswer_qa.dir/qa/question_understander.cc.o.d"
  "/root/repo/src/qa/relation_extractor.cc" "src/CMakeFiles/ganswer_qa.dir/qa/relation_extractor.cc.o" "gcc" "src/CMakeFiles/ganswer_qa.dir/qa/relation_extractor.cc.o.d"
  "/root/repo/src/qa/semantic_query_graph.cc" "src/CMakeFiles/ganswer_qa.dir/qa/semantic_query_graph.cc.o" "gcc" "src/CMakeFiles/ganswer_qa.dir/qa/semantic_query_graph.cc.o.d"
  "/root/repo/src/qa/semantic_relation.cc" "src/CMakeFiles/ganswer_qa.dir/qa/semantic_relation.cc.o" "gcc" "src/CMakeFiles/ganswer_qa.dir/qa/semantic_relation.cc.o.d"
  "/root/repo/src/qa/sparql_output.cc" "src/CMakeFiles/ganswer_qa.dir/qa/sparql_output.cc.o" "gcc" "src/CMakeFiles/ganswer_qa.dir/qa/sparql_output.cc.o.d"
  "/root/repo/src/qa/superlative.cc" "src/CMakeFiles/ganswer_qa.dir/qa/superlative.cc.o" "gcc" "src/CMakeFiles/ganswer_qa.dir/qa/superlative.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ganswer_nlp.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ganswer_match.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ganswer_paraphrase.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ganswer_linking.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ganswer_rdf.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ganswer_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
