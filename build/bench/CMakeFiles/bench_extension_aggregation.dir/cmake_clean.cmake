file(REMOVE_RECURSE
  "CMakeFiles/bench_extension_aggregation.dir/bench_extension_aggregation.cc.o"
  "CMakeFiles/bench_extension_aggregation.dir/bench_extension_aggregation.cc.o.d"
  "bench_extension_aggregation"
  "bench_extension_aggregation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_extension_aggregation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
