file(REMOVE_RECURSE
  "CMakeFiles/bench_exp1_dictionary_precision.dir/bench_exp1_dictionary_precision.cc.o"
  "CMakeFiles/bench_exp1_dictionary_precision.dir/bench_exp1_dictionary_precision.cc.o.d"
  "bench_exp1_dictionary_precision"
  "bench_exp1_dictionary_precision.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_exp1_dictionary_precision.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
