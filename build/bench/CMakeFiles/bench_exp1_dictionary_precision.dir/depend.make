# Empty dependencies file for bench_exp1_dictionary_precision.
# This may be replaced when dependencies are built.
