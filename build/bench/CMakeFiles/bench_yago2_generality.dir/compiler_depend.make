# Empty compiler generated dependencies file for bench_yago2_generality.
# This may be replaced when dependencies are built.
