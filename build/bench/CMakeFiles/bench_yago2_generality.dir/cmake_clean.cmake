file(REMOVE_RECURSE
  "CMakeFiles/bench_yago2_generality.dir/bench_yago2_generality.cc.o"
  "CMakeFiles/bench_yago2_generality.dir/bench_yago2_generality.cc.o.d"
  "bench_yago2_generality"
  "bench_yago2_generality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_yago2_generality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
