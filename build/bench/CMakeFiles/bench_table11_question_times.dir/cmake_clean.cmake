file(REMOVE_RECURSE
  "CMakeFiles/bench_table11_question_times.dir/bench_table11_question_times.cc.o"
  "CMakeFiles/bench_table11_question_times.dir/bench_table11_question_times.cc.o.d"
  "bench_table11_question_times"
  "bench_table11_question_times.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table11_question_times.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
