# Empty compiler generated dependencies file for bench_table11_question_times.
# This may be replaced when dependencies are built.
