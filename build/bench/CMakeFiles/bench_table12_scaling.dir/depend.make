# Empty dependencies file for bench_table12_scaling.
# This may be replaced when dependencies are built.
