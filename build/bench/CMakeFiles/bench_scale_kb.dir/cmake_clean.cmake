file(REMOVE_RECURSE
  "CMakeFiles/bench_scale_kb.dir/bench_scale_kb.cc.o"
  "CMakeFiles/bench_scale_kb.dir/bench_scale_kb.cc.o.d"
  "bench_scale_kb"
  "bench_scale_kb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_scale_kb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
