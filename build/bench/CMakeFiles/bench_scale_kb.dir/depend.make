# Empty dependencies file for bench_scale_kb.
# This may be replaced when dependencies are built.
