file(REMOVE_RECURSE
  "CMakeFiles/bench_table9_heuristic_rules.dir/bench_table9_heuristic_rules.cc.o"
  "CMakeFiles/bench_table9_heuristic_rules.dir/bench_table9_heuristic_rules.cc.o.d"
  "bench_table9_heuristic_rules"
  "bench_table9_heuristic_rules.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table9_heuristic_rules.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
