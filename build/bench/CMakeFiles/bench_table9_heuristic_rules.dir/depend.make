# Empty dependencies file for bench_table9_heuristic_rules.
# This may be replaced when dependencies are built.
