# Empty compiler generated dependencies file for bench_table10_failure_analysis.
# This may be replaced when dependencies are built.
