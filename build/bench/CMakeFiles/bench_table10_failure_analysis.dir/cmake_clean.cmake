file(REMOVE_RECURSE
  "CMakeFiles/bench_table10_failure_analysis.dir/bench_table10_failure_analysis.cc.o"
  "CMakeFiles/bench_table10_failure_analysis.dir/bench_table10_failure_analysis.cc.o.d"
  "bench_table10_failure_analysis"
  "bench_table10_failure_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table10_failure_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
