# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;14;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_geography_qa "/root/repo/build/examples/geography_qa")
set_tests_properties(example_geography_qa PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;15;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_movie_qa "/root/repo/build/examples/movie_qa")
set_tests_properties(example_movie_qa PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_offline_dictionary "/root/repo/build/examples/offline_dictionary" "2")
set_tests_properties(example_offline_dictionary PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
