# Empty compiler generated dependencies file for ganswer_cli.
# This may be replaced when dependencies are built.
