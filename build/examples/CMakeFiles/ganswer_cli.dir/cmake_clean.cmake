file(REMOVE_RECURSE
  "CMakeFiles/ganswer_cli.dir/ganswer_cli.cpp.o"
  "CMakeFiles/ganswer_cli.dir/ganswer_cli.cpp.o.d"
  "ganswer_cli"
  "ganswer_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ganswer_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
