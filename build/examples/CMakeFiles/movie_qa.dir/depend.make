# Empty dependencies file for movie_qa.
# This may be replaced when dependencies are built.
