# Empty dependencies file for geography_qa.
# This may be replaced when dependencies are built.
