file(REMOVE_RECURSE
  "CMakeFiles/geography_qa.dir/geography_qa.cpp.o"
  "CMakeFiles/geography_qa.dir/geography_qa.cpp.o.d"
  "geography_qa"
  "geography_qa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/geography_qa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
