file(REMOVE_RECURSE
  "CMakeFiles/offline_dictionary.dir/offline_dictionary.cpp.o"
  "CMakeFiles/offline_dictionary.dir/offline_dictionary.cpp.o.d"
  "offline_dictionary"
  "offline_dictionary.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/offline_dictionary.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
