# Empty compiler generated dependencies file for offline_dictionary.
# This may be replaced when dependencies are built.
