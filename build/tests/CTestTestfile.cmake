# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/ganswer_common_test[1]_include.cmake")
include("/root/repo/build/tests/ganswer_rdf_test[1]_include.cmake")
include("/root/repo/build/tests/ganswer_nlp_test[1]_include.cmake")
include("/root/repo/build/tests/ganswer_paraphrase_test[1]_include.cmake")
include("/root/repo/build/tests/ganswer_linking_test[1]_include.cmake")
include("/root/repo/build/tests/ganswer_match_test[1]_include.cmake")
include("/root/repo/build/tests/ganswer_qa_test[1]_include.cmake")
include("/root/repo/build/tests/ganswer_deanna_test[1]_include.cmake")
include("/root/repo/build/tests/ganswer_datagen_test[1]_include.cmake")
include("/root/repo/build/tests/ganswer_integration_test[1]_include.cmake")
