# Empty dependencies file for ganswer_rdf_test.
# This may be replaced when dependencies are built.
