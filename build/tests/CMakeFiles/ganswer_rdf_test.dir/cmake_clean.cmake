file(REMOVE_RECURSE
  "CMakeFiles/ganswer_rdf_test.dir/rdf/ntriples_test.cc.o"
  "CMakeFiles/ganswer_rdf_test.dir/rdf/ntriples_test.cc.o.d"
  "CMakeFiles/ganswer_rdf_test.dir/rdf/rdf_graph_test.cc.o"
  "CMakeFiles/ganswer_rdf_test.dir/rdf/rdf_graph_test.cc.o.d"
  "CMakeFiles/ganswer_rdf_test.dir/rdf/signature_index_test.cc.o"
  "CMakeFiles/ganswer_rdf_test.dir/rdf/signature_index_test.cc.o.d"
  "CMakeFiles/ganswer_rdf_test.dir/rdf/sparql_engine_test.cc.o"
  "CMakeFiles/ganswer_rdf_test.dir/rdf/sparql_engine_test.cc.o.d"
  "CMakeFiles/ganswer_rdf_test.dir/rdf/sparql_orderby_test.cc.o"
  "CMakeFiles/ganswer_rdf_test.dir/rdf/sparql_orderby_test.cc.o.d"
  "CMakeFiles/ganswer_rdf_test.dir/rdf/sparql_parser_test.cc.o"
  "CMakeFiles/ganswer_rdf_test.dir/rdf/sparql_parser_test.cc.o.d"
  "CMakeFiles/ganswer_rdf_test.dir/rdf/term_dictionary_test.cc.o"
  "CMakeFiles/ganswer_rdf_test.dir/rdf/term_dictionary_test.cc.o.d"
  "ganswer_rdf_test"
  "ganswer_rdf_test.pdb"
  "ganswer_rdf_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ganswer_rdf_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
