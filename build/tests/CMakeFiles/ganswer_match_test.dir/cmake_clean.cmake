file(REMOVE_RECURSE
  "CMakeFiles/ganswer_match_test.dir/match/candidates_test.cc.o"
  "CMakeFiles/ganswer_match_test.dir/match/candidates_test.cc.o.d"
  "CMakeFiles/ganswer_match_test.dir/match/match_property_test.cc.o"
  "CMakeFiles/ganswer_match_test.dir/match/match_property_test.cc.o.d"
  "CMakeFiles/ganswer_match_test.dir/match/subgraph_matcher_test.cc.o"
  "CMakeFiles/ganswer_match_test.dir/match/subgraph_matcher_test.cc.o.d"
  "CMakeFiles/ganswer_match_test.dir/match/top_k_matcher_test.cc.o"
  "CMakeFiles/ganswer_match_test.dir/match/top_k_matcher_test.cc.o.d"
  "ganswer_match_test"
  "ganswer_match_test.pdb"
  "ganswer_match_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ganswer_match_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
