# Empty compiler generated dependencies file for ganswer_match_test.
# This may be replaced when dependencies are built.
