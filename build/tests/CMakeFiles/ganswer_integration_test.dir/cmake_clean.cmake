file(REMOVE_RECURSE
  "CMakeFiles/ganswer_integration_test.dir/integration/end_to_end_test.cc.o"
  "CMakeFiles/ganswer_integration_test.dir/integration/end_to_end_test.cc.o.d"
  "CMakeFiles/ganswer_integration_test.dir/integration/robustness_test.cc.o"
  "CMakeFiles/ganswer_integration_test.dir/integration/robustness_test.cc.o.d"
  "CMakeFiles/ganswer_integration_test.dir/integration/serialization_test.cc.o"
  "CMakeFiles/ganswer_integration_test.dir/integration/serialization_test.cc.o.d"
  "ganswer_integration_test"
  "ganswer_integration_test.pdb"
  "ganswer_integration_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ganswer_integration_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
