# Empty compiler generated dependencies file for ganswer_integration_test.
# This may be replaced when dependencies are built.
