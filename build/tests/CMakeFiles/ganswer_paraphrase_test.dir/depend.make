# Empty dependencies file for ganswer_paraphrase_test.
# This may be replaced when dependencies are built.
