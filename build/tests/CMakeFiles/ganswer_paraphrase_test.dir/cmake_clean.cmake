file(REMOVE_RECURSE
  "CMakeFiles/ganswer_paraphrase_test.dir/paraphrase/dictionary_builder_test.cc.o"
  "CMakeFiles/ganswer_paraphrase_test.dir/paraphrase/dictionary_builder_test.cc.o.d"
  "CMakeFiles/ganswer_paraphrase_test.dir/paraphrase/maintenance_test.cc.o"
  "CMakeFiles/ganswer_paraphrase_test.dir/paraphrase/maintenance_test.cc.o.d"
  "CMakeFiles/ganswer_paraphrase_test.dir/paraphrase/paraphrase_dictionary_test.cc.o"
  "CMakeFiles/ganswer_paraphrase_test.dir/paraphrase/paraphrase_dictionary_test.cc.o.d"
  "CMakeFiles/ganswer_paraphrase_test.dir/paraphrase/path_finder_test.cc.o"
  "CMakeFiles/ganswer_paraphrase_test.dir/paraphrase/path_finder_test.cc.o.d"
  "CMakeFiles/ganswer_paraphrase_test.dir/paraphrase/predicate_path_test.cc.o"
  "CMakeFiles/ganswer_paraphrase_test.dir/paraphrase/predicate_path_test.cc.o.d"
  "CMakeFiles/ganswer_paraphrase_test.dir/paraphrase/tf_idf_test.cc.o"
  "CMakeFiles/ganswer_paraphrase_test.dir/paraphrase/tf_idf_test.cc.o.d"
  "ganswer_paraphrase_test"
  "ganswer_paraphrase_test.pdb"
  "ganswer_paraphrase_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ganswer_paraphrase_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
