file(REMOVE_RECURSE
  "CMakeFiles/ganswer_nlp_test.dir/nlp/coreference_test.cc.o"
  "CMakeFiles/ganswer_nlp_test.dir/nlp/coreference_test.cc.o.d"
  "CMakeFiles/ganswer_nlp_test.dir/nlp/dependency_parser_test.cc.o"
  "CMakeFiles/ganswer_nlp_test.dir/nlp/dependency_parser_test.cc.o.d"
  "CMakeFiles/ganswer_nlp_test.dir/nlp/dependency_tree_test.cc.o"
  "CMakeFiles/ganswer_nlp_test.dir/nlp/dependency_tree_test.cc.o.d"
  "CMakeFiles/ganswer_nlp_test.dir/nlp/lexicon_test.cc.o"
  "CMakeFiles/ganswer_nlp_test.dir/nlp/lexicon_test.cc.o.d"
  "CMakeFiles/ganswer_nlp_test.dir/nlp/pos_tagger_test.cc.o"
  "CMakeFiles/ganswer_nlp_test.dir/nlp/pos_tagger_test.cc.o.d"
  "CMakeFiles/ganswer_nlp_test.dir/nlp/possessive_test.cc.o"
  "CMakeFiles/ganswer_nlp_test.dir/nlp/possessive_test.cc.o.d"
  "CMakeFiles/ganswer_nlp_test.dir/nlp/tokenizer_test.cc.o"
  "CMakeFiles/ganswer_nlp_test.dir/nlp/tokenizer_test.cc.o.d"
  "ganswer_nlp_test"
  "ganswer_nlp_test.pdb"
  "ganswer_nlp_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ganswer_nlp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
