# Empty dependencies file for ganswer_nlp_test.
# This may be replaced when dependencies are built.
