# Empty compiler generated dependencies file for ganswer_datagen_test.
# This may be replaced when dependencies are built.
