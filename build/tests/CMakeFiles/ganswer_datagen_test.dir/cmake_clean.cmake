file(REMOVE_RECURSE
  "CMakeFiles/ganswer_datagen_test.dir/datagen/datagen_test.cc.o"
  "CMakeFiles/ganswer_datagen_test.dir/datagen/datagen_test.cc.o.d"
  "CMakeFiles/ganswer_datagen_test.dir/datagen/schema_rename_test.cc.o"
  "CMakeFiles/ganswer_datagen_test.dir/datagen/schema_rename_test.cc.o.d"
  "ganswer_datagen_test"
  "ganswer_datagen_test.pdb"
  "ganswer_datagen_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ganswer_datagen_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
