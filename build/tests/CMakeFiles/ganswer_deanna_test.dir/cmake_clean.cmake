file(REMOVE_RECURSE
  "CMakeFiles/ganswer_deanna_test.dir/deanna/deanna_qa_test.cc.o"
  "CMakeFiles/ganswer_deanna_test.dir/deanna/deanna_qa_test.cc.o.d"
  "CMakeFiles/ganswer_deanna_test.dir/deanna/ilp_solver_test.cc.o"
  "CMakeFiles/ganswer_deanna_test.dir/deanna/ilp_solver_test.cc.o.d"
  "ganswer_deanna_test"
  "ganswer_deanna_test.pdb"
  "ganswer_deanna_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ganswer_deanna_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
