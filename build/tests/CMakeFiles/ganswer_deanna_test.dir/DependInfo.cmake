
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/deanna/deanna_qa_test.cc" "tests/CMakeFiles/ganswer_deanna_test.dir/deanna/deanna_qa_test.cc.o" "gcc" "tests/CMakeFiles/ganswer_deanna_test.dir/deanna/deanna_qa_test.cc.o.d"
  "/root/repo/tests/deanna/ilp_solver_test.cc" "tests/CMakeFiles/ganswer_deanna_test.dir/deanna/ilp_solver_test.cc.o" "gcc" "tests/CMakeFiles/ganswer_deanna_test.dir/deanna/ilp_solver_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ganswer_datagen.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ganswer_deanna.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ganswer_qa.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ganswer_match.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ganswer_paraphrase.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ganswer_linking.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ganswer_rdf.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ganswer_nlp.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ganswer_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
