# Empty dependencies file for ganswer_deanna_test.
# This may be replaced when dependencies are built.
