# Empty dependencies file for ganswer_common_test.
# This may be replaced when dependencies are built.
