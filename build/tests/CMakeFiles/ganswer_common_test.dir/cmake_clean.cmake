file(REMOVE_RECURSE
  "CMakeFiles/ganswer_common_test.dir/common/logging_timer_test.cc.o"
  "CMakeFiles/ganswer_common_test.dir/common/logging_timer_test.cc.o.d"
  "CMakeFiles/ganswer_common_test.dir/common/random_test.cc.o"
  "CMakeFiles/ganswer_common_test.dir/common/random_test.cc.o.d"
  "CMakeFiles/ganswer_common_test.dir/common/status_test.cc.o"
  "CMakeFiles/ganswer_common_test.dir/common/status_test.cc.o.d"
  "CMakeFiles/ganswer_common_test.dir/common/string_util_test.cc.o"
  "CMakeFiles/ganswer_common_test.dir/common/string_util_test.cc.o.d"
  "ganswer_common_test"
  "ganswer_common_test.pdb"
  "ganswer_common_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ganswer_common_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
