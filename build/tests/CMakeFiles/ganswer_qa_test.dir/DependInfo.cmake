
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/qa/argument_finder_test.cc" "tests/CMakeFiles/ganswer_qa_test.dir/qa/argument_finder_test.cc.o" "gcc" "tests/CMakeFiles/ganswer_qa_test.dir/qa/argument_finder_test.cc.o.d"
  "/root/repo/tests/qa/explain_test.cc" "tests/CMakeFiles/ganswer_qa_test.dir/qa/explain_test.cc.o" "gcc" "tests/CMakeFiles/ganswer_qa_test.dir/qa/explain_test.cc.o.d"
  "/root/repo/tests/qa/ganswer_test.cc" "tests/CMakeFiles/ganswer_qa_test.dir/qa/ganswer_test.cc.o" "gcc" "tests/CMakeFiles/ganswer_qa_test.dir/qa/ganswer_test.cc.o.d"
  "/root/repo/tests/qa/question_understander_test.cc" "tests/CMakeFiles/ganswer_qa_test.dir/qa/question_understander_test.cc.o" "gcc" "tests/CMakeFiles/ganswer_qa_test.dir/qa/question_understander_test.cc.o.d"
  "/root/repo/tests/qa/relation_extractor_test.cc" "tests/CMakeFiles/ganswer_qa_test.dir/qa/relation_extractor_test.cc.o" "gcc" "tests/CMakeFiles/ganswer_qa_test.dir/qa/relation_extractor_test.cc.o.d"
  "/root/repo/tests/qa/rule_sweep_test.cc" "tests/CMakeFiles/ganswer_qa_test.dir/qa/rule_sweep_test.cc.o" "gcc" "tests/CMakeFiles/ganswer_qa_test.dir/qa/rule_sweep_test.cc.o.d"
  "/root/repo/tests/qa/sparql_output_test.cc" "tests/CMakeFiles/ganswer_qa_test.dir/qa/sparql_output_test.cc.o" "gcc" "tests/CMakeFiles/ganswer_qa_test.dir/qa/sparql_output_test.cc.o.d"
  "/root/repo/tests/qa/superlative_test.cc" "tests/CMakeFiles/ganswer_qa_test.dir/qa/superlative_test.cc.o" "gcc" "tests/CMakeFiles/ganswer_qa_test.dir/qa/superlative_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ganswer_datagen.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ganswer_deanna.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ganswer_qa.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ganswer_match.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ganswer_paraphrase.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ganswer_linking.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ganswer_rdf.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ganswer_nlp.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ganswer_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
