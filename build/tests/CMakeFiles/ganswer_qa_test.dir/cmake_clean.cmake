file(REMOVE_RECURSE
  "CMakeFiles/ganswer_qa_test.dir/qa/argument_finder_test.cc.o"
  "CMakeFiles/ganswer_qa_test.dir/qa/argument_finder_test.cc.o.d"
  "CMakeFiles/ganswer_qa_test.dir/qa/explain_test.cc.o"
  "CMakeFiles/ganswer_qa_test.dir/qa/explain_test.cc.o.d"
  "CMakeFiles/ganswer_qa_test.dir/qa/ganswer_test.cc.o"
  "CMakeFiles/ganswer_qa_test.dir/qa/ganswer_test.cc.o.d"
  "CMakeFiles/ganswer_qa_test.dir/qa/question_understander_test.cc.o"
  "CMakeFiles/ganswer_qa_test.dir/qa/question_understander_test.cc.o.d"
  "CMakeFiles/ganswer_qa_test.dir/qa/relation_extractor_test.cc.o"
  "CMakeFiles/ganswer_qa_test.dir/qa/relation_extractor_test.cc.o.d"
  "CMakeFiles/ganswer_qa_test.dir/qa/rule_sweep_test.cc.o"
  "CMakeFiles/ganswer_qa_test.dir/qa/rule_sweep_test.cc.o.d"
  "CMakeFiles/ganswer_qa_test.dir/qa/sparql_output_test.cc.o"
  "CMakeFiles/ganswer_qa_test.dir/qa/sparql_output_test.cc.o.d"
  "CMakeFiles/ganswer_qa_test.dir/qa/superlative_test.cc.o"
  "CMakeFiles/ganswer_qa_test.dir/qa/superlative_test.cc.o.d"
  "ganswer_qa_test"
  "ganswer_qa_test.pdb"
  "ganswer_qa_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ganswer_qa_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
