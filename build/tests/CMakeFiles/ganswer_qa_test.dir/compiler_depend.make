# Empty compiler generated dependencies file for ganswer_qa_test.
# This may be replaced when dependencies are built.
