# Empty dependencies file for ganswer_linking_test.
# This may be replaced when dependencies are built.
