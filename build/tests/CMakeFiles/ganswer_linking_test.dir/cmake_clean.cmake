file(REMOVE_RECURSE
  "CMakeFiles/ganswer_linking_test.dir/linking/entity_linker_test.cc.o"
  "CMakeFiles/ganswer_linking_test.dir/linking/entity_linker_test.cc.o.d"
  "ganswer_linking_test"
  "ganswer_linking_test.pdb"
  "ganswer_linking_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ganswer_linking_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
