// Table 11 (Sec. 6.3): the questions the system answers correctly, with the
// total response time per question in milliseconds. Paper's times range
// from 250 ms to 2565 ms on DBpedia-scale data; at our scale they are
// sub-millisecond to a few milliseconds, but the table's *content* — which
// question categories are answerable — must mirror Table 11's mix of
// factoid, type-constrained, relative-clause, literal and yes/no
// questions.

#include <cstdio>

#include "bench_support.h"
#include "qa/ganswer.h"

using namespace ganswer;

int main() {
  bench::Header("Table 11 -- correctly answered questions, response time");
  auto world = bench::BuildWorld();
  qa::GAnswer system(&world.kb.graph, &world.lexicon, world.verified.get());

  size_t right = 0;
  double total_ms = 0;
  std::printf("\n%-6s %-62s %-12s %s\n", "id", "question", "time", "category");
  for (const datagen::GoldQuestion& q : world.workload) {
    auto r = system.Ask(q.text);
    if (!r.ok()) continue;
    std::vector<std::string> answers;
    for (const auto& a : r->answers) answers.push_back(a.text);
    if (bench::Judge(q, r->is_ask, r->ask_result, answers) !=
        bench::Verdict::kRight) {
      continue;
    }
    ++right;
    total_ms += r->TotalMs();
    std::string text = q.text;
    if (text.size() > 60) text = text.substr(0, 57) + "...";
    std::printf("%-6s %-62s %8.2f ms  %s\n", q.id.c_str(), text.c_str(),
                r->TotalMs(), datagen::CategoryName(q.category));
  }
  std::printf("\n%zu questions answered correctly; mean response %.2f ms\n",
              right, right ? total_ms / right : 0.0);
  std::printf(
      "\nPaper-shape check (Table 11): the correctly answered set spans\n"
      "simple factoids, type-constrained imperatives, relative clauses,\n"
      "literals, predicate paths and yes/no questions — and response times\n"
      "stay in the online (millisecond) regime.\n");
  return 0;
}
