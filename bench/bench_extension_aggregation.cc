// EXTENSION bench (beyond the paper): the superlative/aggregation resolver
// (qa/superlative.h) against the paper-faithful configuration, on the
// workload's aggregation category — the 35% failure slice of Table 10 the
// paper leaves as future work.

#include <cstdio>

#include "bench_support.h"
#include "qa/ganswer.h"

using namespace ganswer;

namespace {

struct Score {
  size_t right = 0;
  size_t partial = 0;
  size_t wrong = 0;
};

Score Evaluate(const bench::BenchWorld& world, bool superlatives) {
  qa::GAnswer::Options opt;
  opt.enable_superlatives = superlatives;
  qa::GAnswer system(&world.kb.graph, &world.lexicon, world.verified.get(),
                     opt);
  Score score;
  for (const datagen::GoldQuestion& q : world.workload) {
    if (q.category != datagen::QuestionCategory::kAggregation) continue;
    auto r = system.Ask(q.text);
    if (!r.ok()) {
      ++score.wrong;
      continue;
    }
    std::vector<std::string> answers;
    for (const auto& a : r->answers) answers.push_back(a.text);
    switch (bench::Judge(q, r->is_ask, r->ask_result, answers)) {
      case bench::Verdict::kRight:
        ++score.right;
        break;
      case bench::Verdict::kPartial:
        ++score.partial;
        break;
      case bench::Verdict::kWrong:
        ++score.wrong;
        break;
    }
  }
  return score;
}

}  // namespace

int main() {
  bench::Header(
      "Extension -- superlative resolver vs paper-faithful aggregation "
      "failures");
  auto world = bench::BuildWorld();

  Score paper = Evaluate(world, false);
  Score extended = Evaluate(world, true);

  std::printf("\n%-34s %-8s %-10s %-8s\n", "configuration (aggregation only)",
              "right", "partially", "wrong");
  std::printf("%-34s %-8zu %-10zu %-8zu\n", "paper-faithful (Table 10 mode)",
              paper.right, paper.partial, paper.wrong);
  std::printf("%-34s %-8zu %-10zu %-8zu\n", "with superlative extension",
              extended.right, extended.partial, extended.wrong);

  std::printf(
      "\nThe paper reports aggregation as 35%% of its failures and points\n"
      "at ORDER BY/OFFSET/LIMIT post-processing as the fix; the extension\n"
      "implements exactly that (argmax/argmin over the matched answers).\n");
  return 0;
}
