// Tables 3 and 12 (Secs. 5 and 7): measured complexity of the question-
// understanding stage. The paper's claim: gAnswer's understanding is
// polynomial (O(|Y|^3) from the parser), while DEANNA's is NP-hard (joint
// disambiguation as ILP) — so as questions carry more relation phrases,
// DEANNA's understanding cost (branch-and-bound nodes, coherence pairs)
// grows combinatorially while ours stays flat.

#include <algorithm>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench_support.h"
#include "deanna/deanna_qa.h"
#include "nlp/tokenizer.h"
#include "qa/ganswer.h"

using namespace ganswer;

namespace {

// Builds a question with `k` relation phrases by conjoining verb phrases
// inside one relative clause.
std::string QuestionWithRelations(const bench::BenchWorld& world, size_t k) {
  const auto& kb = world.kb;
  std::string q = "Give me all people that were born in Philadelphia";
  const char* tails[] = {
      " and died in Berlin",
      " and played in Philadelphia",
      " and starred in Philadelphia",
      " and played for Philadelphia",
  };
  for (size_t i = 1; i < k && i - 1 < 4; ++i) q += tails[i - 1];
  (void)kb;
  return q + " ?";
}

double Median(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  return v.empty() ? 0.0 : v[v.size() / 2];
}

}  // namespace

int main() {
  bench::Header("Tables 3/12 -- understanding-stage complexity, measured");

  datagen::KbGenerator::Options kb_opt;
  kb_opt.num_families = 400;
  kb_opt.num_films = 300;
  auto world = bench::BuildWorld(kb_opt);

  qa::GAnswer ours(&world.kb.graph, &world.lexicon, world.verified.get());
  deanna::DeannaQa::Options dopt;
  dopt.linking.max_candidates = 40;
  dopt.linking.min_confidence = 0.1;
  // The baseline runs on the raw mined dictionary (DEANNA has no human
  // verification pass) and with its unpruned candidate lists.
  deanna::DeannaQa baseline(&world.kb.graph, &world.lexicon,
                            world.mined.get(), dopt);

  std::printf("\n%-10s %-8s %-16s %-18s %-12s %-14s\n", "relations", "words",
              "ours-underst", "deanna-underst", "ilp-nodes", "coherence-pairs");
  const int kRepeats = 7;
  for (size_t k = 1; k <= 5; ++k) {
    std::string q = QuestionWithRelations(world, k);
    std::vector<double> ours_ms, deanna_ms;
    size_t ilp_nodes = 0, coherence = 0;
    size_t words = nlp::Tokenizer::Tokenize(q).size();
    for (int rep = 0; rep < kRepeats; ++rep) {
      auto g = ours.Ask(q);
      auto d = baseline.Ask(q);
      if (g.ok()) ours_ms.push_back(g->understanding_ms);
      if (d.ok()) {
        deanna_ms.push_back(d->understanding_ms);
        ilp_nodes = d->ilp_nodes;
        coherence = d->coherence_pairs;
      }
    }
    std::printf("%-10zu %-8zu %11.3f ms %13.3f ms %-12zu %-14zu\n", k, words,
                Median(ours_ms), Median(deanna_ms), ilp_nodes, coherence);
  }

  // Serving throughput under repeated-question traffic: the same batch
  // through an uncached system and through one with the question cache
  // warmed — the cache turns each repeat into a lookup.
  std::printf("\ncached vs uncached BatchAnswer throughput\n");
  {
    std::vector<std::string> batch;
    const size_t kDistinct = 10;
    const size_t kRepeats = 20;
    for (size_t rep = 0; rep < kRepeats; ++rep) {
      for (size_t i = 0; i < kDistinct && i < world.workload.size(); ++i) {
        batch.push_back(world.workload[i].text);
      }
    }

    WallTimer timer;
    auto uncached_results = ours.BatchAnswer(batch);
    double uncached_ms = timer.ElapsedMillis();

    qa::GAnswer::Options copt;
    copt.question_cache_capacity = 1024;
    qa::GAnswer cached(&world.kb.graph, &world.lexicon, world.verified.get(),
                       copt);
    auto warmup = cached.BatchAnswer(batch);  // fills the cache
    timer.Restart();
    auto cached_results = cached.BatchAnswer(batch);
    double cached_ms = timer.ElapsedMillis();
    (void)uncached_results;
    (void)warmup;
    (void)cached_results;

    double uncached_qps = uncached_ms > 0 ? batch.size() * 1000.0 / uncached_ms
                                          : 0.0;
    double cached_qps = cached_ms > 0 ? batch.size() * 1000.0 / cached_ms : 0.0;
    auto cstats = cached.cache_stats();
    std::printf(
        "  batch %zu (%zu distinct): uncached %.0f q/s, cache-warm %.0f q/s, "
        "%llu hits / %llu misses\n",
        batch.size(), kDistinct, uncached_qps, cached_qps,
        static_cast<unsigned long long>(cstats.hits),
        static_cast<unsigned long long>(cstats.misses));
    bench::JsonLine("table12_query_cache")
        .Field("phase", "batch_answer")
        .Field("batch_size", batch.size())
        .Field("distinct_questions", kDistinct)
        .Field("uncached_qps", uncached_qps)
        .Field("cached_warm_qps", cached_qps)
        .Field("cache_hits", static_cast<size_t>(cstats.hits))
        .Field("cache_misses", static_cast<size_t>(cstats.misses))
        .Field("hardware_threads",
               static_cast<size_t>(std::thread::hardware_concurrency()))
        .Emit();
  }

  std::printf(
      "\nPaper-shape check (Table 12): with more relation phrases, DEANNA's\n"
      "branch-and-bound nodes and coherence pairs grow combinatorially and\n"
      "its understanding time with them, while gAnswer's understanding cost\n"
      "grows only polynomially with sentence length.\n");
  return 0;
}
