// Table 7 (Exp 2, Sec. 6.2): running time of offline dictionary building,
// for the small (wordnet-wikipedia-like) and large (freebase-wikipedia-
// like) phrase datasets at path-length thresholds theta = 2 and theta = 4,
// plus the serial-vs-parallel speedup of the multi-threaded miner.
//
// The paper reports 17 min / 3.88 hrs (wordnet) and 119 min / 30.33 hrs
// (freebase) on full DBpedia; at our synthetic scale the absolute numbers
// are milliseconds-to-seconds, but the shape must hold: cost grows with
// the phrase dataset and super-linearly with theta. The parallel engine
// partitions phrases across a thread pool over the shared CSR graph;
// the mined dictionary is identical for any thread count, so the only
// difference is wall-clock time.
//
// Machine-readable output: one BENCH_JSON line per (dataset, theta,
// threads) measurement.

#include <cstdio>
#include <thread>

#include "bench_support.h"
#include "linking/entity_index.h"
#include "rdf/signature_index.h"
#include "store/snapshot.h"

using namespace ganswer;

int main() {
  bench::Header("Table 7 -- offline dictionary build time");

  datagen::KbGenerator::Options kb_opt;
  auto kb = datagen::KbGenerator::Generate(kb_opt);
  if (!kb.ok()) return 1;
  std::printf("KB: %zu triples, %zu terms\n", kb->graph.NumTriples(),
              kb->graph.NumTerms());
  std::printf("hardware threads: %u\n", std::thread::hardware_concurrency());

  struct DatasetSpec {
    const char* name;
    size_t filler_phrases;
    size_t pairs_per_phrase;
  };
  // wordnet-wikipedia : freebase-wikipedia phrase counts are roughly 1:4.6
  // (350K vs 1.6M, Table 5); the filler counts mirror the ratio.
  const DatasetSpec specs[] = {
      {"wordnet-wikipedia-like", 60, 10},
      {"freebase-wikipedia-like", 280, 10},
  };
  const int thread_counts[] = {1, 4};

  std::printf("\n%-26s %-8s %-7s %-8s %-12s %-10s %-8s\n", "phrase dataset",
              "phrases", "theta", "threads", "build time", "paths", "speedup");
  for (const DatasetSpec& spec : specs) {
    datagen::PhraseDatasetGenerator::Options popt;
    popt.num_filler_phrases = spec.filler_phrases;
    popt.pairs_per_phrase = spec.pairs_per_phrase;
    auto phrases = datagen::PhraseDatasetGenerator::Generate(*kb, popt);
    auto dataset = datagen::PhraseDatasetGenerator::StripGold(phrases);

    for (size_t theta : {2u, 4u}) {
      double serial_ms = 0;
      for (int threads : thread_counts) {
        nlp::Lexicon lexicon;
        paraphrase::ParaphraseDictionary dict(&lexicon);
        paraphrase::DictionaryBuilder::Options mopt;
        mopt.max_path_length = theta;
        mopt.max_paths_per_pair = 5000;
        mopt.exec.threads = threads;
        paraphrase::DictionaryBuilder builder(mopt);
        paraphrase::DictionaryBuilder::BuildStats stats;
        WallTimer timer;
        Status st = builder.Build(kb->graph, dataset, &dict, &stats);
        double ms = timer.ElapsedMillis();
        if (!st.ok()) {
          std::fprintf(stderr, "%s\n", st.ToString().c_str());
          return 1;
        }
        if (threads == 1) serial_ms = ms;
        double speedup = ms > 0 ? serial_ms / ms : 0.0;
        std::printf("%-26s %-8zu %-7zu %-8d %-9.1f ms %-10zu %.2fx\n",
                    spec.name, dataset.size(), theta, threads, ms,
                    stats.paths_enumerated, speedup);
        bench::JsonLine("table7_offline_time")
            .Field("phase", "mine")
            .Field("dataset", spec.name)
            .Field("phrases", dataset.size())
            .Field("theta", theta)
            .Field("threads", threads)
            .Field("hardware_threads",
                   static_cast<size_t>(std::thread::hardware_concurrency()))
            .Field("build_ms", ms)
            .Field("speedup_vs_serial", speedup)
            .Field("paths_enumerated", stats.paths_enumerated)
            .Field("kb_triples", kb->graph.NumTriples())
            .Field("kb_terms", kb->graph.NumTerms())
            .Emit();
      }
    }
  }

  // Cold start: the full offline rebuild a fresh process pays (KB gen +
  // mining + index construction) against loading the same artifacts from a
  // binary snapshot — the serve-many startup path.
  std::printf("\ncold start: offline rebuild vs snapshot load\n");
  {
    WallTimer rebuild_timer;
    auto world = bench::BuildWorld(kb_opt);
    rdf::SignatureIndex signatures(world.kb.graph);
    linking::EntityIndex entity_index(world.kb.graph);
    double rebuild_ms = rebuild_timer.ElapsedMillis();

    std::string bytes;
    store::SnapshotStats sstats;
    Status st = store::WriteSnapshot(world.kb.graph, signatures, entity_index,
                                     *world.verified, &bytes, &sstats);
    if (!st.ok()) {
      std::fprintf(stderr, "%s\n", st.ToString().c_str());
      return 1;
    }
    WallTimer load_timer;
    auto snapshot = store::ReadSnapshot(bytes, &world.lexicon);
    double load_ms = load_timer.ElapsedMillis();
    if (!snapshot.ok()) {
      std::fprintf(stderr, "%s\n", snapshot.status().ToString().c_str());
      return 1;
    }
    double mb = static_cast<double>(sstats.total_bytes) / (1024.0 * 1024.0);
    double speedup = load_ms > 0 ? rebuild_ms / load_ms : 0.0;
    std::printf("  rebuild %.1f ms  snapshot load %.2f ms  (%.2f MB)  %.0fx\n",
                rebuild_ms, load_ms, mb, speedup);
    bench::JsonLine("table7_cold_start")
        .Field("phase", "cold_start")
        .Field("rebuild_ms", rebuild_ms)
        .Field("snapshot_load_ms", load_ms)
        .Field("snapshot_mb", mb)
        .Field("speedup_vs_rebuild", speedup)
        .Field("snapshot_graph_bytes", sstats.graph_bytes)
        .Field("snapshot_signature_bytes", sstats.signature_bytes)
        .Field("snapshot_entity_index_bytes", sstats.entity_index_bytes)
        .Field("snapshot_dictionary_bytes", sstats.dictionary_bytes)
        .Field("hardware_threads",
               static_cast<size_t>(std::thread::hardware_concurrency()))
        .Field("kb_triples", world.kb.graph.NumTriples())
        .Field("kb_terms", world.kb.graph.NumTerms())
        .Emit();
    if (load_ms * 10.0 > rebuild_ms) {
      std::fprintf(stderr,
                   "FAIL: snapshot load is not >=10x faster than rebuild\n");
      return 1;
    }
  }

  std::printf(
      "\nPaper-shape check: theta=4 costs a large multiple of theta=2, and\n"
      "the freebase-like dataset a multiple of the wordnet-like one\n"
      "(paper: 17 min -> 3.88 hrs and 119 min -> 30.33 hrs). The threads=4\n"
      "rows show the parallel miner's speedup on this machine (bounded by\n"
      "the hardware thread count above; identical output either way).\n");
  return 0;
}
