// Table 7 (Exp 2, Sec. 6.2): running time of offline dictionary building,
// for the small (wordnet-wikipedia-like) and large (freebase-wikipedia-
// like) phrase datasets at path-length thresholds theta = 2 and theta = 4.
//
// The paper reports 17 min / 3.88 hrs (wordnet) and 119 min / 30.33 hrs
// (freebase) on full DBpedia; at our synthetic scale the absolute numbers
// are milliseconds-to-seconds, but the shape must hold: cost grows with
// the phrase dataset and super-linearly with theta.

#include <cstdio>

#include "bench_support.h"

using namespace ganswer;

int main() {
  bench::Header("Table 7 -- offline dictionary build time");

  datagen::KbGenerator::Options kb_opt;
  auto kb = datagen::KbGenerator::Generate(kb_opt);
  if (!kb.ok()) return 1;
  std::printf("KB: %zu triples, %zu terms\n", kb->graph.NumTriples(),
              kb->graph.NumTerms());

  struct DatasetSpec {
    const char* name;
    size_t filler_phrases;
    size_t pairs_per_phrase;
  };
  // wordnet-wikipedia : freebase-wikipedia phrase counts are roughly 1:4.6
  // (350K vs 1.6M, Table 5); the filler counts mirror the ratio.
  const DatasetSpec specs[] = {
      {"wordnet-wikipedia-like", 60, 10},
      {"freebase-wikipedia-like", 280, 10},
  };

  std::printf("\n%-26s %-10s %-10s %-12s %-12s\n", "phrase dataset", "phrases",
              "theta", "build time", "paths");
  for (const DatasetSpec& spec : specs) {
    datagen::PhraseDatasetGenerator::Options popt;
    popt.num_filler_phrases = spec.filler_phrases;
    popt.pairs_per_phrase = spec.pairs_per_phrase;
    auto phrases = datagen::PhraseDatasetGenerator::Generate(*kb, popt);
    auto dataset = datagen::PhraseDatasetGenerator::StripGold(phrases);

    for (size_t theta : {2u, 4u}) {
      nlp::Lexicon lexicon;
      paraphrase::ParaphraseDictionary dict(&lexicon);
      paraphrase::DictionaryBuilder::Options mopt;
      mopt.max_path_length = theta;
      mopt.max_paths_per_pair = 5000;
      paraphrase::DictionaryBuilder builder(mopt);
      paraphrase::DictionaryBuilder::BuildStats stats;
      WallTimer timer;
      Status st = builder.Build(kb->graph, dataset, &dict, &stats);
      double ms = timer.ElapsedMillis();
      if (!st.ok()) {
        std::fprintf(stderr, "%s\n", st.ToString().c_str());
        return 1;
      }
      std::printf("%-26s %-10zu %-10zu %-9.1f ms %-12zu\n", spec.name,
                  dataset.size(), theta, ms, stats.paths_enumerated);
    }
  }

  std::printf(
      "\nPaper-shape check: theta=4 costs a large multiple of theta=2, and\n"
      "the freebase-like dataset a multiple of the wordnet-like one\n"
      "(paper: 17 min -> 3.88 hrs and 119 min -> 30.33 hrs).\n");
  return 0;
}
