#ifndef GANSWER_BENCH_BENCH_SUPPORT_H_
#define GANSWER_BENCH_BENCH_SUPPORT_H_

#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "common/timer.h"
#include "datagen/kb_generator.h"
#include "datagen/phrase_dataset_generator.h"
#include "datagen/workload.h"
#include "nlp/lexicon.h"
#include "paraphrase/dictionary_builder.h"

namespace ganswer {
namespace bench {

/// Peak resident set size of this process in kilobytes, from the VmHWM
/// line of /proc/self/status (Linux only; 0 where unavailable). The
/// high-water mark is monotone over the process lifetime, so per-phase
/// deltas need a fork — see bench_storage_tier.
inline size_t ReadVmHwmKb() {
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return 0;
  char line[256];
  size_t kb = 0;
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    if (std::sscanf(line, "VmHWM: %zu kB", &kb) == 1) break;
  }
  std::fclose(f);
  return kb;
}

/// Everything a bench binary needs: the KB, the phrase dataset with gold,
/// the mined and the verified dictionaries, and the question workload.
struct BenchWorld {
  datagen::KbGenerator::GeneratedKb kb;
  std::vector<datagen::PhraseWithGold> phrases;
  nlp::Lexicon lexicon;
  std::unique_ptr<paraphrase::ParaphraseDictionary> mined;
  std::unique_ptr<paraphrase::ParaphraseDictionary> verified;
  std::vector<datagen::GoldQuestion> workload;
  double kb_build_ms = 0;
  double mine_ms = 0;
};

inline BenchWorld BuildWorld(
    datagen::KbGenerator::Options kb_options = {},
    datagen::PhraseDatasetGenerator::Options phrase_options = {},
    paraphrase::DictionaryBuilder::Options mine_options = [] {
      paraphrase::DictionaryBuilder::Options o;
      o.max_path_length = 3;
      return o;
    }()) {
  BenchWorld w;
  WallTimer timer;
  auto kb = datagen::KbGenerator::Generate(kb_options);
  if (!kb.ok()) {
    std::fprintf(stderr, "KB generation failed: %s\n",
                 kb.status().ToString().c_str());
    std::abort();
  }
  w.kb = std::move(kb).value();
  w.kb_build_ms = timer.ElapsedMillis();

  w.phrases = datagen::PhraseDatasetGenerator::Generate(w.kb, phrase_options);
  auto dataset = datagen::PhraseDatasetGenerator::StripGold(w.phrases);

  timer.Restart();
  w.mined = std::make_unique<paraphrase::ParaphraseDictionary>(&w.lexicon);
  paraphrase::DictionaryBuilder builder(mine_options);
  Status st = builder.Build(w.kb.graph, dataset, w.mined.get());
  if (!st.ok()) {
    std::fprintf(stderr, "mining failed: %s\n", st.ToString().c_str());
    std::abort();
  }
  w.mine_ms = timer.ElapsedMillis();

  w.verified = std::make_unique<paraphrase::ParaphraseDictionary>(&w.lexicon);
  datagen::VerifyDictionary(w.phrases, w.kb.graph, *w.mined,
                            w.verified.get());
  w.workload = datagen::WorkloadGenerator::Generate(w.kb, {});
  return w;
}

/// QALD-3-style per-question judgment and metrics.
enum class Verdict { kRight, kPartial, kWrong };

inline Verdict Judge(const datagen::GoldQuestion& q, bool is_ask,
                     bool ask_result, const std::vector<std::string>& answers) {
  if (q.is_ask) {
    if (!is_ask) return Verdict::kWrong;
    return ask_result == q.gold_ask ? Verdict::kRight : Verdict::kWrong;
  }
  if (answers.empty()) return Verdict::kWrong;
  std::vector<std::string> gold = q.gold_answers;
  std::sort(gold.begin(), gold.end());
  std::vector<std::string> got = answers;
  std::sort(got.begin(), got.end());
  got.erase(std::unique(got.begin(), got.end()), got.end());
  if (got == gold) return Verdict::kRight;
  std::vector<std::string> inter;
  std::set_intersection(got.begin(), got.end(), gold.begin(), gold.end(),
                        std::back_inserter(inter));
  return inter.empty() ? Verdict::kWrong : Verdict::kPartial;
}

/// Per-question precision/recall in the QALD macro-average style.
struct PrEntry {
  double precision = 0;
  double recall = 0;
};

inline PrEntry PrecisionRecall(const datagen::GoldQuestion& q, bool is_ask,
                               bool ask_result,
                               const std::vector<std::string>& answers) {
  PrEntry out;
  if (q.is_ask) {
    bool right = is_ask && ask_result == q.gold_ask;
    out.precision = out.recall = right ? 1.0 : 0.0;
    return out;
  }
  if (answers.empty() || q.gold_answers.empty()) return out;
  std::vector<std::string> gold = q.gold_answers;
  std::sort(gold.begin(), gold.end());
  std::vector<std::string> got = answers;
  std::sort(got.begin(), got.end());
  got.erase(std::unique(got.begin(), got.end()), got.end());
  std::vector<std::string> inter;
  std::set_intersection(got.begin(), got.end(), gold.begin(), gold.end(),
                        std::back_inserter(inter));
  out.precision = static_cast<double>(inter.size()) / got.size();
  out.recall = static_cast<double>(inter.size()) / gold.size();
  return out;
}

/// \brief One machine-readable result line: a flat JSON object printed as
/// `BENCH_JSON {...}` on stdout.
///
/// The prefix makes the lines grep-able out of the human-readable tables,
/// so trajectory tooling can do `grep ^BENCH_JSON out.txt | cut -c12- >>
/// BENCH_<name>.json` and track phase timings, thread counts and KB sizes
/// across commits. Keys are emitted in insertion order; every line carries
/// the bench name as its first field.
class JsonLine {
 public:
  explicit JsonLine(const std::string& bench) { Field("bench", bench); }

  JsonLine& Field(const std::string& key, const std::string& value) {
    AppendKey(key);
    body_ += '"';
    AppendEscaped(value);
    body_ += '"';
    return *this;
  }
  JsonLine& Field(const std::string& key, const char* value) {
    return Field(key, std::string(value));
  }
  JsonLine& Field(const std::string& key, double value) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.6g", value);
    AppendKey(key);
    body_ += buf;
    return *this;
  }
  JsonLine& Field(const std::string& key, size_t value) {
    AppendKey(key);
    body_ += std::to_string(value);
    return *this;
  }
  JsonLine& Field(const std::string& key, int value) {
    AppendKey(key);
    body_ += std::to_string(value);
    return *this;
  }
  JsonLine& Field(const std::string& key, bool value) {
    AppendKey(key);
    body_ += value ? "true" : "false";
    return *this;
  }

  /// Prints the line. Call once; the object is spent afterwards. Every
  /// line automatically carries the process's peak RSS so memory regressions
  /// show up in the same artifact as the timings.
  void Emit() {
    Field("vm_hwm_kb", ReadVmHwmKb());
    std::printf("BENCH_JSON {%s}\n", body_.c_str());
  }

 private:
  void AppendKey(const std::string& key) {
    if (!body_.empty()) body_ += ',';
    body_ += '"';
    AppendEscaped(key);
    body_ += "\":";
  }
  void AppendEscaped(const std::string& s) {
    for (char c : s) {
      if (c == '"' || c == '\\') body_ += '\\';
      if (c == '\n') {
        body_ += "\\n";
        continue;
      }
      body_ += c;
    }
  }

  std::string body_;
};

/// Prints a horizontal rule and a centered header, bench-report style.
inline void Header(const std::string& title) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("================================================================\n");
}

}  // namespace bench
}  // namespace ganswer

#endif  // GANSWER_BENCH_BENCH_SUPPORT_H_
