// Table 8 (Exp 3, Sec. 6.3): end-to-end evaluation on the QALD-like
// workload, in the QALD-3 result format: processed / right / partially
// right / recall / precision / F-1, for the graph data-driven system
// against the DEANNA-style joint-disambiguation baseline.
//
// Paper's numbers on real QALD-3 (99 questions): gAnswer processed 76,
// right 32, partial 11, P=R=F1=0.40; DEANNA processed 27, right 21,
// P=R=F1=0.21. Expected shape here: gAnswer processes more questions and
// answers more of them fully right than DEANNA; both fail the aggregation
// / entity-hard / relation-hard categories.

#include <cstdio>

#include "bench_support.h"
#include "deanna/deanna_qa.h"
#include "qa/ganswer.h"

using namespace ganswer;

namespace {

struct SystemScore {
  std::string name;
  size_t processed = 0;
  size_t right = 0;
  size_t partial = 0;
  double sum_precision = 0;
  double sum_recall = 0;
  size_t total = 0;

  void Print() const {
    double recall = sum_recall / total;
    double precision = sum_precision / total;
    double f1 = (precision + recall) > 0
                    ? 2 * precision * recall / (precision + recall)
                    : 0.0;
    std::printf("%-22s %-10zu %-7zu %-10zu %-8.2f %-10.2f %-6.2f\n",
                name.c_str(), processed, right, partial, recall, precision,
                f1);
  }
};

}  // namespace

int main() {
  bench::Header("Table 8 -- end-to-end QALD-style evaluation");
  auto world = bench::BuildWorld();
  std::printf("KB: %zu triples; workload: %zu questions\n",
              world.kb.graph.NumTriples(), world.workload.size());

  qa::GAnswer ours(&world.kb.graph, &world.lexicon, world.verified.get());
  // DEANNA maps relation phrases with its own automatically built lexicon;
  // the paper's human-verification pass belongs to gAnswer's offline
  // pipeline, so the baseline runs on the raw mined dictionary.
  deanna::DeannaQa baseline(&world.kb.graph, &world.lexicon,
                            world.mined.get());

  SystemScore ours_score{"gAnswer (this paper)"};
  SystemScore deanna_score{"DEANNA baseline"};
  ours_score.total = deanna_score.total = world.workload.size();

  for (const datagen::GoldQuestion& q : world.workload) {
    auto g = ours.Ask(q.text);
    if (g.ok()) {
      std::vector<std::string> answers;
      for (const auto& a : g->answers) answers.push_back(a.text);
      bool processed = g->failure == qa::GAnswer::FailureStage::kNone ||
                       g->failure == qa::GAnswer::FailureStage::kNoMatches;
      if (processed) ++ours_score.processed;
      bench::Verdict v = bench::Judge(q, g->is_ask, g->ask_result, answers);
      if (v == bench::Verdict::kRight) ++ours_score.right;
      if (v == bench::Verdict::kPartial) ++ours_score.partial;
      auto pr = bench::PrecisionRecall(q, g->is_ask, g->ask_result, answers);
      ours_score.sum_precision += pr.precision;
      ours_score.sum_recall += pr.recall;
    }

    auto d = baseline.Ask(q.text);
    if (d.ok()) {
      if (d->processed) ++deanna_score.processed;
      bench::Verdict v = bench::Judge(q, d->is_ask, d->ask_result, d->answers);
      if (v == bench::Verdict::kRight) ++deanna_score.right;
      if (v == bench::Verdict::kPartial) ++deanna_score.partial;
      auto pr = bench::PrecisionRecall(q, d->is_ask, d->ask_result, d->answers);
      deanna_score.sum_precision += pr.precision;
      deanna_score.sum_recall += pr.recall;
    }
  }

  std::printf("\n%-22s %-10s %-7s %-10s %-8s %-10s %-6s\n", "system",
              "processed", "right", "partially", "recall", "precision", "F-1");
  ours_score.Print();
  deanna_score.Print();

  std::printf(
      "\nPaper-shape check (Table 8): gAnswer right >= DEANNA right, and\n"
      "gAnswer's macro F-1 above DEANNA's; neither system answers the\n"
      "aggregation / entity-hard / relation-hard questions.\n");
  return 0;
}
