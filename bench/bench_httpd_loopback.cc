// Over-the-wire QPS: the loopback load generator for the serving tier.
//
// Extends the PR 2 table12 story — in-process BatchAnswer QPS and
// cached-vs-uncached throughput — to a real socket: the full path is now
// HTTP parse -> admission queue -> worker Ask() -> JSON response, measured
// from the client side. Each config boots a QaService on an ephemeral
// port, runs C closed-loop client threads over keep-alive connections, and
// reports QPS plus p50/p95/p99/p99.9 latency as BENCH_JSON lines:
//
//   BENCH_JSON {"bench":"httpd_loopback","closed_loop":true,...}
//
// Closed-loop means each client waits for its response before sending the
// next request, so the offered load adapts to the server and queueing
// delay is hidden (coordinated omission) — good for peak-throughput
// tracking, wrong for tail latency. bench_loadgen is the open-loop
// complement; the closed_loop field keeps the two distinguishable in the
// merged artifact.
//
// Run: ./build/bench/bench_httpd_loopback [requests_per_client]

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "bench_support.h"
#include "common/latency_histogram.h"
#include "common/timer.h"
#include "server/http_client.h"
#include "server/qa_service.h"
#include "store/snapshot.h"

using namespace ganswer;

namespace {

struct LoadResult {
  size_t ok = 0;
  size_t rejected = 0;  ///< 503 overflow answers.
  size_t errors = 0;
  LatencyHistogram latency;
  double wall_s = 0;
};

/// C closed-loop clients, each issuing `per_client` POST /answer requests
/// over one keep-alive connection, questions drawn round-robin from the
/// workload.
LoadResult RunLoad(int port, const std::vector<std::string>& questions,
                   int clients, size_t per_client) {
  std::vector<LoadResult> partial(static_cast<size_t>(clients));
  std::vector<std::thread> threads;
  WallTimer wall;
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      LoadResult& mine = partial[static_cast<size_t>(c)];
      server::BlockingHttpClient client;
      if (!client.Connect("127.0.0.1", port).ok()) return;
      for (size_t i = 0; i < per_client; ++i) {
        const std::string& q =
            questions[(static_cast<size_t>(c) + i) % questions.size()];
        std::string body = "{\"question\": \"" + q + "\"}";
        WallTimer timer;
        auto response = client.Post("/answer", body);
        double ms = timer.ElapsedMillis();
        if (!response.ok()) {
          ++mine.errors;
          continue;
        }
        if (response->status == 200) {
          ++mine.ok;
          mine.latency.RecordMillis(ms);
        } else if (response->status == 503) {
          ++mine.rejected;
        } else {
          ++mine.errors;
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  LoadResult total;
  total.wall_s = wall.ElapsedSeconds();
  for (LoadResult& p : partial) {
    total.ok += p.ok;
    total.rejected += p.rejected;
    total.errors += p.errors;
    total.latency.Merge(p.latency);
  }
  return total;
}

}  // namespace

int main(int argc, char** argv) {
  size_t per_client = argc > 1 ? static_cast<size_t>(std::atoll(argv[1]))
                               : 200;

  bench::Header("Serving tier: over-the-wire QPS and latency (loopback)");

  // Offline once: demo KB -> snapshot file the service cold-starts from.
  bench::BenchWorld world = bench::BuildWorld();
  const std::string snapshot_path = "bench_httpd_loopback.snap";
  if (Status st = store::WriteSnapshotFile(world.kb.graph, *world.verified,
                                           snapshot_path);
      !st.ok()) {
    std::fprintf(stderr, "snapshot write failed: %s\n",
                 st.ToString().c_str());
    return 1;
  }
  std::vector<std::string> questions;
  for (const auto& gold : world.workload) {
    if (!gold.is_ask) questions.push_back(gold.text);
    if (questions.size() >= 64) break;
  }
  if (questions.empty()) questions.push_back("Who is the mayor of Berlin ?");

  struct Config {
    int threads;
    int clients;
    int max_queue;
    size_t cache;
  };
  const Config configs[] = {
      {1, 2, 64, 0},      // serial worker, cache off: the floor
      {4, 8, 64, 0},      // parallel workers, cache off
      {4, 8, 64, 4096},   // parallel + question cache: the serving config
      {4, 16, 4, 4096},   // tiny queue under pressure: load shedding story
  };

  std::printf("%8s %8s %10s %10s %10s %10s %10s %10s %10s\n", "threads",
              "clients", "max_queue", "qps", "p50_ms", "p95_ms", "p99_ms",
              "p99.9_ms", "rejected");
  for (const Config& config : configs) {
    server::QaService::Options options;
    options.snapshot_path = snapshot_path;
    options.port = 0;
    options.threads = config.threads;
    options.max_queue = config.max_queue;
    options.question_cache_capacity = config.cache;
    server::QaService service(options);
    if (Status st = service.Start(); !st.ok()) {
      std::fprintf(stderr, "startup failed: %s\n", st.ToString().c_str());
      return 1;
    }

    // Warm-up pass primes the cache (when on) and the connection path.
    RunLoad(service.port(), questions, config.clients,
            std::max<size_t>(per_client / 10, 1));
    LoadResult result =
        RunLoad(service.port(), questions, config.clients, per_client);
    service.Shutdown();

    double qps = result.wall_s > 0 ? result.ok / result.wall_s : 0;
    double p50 = result.latency.QuantileMillis(0.50);
    double p95 = result.latency.QuantileMillis(0.95);
    double p99 = result.latency.QuantileMillis(0.99);
    double p99_9 = result.latency.QuantileMillis(0.999);
    std::printf("%8d %8d %10d %10.0f %10.3f %10.3f %10.3f %10.3f %10zu\n",
                config.threads, config.clients, config.max_queue, qps, p50,
                p95, p99, p99_9, result.rejected);

    bench::JsonLine("httpd_loopback")
        .Field("closed_loop", true)
        .Field("threads", config.threads)
        .Field("clients", config.clients)
        .Field("max_queue", config.max_queue)
        .Field("cache_capacity", config.cache)
        .Field("hardware_threads",
               static_cast<int>(std::thread::hardware_concurrency()))
        .Field("requests_ok", result.ok)
        .Field("rejected_503", result.rejected)
        .Field("errors", result.errors)
        .Field("wall_s", result.wall_s)
        .Field("qps", qps)
        .Field("p50_ms", p50)
        .Field("p95_ms", p95)
        .Field("p99_ms", p99)
        .Field("p99_9_ms", p99_9)
        .Emit();
  }
  std::remove(snapshot_path.c_str());
  return 0;
}
