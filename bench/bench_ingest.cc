// Live-ingestion harness: batch-apply throughput and query latency under
// concurrent ingest.
//
// Phase A drives LiveKb::Apply directly (no HTTP) across batch sizes
// {1, 16, 256, 2048}: every batch pays one WAL fsync plus one O(delta)
// view rebuild, so triples/s rises steeply with batch size — the number
// that tells an operator how to size their update batches. Per-batch
// publish latency is recorded as a histogram (p50/p99), and one compaction
// is timed at the end of the largest run.
//
// Phase B measures what ingestion costs the read path. Two closed-loop
// query threads run the generated question workload (caching off, so every
// request rides the full understanding + matching pipeline) against
//   frozen       the plain snapshot service — the baseline
//   live_idle    a live service nobody is updating
//   live_ingest  a live service while an updater thread streams paced
//                POST /update batches (~1k triples/s sustained; background
//                compaction armed so it also fires during the window)
// Readers pin epoch views wait-free (RCU), so the acceptance bar is that
// live_ingest p99 stays under 2x frozen p99 — ingestion may steal CPU
// proportional to its rate, but it must never block a query.
//
// One BENCH_JSON line per (phase, point), grep-able via ^BENCH_JSON.
//
// Run: ./build/bench/bench_ingest [--smoke] [--duration-s S] [--seed N]
//   --smoke: CI mode — shortened runs, exit 1 on any transport/HTTP error.

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "bench_support.h"
#include "common/latency_histogram.h"
#include "common/random.h"
#include "common/timer.h"
#include "nlp/lexicon.h"
#include "paraphrase/paraphrase_dictionary.h"
#include "server/http_client.h"
#include "server/qa_service.h"
#include "store/live/live_kb.h"
#include "store/snapshot.h"

using namespace ganswer;

namespace {

constexpr int kQueryThreads = 2;
constexpr size_t kUpdateBatchTriples = 64;
// Sustained ingest rate for phase B: 16 batches/s x 64 triples = 1024
// triples/s. Paced, not saturating — the question is what a steady update
// stream costs concurrent queries, not what happens when a writer pegs
// every core (that regime is bench_loadgen's overload sweep).
constexpr double kUpdateBatchesPerSec = 16.0;

std::vector<rdf::UpdateOp> MakeBatch(Rng* rng, size_t batch_ops,
                                     std::vector<rdf::UpdateOp>* added) {
  static const char* kPredicates[] = {"touches", "links", "rates"};
  std::vector<rdf::UpdateOp> ops;
  ops.reserve(batch_ops);
  for (size_t i = 0; i < batch_ops; ++i) {
    if (!added->empty() && rng->Chance(0.1)) {
      rdf::UpdateOp del = (*added)[rng->Next(added->size())];
      del.is_delete = true;
      ops.push_back(std::move(del));
      continue;
    }
    rdf::UpdateOp op;
    op.subject = "ing_v" + std::to_string(rng->Next(4096));
    op.predicate = kPredicates[rng->Next(3)];
    op.object = "ing_v" + std::to_string(rng->Next(4096));
    ops.push_back(op);
    added->push_back(ops.back());
  }
  return ops;
}

/// Phase A: direct Apply throughput per batch size.
void BenchBatchThroughput(bool smoke, uint64_t seed) {
  bench::Header("Phase A: batch-apply throughput (direct, one WAL fsync + "
                "one view publish per batch)");
  std::printf("%10s %8s %10s %12s %12s %12s\n", "batch_ops", "batches",
              "total_ops", "triples/s", "p50_batch_ms", "p99_batch_ms");

  // A near-empty bootstrap base: phase A measures pure ingestion cost.
  nlp::Lexicon lexicon;
  const std::string base_path = "bench_ingest_base.snap";
  {
    rdf::RdfGraph base;
    base.AddTriple("ing_seed", "touches", "ing_seed");
    if (!base.Finalize().ok()) std::exit(1);
    paraphrase::ParaphraseDictionary dict(&lexicon);
    if (!store::WriteSnapshotFile(base, dict, base_path).ok()) std::exit(1);
  }

  for (size_t batch_ops : {size_t{1}, size_t{16}, size_t{256}, size_t{2048}}) {
    size_t total_target = smoke ? 2048 : 16384;
    size_t batches = std::clamp<size_t>(total_target / batch_ops, 1,
                                        smoke ? 128 : 1024);
    std::string dir = "bench_ingest_store";
    std::filesystem::remove_all(dir);
    store::live::LiveKb::Options options;
    options.dir = dir;
    options.base_snapshot = base_path;
    options.lexicon = &lexicon;
    options.background_compaction = false;
    auto kb = store::live::LiveKb::Open(std::move(options));
    if (!kb.ok()) {
      std::fprintf(stderr, "open failed: %s\n",
                   kb.status().ToString().c_str());
      std::exit(1);
    }

    Rng rng(seed ^ batch_ops);
    std::vector<rdf::UpdateOp> added;
    LatencyHistogram batch_latency;
    WallTimer wall;
    for (size_t b = 0; b < batches; ++b) {
      std::vector<rdf::UpdateOp> ops = MakeBatch(&rng, batch_ops, &added);
      WallTimer one;
      auto result = (*kb)->Apply(ops);
      if (!result.ok()) {
        std::fprintf(stderr, "apply failed: %s\n",
                     result.status().ToString().c_str());
        std::exit(1);
      }
      batch_latency.Record(static_cast<uint64_t>(one.ElapsedMillis() * 1e3));
    }
    double wall_s = wall.ElapsedSeconds();
    size_t total_ops = batch_ops * batches;
    double triples_per_s = wall_s > 0 ? total_ops / wall_s : 0;

    store::live::LiveKb::IngestCounters before = (*kb)->counters();
    // One timed compaction folds the accumulated delta.
    WallTimer compact_timer;
    if (Status st = (*kb)->Compact(); !st.ok()) {
      std::fprintf(stderr, "compact failed: %s\n", st.ToString().c_str());
      std::exit(1);
    }
    double compact_ms = compact_timer.ElapsedMillis();
    store::live::LiveKb::IngestCounters counters = (*kb)->counters();

    std::printf("%10zu %8zu %10zu %12.0f %12.3f %12.3f\n", batch_ops,
                batches, total_ops, triples_per_s,
                batch_latency.QuantileMillis(0.50),
                batch_latency.QuantileMillis(0.99));
    bench::JsonLine("ingest_batch")
        .Field("seed", seed)
        .Field("batch_ops", batch_ops)
        .Field("batches", batches)
        .Field("total_ops", total_ops)
        .Field("wall_s", wall_s)
        .Field("triples_per_s", triples_per_s)
        .Field("p50_batch_ms", batch_latency.QuantileMillis(0.50))
        .Field("p99_batch_ms", batch_latency.QuantileMillis(0.99))
        .Field("epoch", counters.epoch)
        .Field("delta_triples_before_compact", before.delta_triples)
        .Field("wal_bytes_before_compact", before.wal_bytes)
        .Field("compact_ms", compact_ms)
        .Field("delta_triples_after_compact", counters.delta_triples)
        .Emit();
    kb->reset();
    std::filesystem::remove_all(dir);
  }
  std::remove(base_path.c_str());
}

struct QueryRun {
  LatencyHistogram latency;
  size_t requests = 0;
  size_t errors = 0;
  size_t updates_committed = 0;
  uint64_t final_epoch = 0;
  double update_batches_per_s = 0;
};

/// Closed-loop query load against \p port for \p duration_s; optionally a
/// concurrent updater streams /update batches the whole time.
QueryRun RunQueries(int port, const std::vector<std::string>& questions,
                    double duration_s, bool with_ingest, uint64_t seed) {
  QueryRun run;
  std::atomic<bool> stop{false};
  std::atomic<size_t> qcursor{0};

  std::thread updater;
  std::atomic<size_t> update_batches{0};
  std::atomic<uint64_t> last_epoch{0};
  WallTimer wall;
  if (with_ingest) {
    updater = std::thread([&] {
      server::BlockingHttpClient client;
      if (!client.Connect("127.0.0.1", port).ok()) return;
      Rng rng(seed ^ 0xfeed);
      static const char* kPredicates[] = {"touches", "links", "rates"};
      auto next_send = std::chrono::steady_clock::now();
      const auto gap = std::chrono::microseconds(
          static_cast<int64_t>(1e6 / kUpdateBatchesPerSec));
      while (!stop.load(std::memory_order_relaxed)) {
        std::this_thread::sleep_until(next_send);
        next_send += gap;
        std::string body;
        for (size_t i = 0; i < kUpdateBatchTriples; ++i) {
          body += "<ing_v" + std::to_string(rng.Next(4096)) + "> <" +
                  kPredicates[rng.Next(3)] + "> <ing_v" +
                  std::to_string(rng.Next(4096)) + "> .\n";
        }
        auto r = client.Post("/update", body);
        if (!r.ok() || r->status != 200) continue;
        update_batches.fetch_add(1, std::memory_order_relaxed);
        size_t at = r->body.find("\"epoch\":");
        if (at != std::string::npos) {
          last_epoch.store(
              static_cast<uint64_t>(std::atoll(r->body.c_str() + at + 8)),
              std::memory_order_relaxed);
        }
      }
    });
  }

  std::vector<QueryRun> partial(kQueryThreads);
  std::vector<std::thread> askers;
  for (int t = 0; t < kQueryThreads; ++t) {
    askers.emplace_back([&, t] {
      QueryRun& mine = partial[static_cast<size_t>(t)];
      server::BlockingHttpClient client;
      if (!client.Connect("127.0.0.1", port).ok()) {
        ++mine.errors;
        return;
      }
      while (!stop.load(std::memory_order_relaxed)) {
        size_t i = qcursor.fetch_add(1, std::memory_order_relaxed);
        const std::string& q = questions[i % questions.size()];
        WallTimer one;
        auto r = client.Post("/answer", "{\"question\": \"" + q + "\"}");
        double ms = one.ElapsedMillis();
        ++mine.requests;
        if (!r.ok() || r->status != 200) {
          ++mine.errors;
          continue;
        }
        mine.latency.Record(static_cast<uint64_t>(ms * 1e3));
      }
    });
  }

  std::this_thread::sleep_for(
      std::chrono::milliseconds(static_cast<int>(duration_s * 1000)));
  stop.store(true, std::memory_order_relaxed);
  for (auto& t : askers) t.join();
  if (updater.joinable()) updater.join();
  double wall_s = wall.ElapsedSeconds();

  for (const QueryRun& p : partial) {
    run.latency.Merge(p.latency);
    run.requests += p.requests;
    run.errors += p.errors;
  }
  run.updates_committed = update_batches.load() * kUpdateBatchTriples;
  run.final_epoch = last_epoch.load();
  run.update_batches_per_s =
      wall_s > 0 ? update_batches.load() / wall_s : 0;
  return run;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  double duration_s = 3.0;
  uint64_t seed = 42;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--duration-s") == 0 && i + 1 < argc) {
      duration_s = std::atof(argv[++i]);
    } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      seed = static_cast<uint64_t>(std::atoll(argv[++i]));
    } else {
      std::fprintf(stderr, "usage: %s [--smoke] [--duration-s S] [--seed N]\n",
                   argv[0]);
      return 2;
    }
  }
  if (smoke) duration_s = std::min(duration_s, 1.0);

  bench::Header("Live ingestion: batch throughput and query latency under "
                "concurrent updates");

  BenchBatchThroughput(smoke, seed);

  // Phase B: the same question stream against frozen / live-idle /
  // live-under-ingest services over one snapshot.
  bench::BenchWorld world = bench::BuildWorld();
  const std::string snapshot_path = "bench_ingest.snap";
  if (Status st = store::WriteSnapshotFile(world.kb.graph, *world.verified,
                                           snapshot_path);
      !st.ok()) {
    std::fprintf(stderr, "snapshot write failed: %s\n",
                 st.ToString().c_str());
    return 1;
  }
  std::vector<std::string> questions;
  for (const auto& gold : world.workload) {
    if (!gold.is_ask) questions.push_back(gold.text);
    if (questions.size() >= 24) break;
  }
  if (questions.empty()) questions.push_back("Who is the mayor of Berlin ?");

  bench::Header("Phase B: query latency, caching off (full pipeline per "
                "request)");
  std::printf("%-12s %9s %9s %9s %9s %10s %9s\n", "config", "requests",
              "p50_ms", "p95_ms", "p99_ms", "upd_tps", "epochs");

  struct Config {
    const char* name;
    bool live;
    bool ingest;
  };
  const Config configs[] = {
      {"frozen", false, false},
      {"live_idle", true, false},
      {"live_ingest", true, true},
  };
  double frozen_p99 = 0, ingest_p99 = 0;
  size_t total_errors = 0;
  for (const Config& config : configs) {
    server::QaService::Options options;
    options.snapshot_path = snapshot_path;
    options.port = 0;
    options.threads = 2;
    options.question_cache_capacity = 0;  // every request runs the matcher
    std::string live_dir = "bench_ingest_live";
    if (config.live) {
      std::filesystem::remove_all(live_dir);
      options.live_dir = live_dir;
      // Compaction fires mid-window, so its cost shows up in the tail.
      options.live_compact_threshold = 2048;
    }
    server::QaService service(options);
    if (Status st = service.Start(); !st.ok()) {
      std::fprintf(stderr, "startup failed: %s\n", st.ToString().c_str());
      return 1;
    }
    QueryRun run = RunQueries(service.port(), questions, duration_s,
                              config.ingest, seed);
    service.Shutdown();
    if (config.live) std::filesystem::remove_all(live_dir);

    double update_tps = run.update_batches_per_s * kUpdateBatchTriples;
    std::printf("%-12s %9zu %9.2f %9.2f %9.2f %10.0f %9zu\n", config.name,
                run.requests, run.latency.QuantileMillis(0.50),
                run.latency.QuantileMillis(0.95),
                run.latency.QuantileMillis(0.99), update_tps,
                static_cast<size_t>(run.final_epoch));
    bench::JsonLine("ingest_query")
        .Field("seed", seed)
        .Field("config", config.name)
        .Field("duration_s", duration_s)
        .Field("query_threads", kQueryThreads)
        .Field("requests", run.requests)
        .Field("errors", run.errors)
        .Field("p50_ms", run.latency.QuantileMillis(0.50))
        .Field("p95_ms", run.latency.QuantileMillis(0.95))
        .Field("p99_ms", run.latency.QuantileMillis(0.99))
        .Field("updates_committed", run.updates_committed)
        .Field("update_triples_per_s", update_tps)
        .Field("final_epoch", run.final_epoch)
        .Field("hardware_threads",
               static_cast<int>(std::thread::hardware_concurrency()))
        .Emit();
    if (std::strcmp(config.name, "frozen") == 0) {
      frozen_p99 = run.latency.QuantileMillis(0.99);
    }
    if (std::strcmp(config.name, "live_ingest") == 0) {
      ingest_p99 = run.latency.QuantileMillis(0.99);
    }
    total_errors += run.errors;
  }
  std::remove(snapshot_path.c_str());

  double ratio = frozen_p99 > 0 ? ingest_p99 / frozen_p99 : 0;
  bool under_2x = ratio > 0 && ratio < 2.0;
  std::printf("\nquery p99 under ingest: %.2f ms vs frozen %.2f ms — %.2fx "
              "(%s)\n",
              ingest_p99, frozen_p99, ratio,
              under_2x ? "under the 2x bar" : "OVER the 2x bar");
  bench::JsonLine("ingest_summary")
      .Field("frozen_p99_ms", frozen_p99)
      .Field("live_ingest_p99_ms", ingest_p99)
      .Field("p99_ratio", ratio)
      .Field("under_2x", under_2x)
      .Field("errors", total_errors)
      .Emit();

  if (smoke && total_errors != 0) {
    std::fprintf(stderr, "SMOKE FAILED: %zu transport/HTTP errors\n",
                 total_errors);
    return 1;
  }
  return 0;
}
