// Scatter-gather serving: sharded vs single-snapshot QPS and latency.
//
// Boots the same topology `qa_httpd --shards N` runs — one QaService
// router holding the full snapshot plus N in-process ShardWorkers serving
// halo-replicated shard snapshots over the binary shard RPC — and drives
// the identical closed-loop /answer load against an unsharded baseline and
// 1/2/4-shard configs. The question cache is off so every request runs
// matching (and, when scatter-safe, one full scatter round-trip): the
// numbers isolate the cost/benefit of the scatter hop itself.
//
//   BENCH_JSON {"bench":"shard_scatter","shards":2,...}
//
// Fields worth tracking: qps + p50/p99 per shard count against shards=0,
// scattered vs fallback_local (how many queries the halo condition lets
// scatter), and replication_factor (sum of shard triples / full triples —
// the storage price of the halo).
//
// Run: ./build/bench/bench_shard_scatter [requests_per_client]

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_support.h"
#include "common/latency_histogram.h"
#include "common/timer.h"
#include "server/http_client.h"
#include "server/qa_service.h"
#include "server/shard_worker.h"
#include "store/sharded_kb.h"
#include "store/snapshot.h"

using namespace ganswer;

namespace {

struct LoadResult {
  size_t ok = 0;
  size_t errors = 0;
  LatencyHistogram latency;
  double wall_s = 0;
};

LoadResult RunLoad(int port, const std::vector<std::string>& questions,
                   int clients, size_t per_client) {
  std::vector<LoadResult> partial(static_cast<size_t>(clients));
  std::vector<std::thread> threads;
  WallTimer wall;
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      LoadResult& mine = partial[static_cast<size_t>(c)];
      server::BlockingHttpClient client;
      if (!client.Connect("127.0.0.1", port).ok()) return;
      for (size_t i = 0; i < per_client; ++i) {
        const std::string& q =
            questions[(static_cast<size_t>(c) + i) % questions.size()];
        std::string body = "{\"question\": \"" + q + "\"}";
        WallTimer timer;
        auto response = client.Post("/answer", body);
        double ms = timer.ElapsedMillis();
        if (response.ok() && response->status == 200) {
          ++mine.ok;
          mine.latency.RecordMillis(ms);
        } else {
          ++mine.errors;
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  LoadResult total;
  total.wall_s = wall.ElapsedSeconds();
  for (LoadResult& p : partial) {
    total.ok += p.ok;
    total.errors += p.errors;
    total.latency.Merge(p.latency);
  }
  return total;
}

}  // namespace

int main(int argc, char** argv) {
  size_t per_client =
      argc > 1 ? static_cast<size_t>(std::atoll(argv[1])) : 100;
  const int kClients = 4;
  const int kThreads = 4;

  bench::Header("Sharded KB: scatter-gather vs single-snapshot serving");

  bench::BenchWorld world = bench::BuildWorld();
  const std::string snapshot_path = "bench_shard_scatter.snap";
  if (Status st = store::WriteSnapshotFile(world.kb.graph, *world.verified,
                                           snapshot_path);
      !st.ok()) {
    std::fprintf(stderr, "snapshot write failed: %s\n",
                 st.ToString().c_str());
    return 1;
  }
  const uint64_t full_triples = world.kb.graph.NumTriples();
  std::vector<std::string> questions;
  for (const auto& gold : world.workload) {
    if (!gold.is_ask) questions.push_back(gold.text);
    if (questions.size() >= 64) break;
  }
  if (questions.empty()) questions.push_back("Who is the mayor of Berlin ?");

  const int shard_counts[] = {0, 1, 2, 4};  // 0 = unsharded baseline
  std::vector<std::string> cleanup{snapshot_path};

  std::printf("%8s %10s %10s %10s %10s %12s %12s %12s\n", "shards", "qps",
              "p50_ms", "p99_ms", "errors", "scattered", "fallback",
              "repl_factor");
  for (int shards : shard_counts) {
    server::QaService::Options options;
    options.snapshot_path = snapshot_path;
    options.port = 0;
    options.threads = kThreads;
    options.question_cache_capacity = 0;  // every request runs matching

    std::vector<std::unique_ptr<server::ShardWorker>> workers;
    double replication = 1.0;
    if (shards > 0) {
      store::ShardSpec spec;
      spec.num_shards = static_cast<uint32_t>(shards);
      auto manifest = store::WriteShardedKb(world.kb.graph, *world.verified,
                                            snapshot_path, spec);
      if (!manifest.ok()) {
        std::fprintf(stderr, "shard build failed: %s\n",
                     manifest.status().ToString().c_str());
        return 1;
      }
      uint64_t total = 0;
      for (const store::ShardInfo& shard : manifest->shards) {
        total += shard.total_triples;
        cleanup.push_back(shard.path);
      }
      cleanup.push_back(store::ShardManifestPath(snapshot_path));
      replication =
          full_triples > 0 ? static_cast<double>(total) / full_triples : 1.0;
      for (uint32_t shard = 0; shard < manifest->num_shards; ++shard) {
        server::ShardWorker::Options worker_options;
        worker_options.snapshot_path = manifest->shards[shard].path;
        worker_options.shard_id = shard;
        worker_options.num_shards = manifest->num_shards;
        worker_options.halo_hops = manifest->halo_hops;
        auto worker =
            std::make_unique<server::ShardWorker>(std::move(worker_options));
        if (Status st = worker->Start(); !st.ok()) {
          std::fprintf(stderr, "shard %u startup failed: %s\n", shard,
                       st.ToString().c_str());
          return 1;
        }
        options.shard_endpoints.push_back({"127.0.0.1", worker->port()});
        workers.push_back(std::move(worker));
      }
      options.shard_halo_hops = manifest->halo_hops;
    }

    server::QaService service(options);
    if (Status st = service.Start(); !st.ok()) {
      std::fprintf(stderr, "startup failed: %s\n", st.ToString().c_str());
      return 1;
    }

    // Warm-up primes connections (router->shard pools included).
    RunLoad(service.port(), questions, kClients,
            std::max<size_t>(per_client / 10, 1));
    LoadResult result =
        RunLoad(service.port(), questions, kClients, per_client);

    uint64_t scattered = 0;
    uint64_t fallback = 0;
    if (server::ShardClient* client = service.shard_client()) {
      scattered = client->scattered_calls();
      fallback = client->fallback_calls();
    }
    service.Shutdown();
    for (auto& worker : workers) worker->Shutdown();

    double qps = result.wall_s > 0 ? result.ok / result.wall_s : 0;
    double p50 = result.latency.QuantileMillis(0.50);
    double p99 = result.latency.QuantileMillis(0.99);
    std::printf("%8d %10.0f %10.3f %10.3f %10zu %12llu %12llu %12.2f\n",
                shards, qps, p50, p99, result.errors,
                static_cast<unsigned long long>(scattered),
                static_cast<unsigned long long>(fallback), replication);

    bench::JsonLine("shard_scatter")
        .Field("closed_loop", true)
        .Field("shards", shards)
        .Field("threads", kThreads)
        .Field("clients", kClients)
        .Field("hardware_threads",
               static_cast<int>(std::thread::hardware_concurrency()))
        .Field("requests_ok", result.ok)
        .Field("errors", result.errors)
        .Field("wall_s", result.wall_s)
        .Field("qps", qps)
        .Field("p50_ms", p50)
        .Field("p99_ms", p99)
        .Field("p99_9_ms", result.latency.QuantileMillis(0.999))
        .Field("scattered", scattered)
        .Field("fallback_local", fallback)
        .Field("replication_factor", replication)
        .Emit();
  }
  for (const std::string& path : cleanup) std::remove(path.c_str());
  return 0;
}
