// Query planner: naive textual-order joins vs the cost-based planner over
// sorted permutation indexes (PSO/POS ranges, greedy selectivity ordering,
// leading sort-merge joins). Two workloads:
//
//  1. The SPARQL queries the QA pipeline itself emits for the gold
//     question set (Algorithm 3 lowers each top match to one query) —
//     mostly short, constant-anchored BGPs.
//  2. Synthetic multi-pattern BGPs over the generated KB at growing
//     scales, written in the style users write them (type constraint
//     first) so the textual order is a genuinely bad plan.
//
// Both engines must return identical row multisets (the differential
// oracle enforces this too); the bench re-checks and aborts on mismatch.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_support.h"
#include "qa/ganswer.h"
#include "qa/sparql_output.h"
#include "rdf/sparql_engine.h"
#include "rdf/sparql_parser.h"

using namespace ganswer;

namespace {

struct Measured {
  double ms = 0;           // wall time per execution
  size_t rows = 0;
  uint64_t bindings = 0;   // intermediate bindings per execution
};

Measured TimeQuery(const rdf::SparqlEngine& engine, const rdf::SparqlQuery& q,
                   int reps) {
  Measured m;
  const auto before = engine.planner_counters();
  WallTimer timer;
  for (int i = 0; i < reps; ++i) {
    auto r = engine.Execute(q);
    if (!r.ok()) {
      std::fprintf(stderr, "execution failed: %s\n%s\n",
                   r.status().ToString().c_str(), q.ToString().c_str());
      std::abort();
    }
    m.rows = r->rows.size();
  }
  m.ms = timer.ElapsedMillis() / reps;
  const auto after = engine.planner_counters();
  m.bindings = (after.intermediate_bindings - before.intermediate_bindings) /
               static_cast<uint64_t>(reps);
  return m;
}

/// Repetitions so each measurement covers ~30ms of wall time, bounded.
int PickReps(const rdf::SparqlEngine& engine, const rdf::SparqlQuery& q) {
  WallTimer timer;
  auto r = engine.Execute(q);
  if (!r.ok()) return 1;
  double once = std::max(timer.ElapsedMillis(), 1e-3);
  return static_cast<int>(std::clamp(30.0 / once, 3.0, 300.0));
}

void CheckSameRows(const rdf::SparqlEngine& naive,
                   const rdf::SparqlEngine& planned,
                   const rdf::SparqlQuery& q) {
  auto a = naive.Execute(q);
  auto b = planned.Execute(q);
  if (!a.ok() || !b.ok()) return;  // both-fail handled by TimeQuery's abort
  auto ra = a->rows, rb = b->rows;
  std::sort(ra.begin(), ra.end());
  std::sort(rb.begin(), rb.end());
  if (ra != rb || a->ask_result != b->ask_result) {
    std::fprintf(stderr, "PLAN MISMATCH (%zu vs %zu rows):\n%s\n", ra.size(),
                 rb.size(), q.ToString().c_str());
    std::abort();
  }
}

struct Sample {
  double speedup = 0;
  size_t patterns = 0;
};

double Geomean(const std::vector<Sample>& samples, size_t min_patterns) {
  double log_sum = 0;
  size_t n = 0;
  for (const Sample& s : samples) {
    if (s.patterns < min_patterns) continue;
    log_sum += std::log(s.speedup);
    ++n;
  }
  return n == 0 ? 0.0 : std::exp(log_sum / static_cast<double>(n));
}

/// Runs one query on both engines and prints the comparison row; appends
/// the speedup sample and emits the BENCH_JSON line.
void Compare(const std::string& bench, const std::string& id,
             const rdf::SparqlEngine& naive, const rdf::SparqlEngine& planned,
             const rdf::SparqlQuery& q, std::vector<Sample>* samples) {
  CheckSameRows(naive, planned, q);
  int reps = PickReps(naive, q);
  Measured mn = TimeQuery(naive, q, reps);
  Measured mp = TimeQuery(planned, q, reps);
  double speedup = mn.ms / std::max(mp.ms, 1e-6);
  samples->push_back({speedup, q.patterns.size()});
  std::printf("%-18s %4zu %6zu %10.3f %10.3f %7.2fx %10zu %10zu\n", id.c_str(),
              q.patterns.size(), mn.rows, mn.ms, mp.ms, speedup,
              static_cast<size_t>(mn.bindings),
              static_cast<size_t>(mp.bindings));
  bench::JsonLine(bench)
      .Field("query", id)
      .Field("patterns", q.patterns.size())
      .Field("rows", mn.rows)
      .Field("naive_ms", mn.ms)
      .Field("planned_ms", mp.ms)
      .Field("speedup", speedup)
      .Field("naive_bindings", static_cast<size_t>(mn.bindings))
      .Field("planned_bindings", static_cast<size_t>(mp.bindings))
      .Emit();
}

void TableHeader() {
  std::printf("\n%-18s %4s %6s %10s %10s %8s %10s %10s\n", "query", "pats",
              "rows", "naive ms", "plan ms", "speedup", "naive bnd",
              "plan bnd");
}

// The synthetic multi-pattern BGPs. Textual order starts at the open or
// type-constrained pattern — exactly the plan the greedy orderer must not
// pick. All vocabulary comes from datagen::schema.h.
const struct QueryTemplate {
  const char* id;
  const char* text;
} kTemplates[] = {
    {"running-example",
     "SELECT ?w ?a WHERE { ?a rdf:type <Actor> . ?w <spouse> ?a . "
     "?f <starring> ?a . ?f rdf:type <Film> }"},
    {"film-crew",
     "SELECT ?f ?d WHERE { ?f rdf:type <Film> . ?f <starring> ?a . "
     "?f <director> ?d }"},
    {"team-roster",
     "SELECT ?p ?t WHERE { ?p rdf:type <Person> . ?p <playForTeam> ?t . "
     "?t <locationCity> ?c }"},
    {"family-chain",
     "SELECT ?g ?c WHERE { ?g <hasChild> ?p . ?p <hasChild> ?c . "
     "?p <spouse> ?s }"},
    {"geo-capital",
     "SELECT ?city ?n WHERE { ?city rdf:type <City> . "
     "?city <country> ?n . ?n <capital> ?cap }"},
    {"anchored-star",
     "SELECT ?d WHERE { ?f <starring> <Antonio_Banderas> . "
     "?f <director> ?d }"},
    {"deep-chain",
     "SELECT ?g ?t WHERE { ?g rdf:type <Person> . ?g <hasChild> ?p . "
     "?p <hasChild> ?c . ?c <playForTeam> ?t }"},
    {"cross-order",
     "SELECT ?x ?f WHERE { ?x <birthPlace> ?c . ?f <starring> ?a . "
     "?a <spouse> ?x }"},
    {"merge-join",
     "SELECT ?f ?a ?d WHERE { ?f <starring> ?a . ?f <director> ?d }"},
};

}  // namespace

int main() {
  bench::Header("Query planning -- naive textual order vs cost-based joins");

  std::vector<Sample> all;

  // Part 1: the SPARQL queries the QA pipeline emits for the gold
  // question set (top-1 interpretation per answerable question).
  {
    auto world = bench::BuildWorld();
    qa::GAnswer system(&world.kb.graph, &world.lexicon, world.verified.get());
    rdf::SparqlEngine planned(world.kb.graph);
    rdf::SparqlEngine::Options naive_options;
    naive_options.use_planner = false;
    rdf::SparqlEngine naive(world.kb.graph, naive_options);

    std::printf("\nQuestion-set queries (%zu triples)\n",
                world.kb.graph.NumTriples());
    TableHeader();
    std::vector<std::string> seen;
    for (const datagen::GoldQuestion& q : world.workload) {
      auto r = system.Ask(q.text);
      if (!r.ok() || r->matches.empty()) continue;
      auto queries = qa::SparqlOutput::TopKQueries(r->understanding.sqg,
                                                   r->matches,
                                                   world.kb.graph, 1);
      if (queries.empty()) continue;
      // Distinct questions can lower to the same query; bench each once.
      std::string text = queries[0].ToString();
      if (std::find(seen.begin(), seen.end(), text) != seen.end()) continue;
      seen.push_back(text);
      Compare("planner_questions", q.id, naive, planned, queries[0], &all);
    }
  }

  // Part 2: synthetic multi-pattern BGPs at growing KB scales.
  std::vector<Sample> synthetic;
  for (size_t scale : {4u, 16u}) {
    datagen::KbGenerator::Options kb_opt;
    kb_opt.num_families = 220 * scale;
    kb_opt.num_films = 200 * scale;
    kb_opt.num_cities = 80 * scale;
    kb_opt.num_companies = 90 * scale;
    kb_opt.num_books = 80 * scale;
    kb_opt.num_teams = 20 * scale;
    kb_opt.num_bands = 30 * scale;
    auto kb = datagen::KbGenerator::Generate(kb_opt);
    if (!kb.ok()) {
      std::fprintf(stderr, "KB generation failed: %s\n",
                   kb.status().ToString().c_str());
      return 1;
    }

    rdf::SparqlEngine planned(kb->graph);
    rdf::SparqlEngine::Options naive_options;
    naive_options.use_planner = false;
    rdf::SparqlEngine naive(kb->graph, naive_options);

    std::printf("\nSynthetic BGPs at scale %zu (%zu triples)\n", scale,
                kb->graph.NumTriples());
    TableHeader();
    for (const QueryTemplate& t : kTemplates) {
      auto q = rdf::SparqlParser::Parse(t.text);
      if (!q.ok()) {
        std::fprintf(stderr, "template %s failed to parse: %s\n", t.id,
                     q.status().ToString().c_str());
        return 1;
      }
      std::string id = std::string(t.id) + "@" + std::to_string(scale);
      Compare("planner_synthetic", id, naive, planned, *q, &synthetic);
    }
  }
  all.insert(all.end(), synthetic.begin(), synthetic.end());

  double geo_multi = Geomean(synthetic, /*min_patterns=*/2);
  double geo_all = Geomean(all, /*min_patterns=*/1);
  std::printf("\ngeomean speedup: %.2fx over all queries, %.2fx over\n"
              "multi-pattern synthetic BGPs (target: >= 2x)\n",
              geo_all, geo_multi);
  bench::JsonLine("planner_summary")
      .Field("geomean_speedup_all", geo_all)
      .Field("geomean_speedup_multi_pattern", geo_multi)
      .Field("queries", all.size())
      .Emit();

  std::printf(
      "\nExpected: question-set queries are short and constant-anchored, so\n"
      "gains are modest; the synthetic BGPs start at an unselective pattern\n"
      "in textual order, which the greedy orderer reorders behind the\n"
      "selective ones — speedup grows with KB scale because the naive\n"
      "leading scan grows linearly while the planned one stays run-sized.\n");
  return 0;
}
