// Table 10 (Exp 5, Sec. 6.3): failure analysis. For every question not
// answered fully right, attribute the failure to a reason and report the
// ratio per reason with a sample question — the paper's categories are
// entity-linking failure (27%), relation-extraction failure (22%),
// aggregation queries (35%) and others (16%).

#include <cstdio>
#include <map>

#include "bench_support.h"
#include "qa/ganswer.h"

using namespace ganswer;

namespace {

const char* ReasonOf(const datagen::GoldQuestion& q,
                     const qa::GAnswer::Response& r) {
  // Ground-truth category first (the generator knows why it is hard),
  // falling back to the pipeline's own failure stage.
  switch (q.category) {
    case datagen::QuestionCategory::kEntityHard:
      return "entity linking failure";
    case datagen::QuestionCategory::kRelationHard:
      return "relation extraction failure";
    case datagen::QuestionCategory::kAggregation:
      return "aggregation query";
    default:
      break;
  }
  switch (r.failure) {
    case qa::GAnswer::FailureStage::kParse:
      return "others (parse)";
    case qa::GAnswer::FailureStage::kNoRelations:
      return "relation extraction failure";
    case qa::GAnswer::FailureStage::kNoLinking:
      return "entity linking failure";
    default:
      return "others";
  }
}

}  // namespace

int main() {
  bench::Header("Table 10 -- failure analysis");
  auto world = bench::BuildWorld();
  qa::GAnswer system(&world.kb.graph, &world.lexicon, world.verified.get());

  std::map<std::string, size_t> counts;
  std::map<std::string, std::string> samples;
  size_t failures = 0;
  size_t right = 0;

  for (const datagen::GoldQuestion& q : world.workload) {
    auto r = system.Ask(q.text);
    if (!r.ok()) continue;
    std::vector<std::string> answers;
    for (const auto& a : r->answers) answers.push_back(a.text);
    if (bench::Judge(q, r->is_ask, r->ask_result, answers) ==
        bench::Verdict::kRight) {
      ++right;
      continue;
    }
    ++failures;
    std::string reason = ReasonOf(q, *r);
    ++counts[reason];
    if (!samples.count(reason)) {
      samples[reason] = q.id + ": " + q.text;
    }
  }

  std::printf("\nAnswered right: %zu / %zu; failures analyzed: %zu\n", right,
              world.workload.size(), failures);
  std::printf("\n%-32s %-10s %-8s %s\n", "reason", "count", "ratio",
              "sample question");
  for (const auto& [reason, count] : counts) {
    std::printf("%-32s %-10zu %5.0f%%   %s\n", reason.c_str(), count,
                100.0 * count / failures, samples[reason].c_str());
  }

  std::printf(
      "\nPaper-shape check (Table 10): failures concentrate in entity\n"
      "linking, relation extraction and aggregation (paper: 27%% / 22%% /\n"
      "35%% plus 16%% others).\n");
  return 0;
}
