// Storage tier: disk footprint and cold-start cost of the snapshot
// encodings, measured end to end ("process start" to "first question
// answered").
//
//  - size:      v2 legacy vs v3 raw vs v3 compressed container bytes
//  - cold start: raw-read vs raw-mmap vs compressed, each in a fresh child
//    process (fork+exec of this binary) so VmHWM and the load cost are not
//    polluted by the parent's world-building. Per mode the child loads the
//    snapshot, builds the QA system, answers the probe questions, and
//    reports load ms / first-answer ms / total ms / peak RSS / a hash of
//    every answer string. The parent asserts the hash is identical across
//    all modes — whatever the encoding or load path, the answers must be
//    byte-identical.
//
// Emits one BENCH_JSON line per mode plus a container-size line.

#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "bench_support.h"
#include "common/timer.h"
#include "nlp/lexicon.h"
#include "qa/ganswer.h"
#include "store/snapshot.h"

using namespace ganswer;

namespace {

uint64_t HashAnswers(uint64_t h, std::string_view s) {
  for (char c : s) h = (h ^ static_cast<unsigned char>(c)) * 0x100000001b3ull;
  return h;
}

// ---------------------------------------------------------------------------
// Child: one cold start. Invoked as
//   bench_storage_tier --child <read|mmap> <snapshot> <questions-file>
// and prints "CHILD <load_ms> <first_ms> <total_ms> <vm_hwm_kb> <hash>".
// ---------------------------------------------------------------------------

int ChildMain(const char* mode, const char* snapshot_path,
              const char* questions_path) {
  WallTimer total;
  nlp::Lexicon lexicon;
  auto load_mode = std::strcmp(mode, "mmap") == 0
                       ? store::SnapshotLoadMode::kMmap
                       : store::SnapshotLoadMode::kRead;
  WallTimer load_timer;
  auto snapshot = store::ReadSnapshotFile(snapshot_path, &lexicon, load_mode);
  if (!snapshot.ok()) {
    std::fprintf(stderr, "load failed: %s\n",
                 snapshot.status().ToString().c_str());
    return 1;
  }
  double load_ms = load_timer.ElapsedMillis();

  qa::GAnswer::Options options;
  options.entity_index = snapshot->entity_index.get();
  options.matching.signatures = snapshot->signatures.get();
  options.graph_stats = snapshot->stats.get();
  options.matching.exec.threads = 1;
  qa::GAnswer system(snapshot->graph.get(), &lexicon,
                     snapshot->dictionary.get(), options);

  std::ifstream questions(questions_path);
  std::string question;
  uint64_t hash = 0xcbf29ce484222325ull;
  double first_ms = 0;
  bool first = true;
  while (std::getline(questions, question)) {
    if (question.empty()) continue;
    auto response = system.Ask(question);
    if (first) {
      first_ms = total.ElapsedMillis();
      first = false;
    }
    hash = HashAnswers(hash, question);
    if (!response.ok()) continue;  // a failed parse hashes as "no answers"
    for (const auto& answer : response->answers) {
      hash = HashAnswers(hash, answer.text);
    }
  }
  double total_ms = total.ElapsedMillis();
  std::printf("CHILD %.3f %.3f %.3f %zu %llu\n", load_ms, first_ms, total_ms,
              bench::ReadVmHwmKb(),
              static_cast<unsigned long long>(hash));
  return 0;
}

// ---------------------------------------------------------------------------
// Parent.
// ---------------------------------------------------------------------------

struct ColdStart {
  double load_ms = 0;
  double first_answer_ms = 0;
  double total_ms = 0;
  size_t vm_hwm_kb = 0;
  uint64_t answer_hash = 0;
};

ColdStart RunChild(const char* self, const std::string& mode,
                   const std::string& snapshot_path,
                   const std::string& questions_path) {
  int fds[2];
  if (pipe(fds) != 0) std::abort();
  pid_t pid = fork();
  if (pid < 0) std::abort();
  if (pid == 0) {
    dup2(fds[1], STDOUT_FILENO);
    close(fds[0]);
    close(fds[1]);
    execl(self, self, "--child", mode.c_str(), snapshot_path.c_str(),
          questions_path.c_str(), static_cast<char*>(nullptr));
    _exit(127);
  }
  close(fds[1]);
  std::string out;
  char buf[256];
  ssize_t n;
  while ((n = read(fds[0], buf, sizeof(buf))) > 0) out.append(buf, n);
  close(fds[0]);
  int status = 0;
  waitpid(pid, &status, 0);
  ColdStart r;
  unsigned long long hash = 0;
  if (!WIFEXITED(status) || WEXITSTATUS(status) != 0 ||
      std::sscanf(out.c_str(), "CHILD %lf %lf %lf %zu %llu", &r.load_ms,
                  &r.first_answer_ms, &r.total_ms, &r.vm_hwm_kb, &hash) != 5) {
    std::fprintf(stderr, "child (%s) failed: %s\n", mode.c_str(),
                 out.c_str());
    std::abort();
  }
  r.answer_hash = hash;
  return r;
}

std::string TempPath(const char* name) {
  const char* dir = std::getenv("TMPDIR");
  return std::string(dir != nullptr ? dir : "/tmp") + "/" + name;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc == 5 && std::strcmp(argv[1], "--child") == 0) {
    return ChildMain(argv[2], argv[3], argv[4]);
  }

  bench::Header("Storage tier: container size and cold start by encoding");

  datagen::KbGenerator::Options kb_options;
  kb_options.num_families = 1600;
  kb_options.num_films = 1200;
  kb_options.num_cities = 400;
  bench::BenchWorld world = bench::BuildWorld(kb_options);

  // The probe workload the children replay; answers must agree bytewise.
  std::string questions_path = TempPath("bench_storage_tier.questions");
  {
    std::ofstream out(questions_path);
    size_t n = 0;
    for (const auto& q : world.workload) {
      out << q.text << "\n";
      if (++n >= 32) break;
    }
  }

  struct Variant {
    const char* name;
    store::SnapshotWriteOptions options;
    const char* load_mode;  // nullptr: size-only (legacy container)
  };
  const Variant kVariants[] = {
      {"v2-legacy", {.version = 2, .compress = false}, nullptr},
      {"raw-read", {.version = 3, .compress = false}, "read"},
      {"raw-mmap", {.version = 3, .compress = false}, "mmap"},
      {"compressed", {.version = 3, .compress = true}, "read"},
  };

  size_t bytes_by_variant[4] = {};
  std::string path_by_variant[4];
  store::SnapshotStats stats_by_variant[4];
  for (size_t i = 0; i < 4; ++i) {
    const Variant& v = kVariants[i];
    path_by_variant[i] = TempPath((std::string("bench_storage_tier.") +
                                   v.name + ".snap").c_str());
    store::SnapshotStats stats;
    Status st = store::WriteSnapshotFile(world.kb.graph, *world.verified,
                                         path_by_variant[i], &stats,
                                         v.options);
    if (!st.ok()) {
      std::fprintf(stderr, "write %s failed: %s\n", v.name,
                   st.ToString().c_str());
      return 1;
    }
    bytes_by_variant[i] = stats.total_bytes;
    stats_by_variant[i] = stats;
  }

  std::printf("\n%-12s %10s %10s %10s %10s %10s\n", "container", "graph",
              "sigs", "entities", "dict", "stats");
  for (size_t i = 0; i < 4; ++i) {
    if (i == 2) continue;
    const store::SnapshotStats& s = stats_by_variant[i];
    std::printf("%-12s %10zu %10zu %10zu %10zu %10zu\n", kVariants[i].name,
                s.graph_bytes, s.signature_bytes, s.entity_index_bytes,
                s.dictionary_bytes, s.stats_bytes);
  }

  std::printf("\n%-12s %12s %10s\n", "container", "bytes", "vs v2");
  for (size_t i = 0; i < 4; ++i) {
    if (i == 2) continue;  // raw-mmap shares the raw container
    std::printf("%-12s %12zu %9.2fx\n", kVariants[i].name, bytes_by_variant[i],
                static_cast<double>(bytes_by_variant[0]) /
                    bytes_by_variant[i]);
  }
  bench::JsonLine("storage_tier_size")
      .Field("triples", world.kb.graph.NumTriples())
      .Field("v2_bytes", bytes_by_variant[0])
      .Field("v3_raw_bytes", bytes_by_variant[1])
      .Field("v3_compressed_bytes", bytes_by_variant[3])
      .Field("compression_ratio",
             static_cast<double>(bytes_by_variant[0]) / bytes_by_variant[3])
      .Emit();

  std::printf("\n%-12s %10s %12s %10s %12s\n", "mode", "load ms",
              "first-ans ms", "total ms", "vm_hwm kb");
  uint64_t expected_hash = 0;
  double read_first_ms = 0, mmap_first_ms = 0;
  for (size_t i = 0; i < 4; ++i) {
    const Variant& v = kVariants[i];
    if (v.load_mode == nullptr) continue;
    ColdStart r =
        RunChild(argv[0], v.load_mode, path_by_variant[i], questions_path);
    if (expected_hash == 0) {
      expected_hash = r.answer_hash;
    } else if (r.answer_hash != expected_hash) {
      std::fprintf(stderr,
                   "ANSWER MISMATCH: %s hash %llu != %llu — load paths "
                   "disagree\n",
                   v.name, static_cast<unsigned long long>(r.answer_hash),
                   static_cast<unsigned long long>(expected_hash));
      return 1;
    }
    if (std::strcmp(v.name, "raw-read") == 0) read_first_ms = r.first_answer_ms;
    if (std::strcmp(v.name, "raw-mmap") == 0) mmap_first_ms = r.first_answer_ms;
    std::printf("%-12s %10.2f %12.2f %10.2f %12zu\n", v.name, r.load_ms,
                r.first_answer_ms, r.total_ms, r.vm_hwm_kb);
    bench::JsonLine("storage_tier_cold_start")
        .Field("mode", v.name)
        .Field("snapshot_bytes", bytes_by_variant[i])
        .Field("load_ms", r.load_ms)
        .Field("first_answer_ms", r.first_answer_ms)
        .Field("total_ms", r.total_ms)
        .Field("child_vm_hwm_kb", r.vm_hwm_kb)
        .Field("answers_match", r.answer_hash == expected_hash)
        .Emit();
  }
  std::printf("\nanswers identical across all load paths (hash %llu)\n",
              static_cast<unsigned long long>(expected_hash));
  std::printf("mmap first answer %.2f ms vs bulk read %.2f ms\n",
              mmap_first_ms, read_first_ms);

  for (size_t i = 0; i < 4; ++i) std::remove(path_by_variant[i].c_str());
  std::remove(questions_path.c_str());
  return 0;
}
