// Figure 6 (Sec. 6.3): online running-time comparison between the graph
// data-driven system and the DEANNA baseline, split into question
// understanding and total response time.
//
// Paper shape: DEANNA's question understanding takes seconds (joint
// disambiguation: pairwise coherence + ILP), ours stays under 100 ms, and
// the total response time is 2-68x faster. The baseline here runs with its
// larger unpruned candidate lists, as DEANNA does.

#include <algorithm>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench_support.h"
#include "deanna/deanna_qa.h"
#include "qa/ganswer.h"

using namespace ganswer;

int main() {
  bench::Header("Figure 6 -- online running time, gAnswer vs DEANNA");

  // The cost asymmetry the paper measures comes from scale: DEANNA's
  // pairwise coherence works over link neighborhoods whose size grows with
  // the KB, while the anchored matcher touches only candidate
  // neighborhoods. Run on the largest KB the harness builds quickly.
  datagen::KbGenerator::Options kb_opt;
  kb_opt.num_families = 3000;
  kb_opt.num_films = 2000;
  kb_opt.num_cities = 500;
  kb_opt.num_companies = 600;
  kb_opt.num_teams = 80;
  kb_opt.num_bands = 150;
  kb_opt.num_books = 400;
  datagen::PhraseDatasetGenerator::Options phrase_opt;
  paraphrase::DictionaryBuilder::Options mine_opt;
  mine_opt.max_path_length = 3;
  mine_opt.max_paths_per_pair = 300;
  mine_opt.max_intermediate_degree = 600;  // keep offline mining quick here
  auto world = bench::BuildWorld(kb_opt, phrase_opt, mine_opt);
  std::printf("KB: %zu triples\n", world.kb.graph.NumTriples());

  qa::GAnswer ours(&world.kb.graph, &world.lexicon, world.verified.get());
  deanna::DeannaQa::Options dopt;
  dopt.linking.max_candidates = 40;  // DEANNA keeps raw lookup lists
  dopt.linking.min_confidence = 0.1;
  // The baseline runs on the raw mined dictionary (DEANNA has no human
  // verification pass) and with its unpruned candidate lists.
  deanna::DeannaQa baseline(&world.kb.graph, &world.lexicon,
                            world.mined.get(), dopt);

  std::printf("\n%-6s %-12s %-12s %-14s %-14s %-9s\n", "q", "ours-underst",
              "ours-total", "deanna-underst", "deanna-total", "speedup");

  std::vector<double> speedups;
  double ours_worst_understanding = 0;
  double deanna_worst_understanding = 0;
  size_t both = 0;
  for (const datagen::GoldQuestion& q : world.workload) {
    auto g = ours.Ask(q.text);
    auto d = baseline.Ask(q.text);
    if (!g.ok() || !d.ok()) continue;
    std::vector<std::string> ga;
    for (const auto& a : g->answers) ga.push_back(a.text);
    // Figure 6 compares questions both systems can answer.
    bool ours_right =
        bench::Judge(q, g->is_ask, g->ask_result, ga) != bench::Verdict::kWrong;
    bool deanna_right = bench::Judge(q, d->is_ask, d->ask_result, d->answers) !=
                        bench::Verdict::kWrong;
    if (!ours_right || !deanna_right) continue;
    ++both;
    double speedup = g->TotalMs() > 0 ? d->TotalMs() / g->TotalMs() : 0.0;
    speedups.push_back(speedup);
    ours_worst_understanding =
        std::max(ours_worst_understanding, g->understanding_ms);
    deanna_worst_understanding =
        std::max(deanna_worst_understanding, d->understanding_ms);
    if (both <= 25) {
      std::printf("%-6s %9.2f ms %9.2f ms %11.2f ms %11.2f ms %8.1fx\n",
                  q.id.c_str(), g->understanding_ms, g->TotalMs(),
                  d->understanding_ms, d->TotalMs(), speedup);
    }
  }
  if (both > 25) std::printf("... (%zu questions total)\n", both);

  if (!speedups.empty()) {
    std::sort(speedups.begin(), speedups.end());
    std::printf(
        "\nSummary over %zu questions answered by both systems:\n"
        "  total-time speedup  min %.1fx   median %.1fx   max %.1fx\n"
        "  worst understanding: ours %.2f ms   DEANNA %.2f ms\n",
        both, speedups.front(), speedups[speedups.size() / 2],
        speedups.back(), ours_worst_understanding,
        deanna_worst_understanding);
    bench::JsonLine("fig6_runtime")
        .Field("phase", "vs_deanna")
        .Field("questions", both)
        .Field("speedup_median", speedups[speedups.size() / 2])
        .Field("speedup_min", speedups.front())
        .Field("speedup_max", speedups.back())
        .Field("ours_worst_understanding_ms", ours_worst_understanding)
        .Field("deanna_worst_understanding_ms", deanna_worst_understanding)
        .Field("kb_triples", world.kb.graph.NumTriples())
        .Emit();
  }

  // Throughput: the BatchAnswer entry point fans questions across the
  // parallel engine's pool (per-question matching pinned serial to avoid
  // oversubscription). Answers are identical for any thread count; only
  // wall-clock changes.
  bench::Header("BatchAnswer throughput (QPS), serial vs parallel");
  std::vector<std::string> questions;
  questions.reserve(world.workload.size());
  for (const datagen::GoldQuestion& q : world.workload) {
    questions.push_back(q.text);
  }
  double serial_qps = 0;
  for (int threads : {1, 4}) {
    qa::GAnswer::Options bopt;
    bopt.exec.threads = threads;
    bopt.matching.exec.threads = 1;
    qa::GAnswer system(&world.kb.graph, &world.lexicon, world.verified.get(),
                       bopt);
    WallTimer timer;
    auto results = system.BatchAnswer(questions);
    double ms = timer.ElapsedMillis();
    size_t answered = 0;
    for (const auto& r : results) {
      if (r.ok() && (!r->answers.empty() || r->is_ask)) ++answered;
    }
    double qps = ms > 0 ? 1000.0 * questions.size() / ms : 0.0;
    if (threads == 1) serial_qps = qps;
    double speedup = serial_qps > 0 ? qps / serial_qps : 0.0;
    std::printf("threads=%d  %zu questions in %.1f ms  ->  %.1f QPS (%.2fx)\n",
                threads, questions.size(), ms, qps, speedup);
    bench::JsonLine("fig6_runtime")
        .Field("phase", "batch_answer")
        .Field("threads", threads)
        .Field("hardware_threads",
               static_cast<size_t>(std::thread::hardware_concurrency()))
        .Field("questions", questions.size())
        .Field("batch_ms", ms)
        .Field("qps", qps)
        .Field("speedup_vs_serial", speedup)
        .Field("answered", answered)
        .Field("kb_triples", world.kb.graph.NumTriples())
        .Emit();
  }

  std::printf(
      "\nPaper-shape check (Fig. 6): our question understanding stays under\n"
      "100 ms while DEANNA's joint disambiguation dominates its runtime;\n"
      "total response time favors the data-driven system (paper: 2-68x).\n");
  return 0;
}
