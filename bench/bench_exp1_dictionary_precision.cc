// Exp 1 (Sec. 6.2) + Table 6: precision of the mined paraphrase dictionary.
//
// The paper shows mined samples (Table 6) and reports P@3 of about 50% for
// length-1 paths, dropping as the path length grows; the generator's gold
// mappings play the role of the paper's human judges. Expected shape:
// P@3 highest at length 1, decreasing with length.

#include <cstdio>
#include <map>

#include "bench_support.h"
#include "common/string_util.h"

namespace {

using namespace ganswer;
using paraphrase::PredicatePath;

bool IsGold(const datagen::PhraseWithGold& spec, const rdf::RdfGraph& g,
            const PredicatePath& path) {
  for (const auto& gold_steps : spec.gold) {
    auto gp = datagen::GoldToPath(gold_steps, g);
    if (gp.has_value() && (path == *gp || path == gp->Reversed())) return true;
  }
  return false;
}

}  // namespace

int main() {
  bench::Header(
      "Exp 1 / Table 6 -- paraphrase dictionary samples and precision");

  auto world = bench::BuildWorld();

  // --- Table 6: a sample of mined mappings --------------------------------
  std::printf("\nTable 6 (sample of mined relation phrase mappings):\n");
  std::printf("%-18s %-42s %s\n", "relation phrase", "predicate/path",
              "confidence");
  for (const char* phrase_text :
       {"be married to", "be born in", "mother of", "play in", "uncle of",
        "mayor of", "author of"}) {
    for (paraphrase::PhraseId id = 0; id < world.mined->NumPhrases(); ++id) {
      if (world.mined->PhraseText(id) != phrase_text) continue;
      int shown = 0;
      for (const auto& e : world.mined->Entries(id)) {
        std::printf("%-18s %-42s %.2f\n", shown == 0 ? phrase_text : "",
                    e.path.ToString(world.kb.graph.dict()).c_str(),
                    e.confidence);
        if (++shown >= 3) break;
      }
    }
  }

  // --- Exp 1: P@3 by path-length threshold and by entry length ------------
  std::printf("\nExp 1 (P@3 of mined entries, by mined path length):\n");
  std::printf("%-10s %-10s %-10s %-14s\n", "theta", "length", "entries",
              "P@length");
  for (size_t theta : {1u, 2u, 3u, 4u}) {
    paraphrase::DictionaryBuilder::Options opt;
    opt.max_path_length = theta;
    opt.top_k = 3;
    paraphrase::ParaphraseDictionary dict(&world.lexicon);
    paraphrase::DictionaryBuilder builder(opt);
    auto dataset = datagen::PhraseDatasetGenerator::StripGold(world.phrases);
    Status st = builder.Build(world.kb.graph, dataset, &dict);
    if (!st.ok()) {
      std::fprintf(stderr, "%s\n", st.ToString().c_str());
      return 1;
    }

    std::map<size_t, std::pair<size_t, size_t>> by_len;  // len -> (gold, all)
    size_t total_gold = 0, total_all = 0;
    for (const auto& spec : world.phrases) {
      for (paraphrase::PhraseId id = 0; id < dict.NumPhrases(); ++id) {
        if (dict.PhraseText(id) != ToLower(spec.phrase.text)) continue;
        for (const auto& e : dict.Entries(id)) {
          auto& [gold, all] = by_len[e.path.Length()];
          ++all;
          ++total_all;
          if (IsGold(spec, world.kb.graph, e.path)) {
            ++gold;
            ++total_gold;
          }
        }
        break;
      }
    }
    for (const auto& [len, counts] : by_len) {
      std::printf("%-10zu %-10zu %-10zu %.2f\n", theta, len, counts.second,
                  counts.second == 0
                      ? 0.0
                      : static_cast<double>(counts.first) / counts.second);
    }
    std::printf("%-10zu %-10s %-10zu %.2f   <-- overall P@3 at theta=%zu\n",
                theta, "all", total_all,
                total_all == 0 ? 0.0
                               : static_cast<double>(total_gold) / total_all,
                theta);
  }

  std::printf(
      "\nPaper-shape check: precision is highest for length-1 predicates\n"
      "and degrades as longer paths enter the dictionary, which is why the\n"
      "paper routes the online dictionary through human verification.\n");
  return 0;
}
