// Google-benchmark micro-benchmarks for the performance-critical kernels:
// simple-path mining (offline), entity linking, dependency parsing,
// relation extraction, SPARQL BGP evaluation, and top-k subgraph matching.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdint>
#include <random>
#include <vector>

#include "bench_support.h"
#include "common/search.h"
#include "common/striped_counter.h"
#include "common/thread_pool.h"
#include "deanna/deanna_qa.h"
#include "linking/entity_linker.h"
#include "nlp/dependency_parser.h"
#include "paraphrase/path_finder.h"
#include "qa/ganswer.h"
#include "rdf/sparql_engine.h"
#include "rdf/sparql_parser.h"

namespace {

using namespace ganswer;

const bench::BenchWorld& World() {
  static bench::BenchWorld* world = [] {
    auto* w = new bench::BenchWorld(bench::BuildWorld());
    return w;
  }();
  return *world;
}

void BM_Tokenize(benchmark::State& state) {
  const std::string q =
      "Who was married to an actor that played in Philadelphia ?";
  for (auto _ : state) {
    benchmark::DoNotOptimize(nlp::Tokenizer::Tokenize(q));
  }
}
BENCHMARK(BM_Tokenize);

void BM_DependencyParse(benchmark::State& state) {
  nlp::DependencyParser parser(World().lexicon);
  const std::string q =
      "Who was married to an actor that played in Philadelphia ?";
  for (auto _ : state) {
    benchmark::DoNotOptimize(parser.Parse(q));
  }
}
BENCHMARK(BM_DependencyParse);

void BM_EntityLink(benchmark::State& state) {
  linking::EntityIndex index(World().kb.graph);
  linking::EntityLinker linker(&index);
  for (auto _ : state) {
    benchmark::DoNotOptimize(linker.Link("Philadelphia"));
  }
}
BENCHMARK(BM_EntityLink);

void BM_PathMining(benchmark::State& state) {
  const auto& g = World().kb.graph;
  paraphrase::PathFinder::Options opt;
  opt.max_length = static_cast<size_t>(state.range(0));
  paraphrase::PathFinder finder(g, opt);
  auto ted = *g.Find("Ted_Kennedy");
  auto jr = *g.Find("John_F._Kennedy_Jr.");
  for (auto _ : state) {
    benchmark::DoNotOptimize(finder.FindPaths(ted, jr));
  }
}
BENCHMARK(BM_PathMining)->Arg(2)->Arg(3)->Arg(4);

// --- Sorted-run probes: the index-probe kernels behind SparqlEngine. ---
//
// The engine probes sorted adjacency and permutation runs with random keys
// (enumerate()) and with monotonically advancing nearby keys (the merge
// join gallop). The three variants are measured on both access patterns so
// the std::lower_bound baseline, the branchless probe and the galloping
// search can be compared like-for-like.

std::vector<uint32_t> SortedKeys(size_t n) {
  std::mt19937 rng(42);
  std::vector<uint32_t> keys(n);
  uint32_t next = 0;
  for (auto& k : keys) k = next += 1 + rng() % 8;
  return keys;
}

std::vector<uint32_t> RandomProbes(const std::vector<uint32_t>& keys,
                                   size_t n) {
  std::mt19937 rng(7);
  std::vector<uint32_t> probes(n);
  for (auto& p : probes) p = keys[rng() % keys.size()];
  return probes;
}

template <typename Search>
void ProbeRandom(benchmark::State& state, Search search) {
  auto keys = SortedKeys(static_cast<size_t>(state.range(0)));
  auto probes = RandomProbes(keys, 1024);
  size_t i = 0;
  for (auto _ : state) {
    auto it = search(keys.begin(), keys.end(), probes[i]);
    benchmark::DoNotOptimize(it);
    i = (i + 1) % probes.size();
  }
}

// Merge-join shape: each probe lands a short stride past the previous hit,
// restarting from the hit position — where galloping's exponential bracket
// pays off against a full-width bisection.
template <typename Search>
void ProbeAdvancing(benchmark::State& state, Search search) {
  auto keys = SortedKeys(static_cast<size_t>(state.range(0)));
  std::mt19937 rng(7);
  auto it = keys.begin();
  for (auto _ : state) {
    if (keys.end() - it < 64) it = keys.begin();
    uint32_t target = *(it + 1 + rng() % 32);
    it = search(it, keys.end(), target);
    benchmark::DoNotOptimize(it);
  }
}

void BM_LowerBoundStd(benchmark::State& state) {
  ProbeRandom(state, [](auto first, auto last, uint32_t v) {
    return std::lower_bound(first, last, v);
  });
}
BENCHMARK(BM_LowerBoundStd)->Arg(1 << 8)->Arg(1 << 14)->Arg(1 << 20);

void BM_LowerBoundBranchless(benchmark::State& state) {
  ProbeRandom(state, [](auto first, auto last, uint32_t v) {
    return BranchlessLowerBound(first, last, v);
  });
}
BENCHMARK(BM_LowerBoundBranchless)->Arg(1 << 8)->Arg(1 << 14)->Arg(1 << 20);

void BM_MergeAdvanceStd(benchmark::State& state) {
  ProbeAdvancing(state, [](auto first, auto last, uint32_t v) {
    return std::lower_bound(first, last, v);
  });
}
BENCHMARK(BM_MergeAdvanceStd)->Arg(1 << 14)->Arg(1 << 20);

void BM_MergeAdvanceGalloping(benchmark::State& state) {
  ProbeAdvancing(state, [](auto first, auto last, uint32_t v) {
    return GallopingLowerBound(first, last, v);
  });
}
BENCHMARK(BM_MergeAdvanceGalloping)->Arg(1 << 14)->Arg(1 << 20);

void BM_LowerBoundSimd(benchmark::State& state) {
  ProbeRandom(state, [](auto first, auto last, uint32_t v) {
    return SimdLowerBoundU32(&*first, &*first + (last - first), v);
  });
}
BENCHMARK(BM_LowerBoundSimd)->Arg(1 << 8)->Arg(1 << 14)->Arg(1 << 20);

void BM_LowerBoundSimdScalarFallback(benchmark::State& state) {
  ProbeKernel prev = SetProbeKernelForTest(ProbeKernel::kScalar);
  ProbeRandom(state, [](auto first, auto last, uint32_t v) {
    return SimdLowerBoundU32(&*first, &*first + (last - first), v);
  });
  SetProbeKernelForTest(prev);
}
BENCHMARK(BM_LowerBoundSimdScalarFallback)->Arg(1 << 14)->Arg(1 << 20);

// --- Counter stripes: the /stats bookkeeping on the request path. ---
//
// Threads hammer one counter; stripes=1 is the shared-atomic layout the
// striped counter replaced. On multi-core hardware the shared line's
// ping-pong shows up directly in items/s as ->Threads grows.

void BM_CounterShared(benchmark::State& state) {
  static StripedCounter counter(1);
  for (auto _ : state) counter.Increment();
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CounterShared)->Threads(1)->Threads(2)->Threads(4)->UseRealTime();

void BM_CounterStriped(benchmark::State& state) {
  static StripedCounter counter(0);
  for (auto _ : state) counter.Increment();
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CounterStriped)->Threads(1)->Threads(2)->Threads(4)->UseRealTime();

// --- ParallelFor dispatch, pinned vs unpinned workers. ---

void ParallelForWork(benchmark::State& state, bool pin) {
  ThreadPool pool(ThreadPool::Options{/*threads=*/0, pin});
  std::vector<uint64_t> sums(256);
  for (auto _ : state) {
    pool.ParallelFor(0, sums.size(), [&](size_t i) {
      uint64_t acc = i;
      for (int r = 0; r < 512; ++r) acc = acc * 2862933555777941757ULL + 3037ULL;
      sums[i] = acc;
    });
    benchmark::DoNotOptimize(sums.data());
  }
}

void BM_ParallelForUnpinned(benchmark::State& state) {
  ParallelForWork(state, false);
}
BENCHMARK(BM_ParallelForUnpinned);

void BM_ParallelForPinned(benchmark::State& state) {
  ParallelForWork(state, true);
}
BENCHMARK(BM_ParallelForPinned);

void BM_SparqlBgp(benchmark::State& state) {
  const auto& g = World().kb.graph;
  rdf::SparqlEngine engine(g);
  auto query = rdf::SparqlParser::Parse(
      "SELECT ?w WHERE { ?w <spouse> ?a . ?a rdf:type <Actor> . "
      "?f <starring> ?a }");
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.Execute(*query));
  }
}
BENCHMARK(BM_SparqlBgp);

void BM_QuestionUnderstanding(benchmark::State& state) {
  const auto& world = World();
  qa::GAnswer system(&world.kb.graph, &world.lexicon, world.verified.get());
  const std::string q =
      "Who was married to an actor that played in Philadelphia ?";
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        system.understander().Understand(q));
  }
}
BENCHMARK(BM_QuestionUnderstanding);

void BM_EndToEndAsk(benchmark::State& state) {
  const auto& world = World();
  qa::GAnswer system(&world.kb.graph, &world.lexicon, world.verified.get());
  const std::string q =
      "Who was married to an actor that played in Philadelphia ?";
  for (auto _ : state) {
    benchmark::DoNotOptimize(system.Ask(q));
  }
}
BENCHMARK(BM_EndToEndAsk);

void BM_DeannaAsk(benchmark::State& state) {
  const auto& world = World();
  deanna::DeannaQa system(&world.kb.graph, &world.lexicon,
                          world.verified.get());
  const std::string q =
      "Who was married to an actor that played in Philadelphia ?";
  for (auto _ : state) {
    benchmark::DoNotOptimize(system.Ask(q));
  }
}
BENCHMARK(BM_DeannaAsk);

}  // namespace

BENCHMARK_MAIN();
