// Google-benchmark micro-benchmarks for the performance-critical kernels:
// simple-path mining (offline), entity linking, dependency parsing,
// relation extraction, SPARQL BGP evaluation, and top-k subgraph matching.

#include <benchmark/benchmark.h>

#include "bench_support.h"
#include "deanna/deanna_qa.h"
#include "linking/entity_linker.h"
#include "nlp/dependency_parser.h"
#include "paraphrase/path_finder.h"
#include "qa/ganswer.h"
#include "rdf/sparql_engine.h"
#include "rdf/sparql_parser.h"

namespace {

using namespace ganswer;

const bench::BenchWorld& World() {
  static bench::BenchWorld* world = [] {
    auto* w = new bench::BenchWorld(bench::BuildWorld());
    return w;
  }();
  return *world;
}

void BM_Tokenize(benchmark::State& state) {
  const std::string q =
      "Who was married to an actor that played in Philadelphia ?";
  for (auto _ : state) {
    benchmark::DoNotOptimize(nlp::Tokenizer::Tokenize(q));
  }
}
BENCHMARK(BM_Tokenize);

void BM_DependencyParse(benchmark::State& state) {
  nlp::DependencyParser parser(World().lexicon);
  const std::string q =
      "Who was married to an actor that played in Philadelphia ?";
  for (auto _ : state) {
    benchmark::DoNotOptimize(parser.Parse(q));
  }
}
BENCHMARK(BM_DependencyParse);

void BM_EntityLink(benchmark::State& state) {
  linking::EntityIndex index(World().kb.graph);
  linking::EntityLinker linker(&index);
  for (auto _ : state) {
    benchmark::DoNotOptimize(linker.Link("Philadelphia"));
  }
}
BENCHMARK(BM_EntityLink);

void BM_PathMining(benchmark::State& state) {
  const auto& g = World().kb.graph;
  paraphrase::PathFinder::Options opt;
  opt.max_length = static_cast<size_t>(state.range(0));
  paraphrase::PathFinder finder(g, opt);
  auto ted = *g.Find("Ted_Kennedy");
  auto jr = *g.Find("John_F._Kennedy_Jr.");
  for (auto _ : state) {
    benchmark::DoNotOptimize(finder.FindPaths(ted, jr));
  }
}
BENCHMARK(BM_PathMining)->Arg(2)->Arg(3)->Arg(4);

void BM_SparqlBgp(benchmark::State& state) {
  const auto& g = World().kb.graph;
  rdf::SparqlEngine engine(g);
  auto query = rdf::SparqlParser::Parse(
      "SELECT ?w WHERE { ?w <spouse> ?a . ?a rdf:type <Actor> . "
      "?f <starring> ?a }");
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.Execute(*query));
  }
}
BENCHMARK(BM_SparqlBgp);

void BM_QuestionUnderstanding(benchmark::State& state) {
  const auto& world = World();
  qa::GAnswer system(&world.kb.graph, &world.lexicon, world.verified.get());
  const std::string q =
      "Who was married to an actor that played in Philadelphia ?";
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        system.understander().Understand(q));
  }
}
BENCHMARK(BM_QuestionUnderstanding);

void BM_EndToEndAsk(benchmark::State& state) {
  const auto& world = World();
  qa::GAnswer system(&world.kb.graph, &world.lexicon, world.verified.get());
  const std::string q =
      "Who was married to an actor that played in Philadelphia ?";
  for (auto _ : state) {
    benchmark::DoNotOptimize(system.Ask(q));
  }
}
BENCHMARK(BM_EndToEndAsk);

void BM_DeannaAsk(benchmark::State& state) {
  const auto& world = World();
  deanna::DeannaQa system(&world.kb.graph, &world.lexicon,
                          world.verified.get());
  const std::string q =
      "Who was married to an actor that played in Philadelphia ?";
  for (auto _ : state) {
    benchmark::DoNotOptimize(system.Ask(q));
  }
}
BENCHMARK(BM_DeannaAsk);

}  // namespace

BENCHMARK_MAIN();
