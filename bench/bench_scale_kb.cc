// KB-size scaling of the online pipeline: the paper runs on 60M triples
// with per-question times of 250-2565 ms (Table 11); this harness measures
// how our implementation's per-question cost grows with the synthetic KB
// size, separated into understanding and evaluation, plus the one-time
// index build costs.

#include <cstdio>

#include "bench_support.h"
#include "qa/ganswer.h"

using namespace ganswer;

int main() {
  bench::Header("Scaling -- online cost vs knowledge-base size");

  std::printf("\n%-12s %-12s %-14s %-16s %-16s %-10s\n", "triples",
              "init (ms)", "mine (ms)", "underst p50/max", "eval p50/max",
              "right");
  for (size_t scale : {1u, 4u, 16u, 48u}) {
    datagen::KbGenerator::Options kb_opt;
    kb_opt.num_families = 220 * scale;
    kb_opt.num_films = 200 * scale;
    kb_opt.num_cities = 80 * scale;
    kb_opt.num_companies = 90 * scale;
    kb_opt.num_books = 80 * scale;
    kb_opt.num_teams = 20 * scale;
    kb_opt.num_bands = 30 * scale;
    paraphrase::DictionaryBuilder::Options mine_opt;
    mine_opt.max_path_length = 3;
    mine_opt.max_paths_per_pair = 300;
    mine_opt.max_intermediate_degree = 600;
    auto world = bench::BuildWorld(kb_opt, {}, mine_opt);

    WallTimer init_timer;
    qa::GAnswer system(&world.kb.graph, &world.lexicon, world.verified.get());
    double init_ms = init_timer.ElapsedMillis();

    std::vector<double> understand, eval;
    size_t right = 0;
    for (const datagen::GoldQuestion& q : world.workload) {
      auto r = system.Ask(q.text);
      if (!r.ok()) continue;
      understand.push_back(r->understanding_ms);
      eval.push_back(r->evaluation_ms);
      std::vector<std::string> answers;
      for (const auto& a : r->answers) answers.push_back(a.text);
      if (bench::Judge(q, r->is_ask, r->ask_result, answers) ==
          bench::Verdict::kRight) {
        ++right;
      }
    }
    std::sort(understand.begin(), understand.end());
    std::sort(eval.begin(), eval.end());
    auto p50 = [](const std::vector<double>& v) {
      return v.empty() ? 0.0 : v[v.size() / 2];
    };
    auto mx = [](const std::vector<double>& v) {
      return v.empty() ? 0.0 : v.back();
    };
    std::printf("%-12zu %-12.1f %-14.1f %6.2f / %-7.2f %6.2f / %-7.2f %-10zu\n",
                world.kb.graph.NumTriples(), init_ms, world.mine_ms,
                p50(understand), mx(understand), p50(eval), mx(eval), right);
  }

  std::printf(
      "\nExpected: per-question understanding grows mildly with the entity\n"
      "index size (linking), evaluation with candidate neighborhoods; both\n"
      "stay in the online regime while offline costs grow fastest — the\n"
      "paper's offline/online cost split.\n");
  return 0;
}
