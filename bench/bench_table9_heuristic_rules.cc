// Table 9 (Exp 4, Sec. 6.3): effect of the four heuristic argument-finding
// rules. The paper: 48 vs 32 questions with correctly found arguments, and
// 32 vs 21 questions answered correctly, with vs without the rules.
//
// Expected shape: both counters drop substantially when the rules are off.

#include <cstdio>

#include "bench_support.h"
#include "qa/ganswer.h"

using namespace ganswer;

namespace {

struct RuleScore {
  size_t questions_with_relations = 0;
  size_t answered_right = 0;
};

RuleScore Evaluate(const bench::BenchWorld& world, bool rules_on) {
  qa::GAnswer::Options opt;
  auto& rules = opt.understanding.argument_options;
  rules.rule1_extend_light_words = rules_on;
  rules.rule2_root_parent = rules_on;
  rules.rule3_parent_subject = rules_on;
  rules.rule4_wh_fallback = rules_on;
  qa::GAnswer system(&world.kb.graph, &world.lexicon, world.verified.get(),
                     opt);

  RuleScore score;
  for (const datagen::GoldQuestion& q : world.workload) {
    auto r = system.Ask(q.text);
    if (!r.ok()) continue;
    // "Finding arguments correctly": at least one semantic relation
    // survived argument finding (the paper's counter is over its 99
    // questions; ours over the 100-question workload).
    if (!r->understanding.relations.empty()) {
      ++score.questions_with_relations;
    }
    std::vector<std::string> answers;
    for (const auto& a : r->answers) answers.push_back(a.text);
    if (bench::Judge(q, r->is_ask, r->ask_result, answers) ==
        bench::Verdict::kRight) {
      ++score.answered_right;
    }
  }
  return score;
}

}  // namespace

int main() {
  bench::Header("Table 9 -- heuristic argument rules ablation");
  auto world = bench::BuildWorld();

  RuleScore with_rules = Evaluate(world, true);
  RuleScore without_rules = Evaluate(world, false);

  std::printf("\n%-36s %-22s %-20s\n", "", "without the four rules",
              "using the four rules");
  std::printf("%-36s %-22zu %-20zu\n", "questions with arguments found",
              without_rules.questions_with_relations,
              with_rules.questions_with_relations);
  std::printf("%-36s %-22zu %-20zu\n", "questions answered correctly",
              without_rules.answered_right, with_rules.answered_right);

  std::printf(
      "\nPaper-shape check (Table 9): both rows improve with the rules\n"
      "(paper: arguments 32 -> 48, answered 21 -> 32).\n");
  return 0;
}
