// Sec. 6 generality check: "We also evaluate our method in other RDF
// repositories, such as Yago2." The same workload runs over the KB with
// its schema renamed to a YAGO-flavoured vocabulary (isMarriedTo, actedIn,
// wordnet_* classes); mining, verification and matching are repeated from
// scratch on the renamed graph. Expected: accuracy within a few questions
// of the DBpedia-like run — nothing in the pipeline keys on predicate
// spellings.

#include <cstdio>

#include "bench_support.h"
#include "datagen/schema_rename.h"
#include "qa/ganswer.h"

using namespace ganswer;

namespace {

struct Score {
  size_t right = 0;
  size_t partial = 0;
};

Score Evaluate(const rdf::RdfGraph& graph, const nlp::Lexicon& lexicon,
               const paraphrase::ParaphraseDictionary& dict,
               const std::vector<datagen::GoldQuestion>& workload) {
  qa::GAnswer system(&graph, &lexicon, &dict);
  Score s;
  for (const auto& q : workload) {
    auto r = system.Ask(q.text);
    if (!r.ok()) continue;
    std::vector<std::string> answers;
    for (const auto& a : r->answers) answers.push_back(a.text);
    switch (bench::Judge(q, r->is_ask, r->ask_result, answers)) {
      case bench::Verdict::kRight:
        ++s.right;
        break;
      case bench::Verdict::kPartial:
        ++s.partial;
        break;
      default:
        break;
    }
  }
  return s;
}

}  // namespace

int main() {
  bench::Header("Generality -- same pipeline over a Yago2-like vocabulary");
  auto world = bench::BuildWorld();

  Score dbpedia = Evaluate(world.kb.graph, world.lexicon, *world.verified,
                           world.workload);

  auto renamed = datagen::RenameSchema(world.kb, datagen::YagoRenames());
  if (!renamed.ok()) return 1;
  auto gold_phrases =
      datagen::RenameGold(world.phrases, datagen::YagoRenames());
  auto dataset = datagen::PhraseDatasetGenerator::StripGold(gold_phrases);
  paraphrase::ParaphraseDictionary mined(&world.lexicon);
  paraphrase::DictionaryBuilder::Options mopt;
  mopt.max_path_length = 3;
  WallTimer mine_timer;
  if (!paraphrase::DictionaryBuilder(mopt)
           .Build(renamed->graph, dataset, &mined)
           .ok()) {
    return 1;
  }
  double mine_ms = mine_timer.ElapsedMillis();
  paraphrase::ParaphraseDictionary verified(&world.lexicon);
  datagen::VerifyDictionary(gold_phrases, renamed->graph, mined, &verified);
  Score yago =
      Evaluate(renamed->graph, world.lexicon, verified, world.workload);

  std::printf("\n%-26s %-8s %-10s\n", "vocabulary", "right", "partially");
  std::printf("%-26s %-8zu %-10zu\n", "DBpedia-like", dbpedia.right,
              dbpedia.partial);
  std::printf("%-26s %-8zu %-10zu   (re-mined in %.0f ms)\n", "Yago2-like",
              yago.right, yago.partial, mine_ms);

  std::printf(
      "\nExpected: accuracy within a few questions across vocabularies —\n"
      "the pipeline learns phrase-to-predicate mappings from the data\n"
      "(Algorithm 1), so predicate spellings never matter.\n");
  return 0;
}
