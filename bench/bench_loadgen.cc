// Open-loop, Zipf-skewed load harness: the tail-latency program's
// measurement layer.
//
// bench_httpd_loopback is closed-loop: each client waits for its response
// before sending the next request, so when the server slows down the
// offered load politely slows down with it and queueing delay never shows
// up in the numbers (coordinated omission). This harness measures what a
// population of independent users would see:
//
//   * Arrivals are OPEN-LOOP: a Poisson schedule is precomputed from a
//     seed (exponential inter-arrival gaps at the offered rate) and
//     requests are issued at their scheduled times whether or not earlier
//     responses have come back.
//   * Latency is measured from the SCHEDULED arrival time, not from the
//     moment a sender thread got around to writing the bytes — if the
//     harness falls behind because the server is slow, that wait is
//     counted, which is exactly the coordinated-omission fix.
//   * Question popularity is Zipf(s) over the workload (common/zipf.h):
//     a hot head that the question cache absorbs and a cold tail that
//     costs full matcher runs, plus raw-SPARQL, streaming POST /update
//     batches (the services run in live mode) and malformed requests —
//     the traffic mix a public endpoint actually sees. Update points
//     carry delta-size and epoch-age fields in their BENCH_JSON lines.
//   * Recording is common/latency_histogram.h: bounded memory per sender
//     thread, merged at the end, p50/p95/p99/p99.9 with bounded error.
//
// The sweep drives offered load from well below to well past the knee for
// two service configurations over the same schedules:
//
//   baseline  pure queue-length shedding (PR 4 behavior): every request
//             rides the admission queue, no deadlines.
//   tuned     cached fast path on (hits answered on the event loop) +
//             deadline shedding at dequeue.
//
// and emits one BENCH_JSON line per (config, offered-load) point, plus a
// summary line comparing admitted-request p99 past the knee and verifying
// fast-path answers are byte-identical to the worker-pool path.
//
// Run: ./build/bench/bench_loadgen [--smoke] [--duration-s S] [--seed N]
//   --smoke: CI mode — one low offered-load point, asserts zero sheds and
//            zero transport errors (exit 1 otherwise).

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "bench_support.h"
#include "common/latency_histogram.h"
#include "common/random.h"
#include "common/timer.h"
#include "common/zipf.h"
#include "server/http_client.h"
#include "server/qa_service.h"
#include "store/snapshot.h"

using namespace ganswer;

namespace {

// More virtual clients than the service's max_queue, so overload actually
// reaches the server's admission queue instead of piling up only in the
// harness's own send backlog (which would leave the shed paths untested).
constexpr int kSenderThreads = 96;
constexpr double kZipfSkew = 1.1;
constexpr size_t kHotQuestions = 32;

enum class TrafficClass { kHot, kUncached, kSparql, kUpdate, kMalformed };

struct Arrival {
  int64_t t_us = 0;  ///< Scheduled offset from the run start.
  TrafficClass cls = TrafficClass::kHot;
  size_t index = 0;  ///< Question rank (hot), variant id (uncached), ...
};

/// The workload a sweep runs against: hot questions under Zipf popularity,
/// plus a SPARQL probe query derived from the generated graph.
struct Workload {
  std::vector<std::string> hot;
  std::string sparql;
};

/// One sender thread's tallies; merged across the pool after the run.
struct Tally {
  LatencyHistogram answer_latency;  ///< 200s of hot + uncached, from
                                    ///< scheduled arrival time.
  size_t ok = 0;
  size_t sparql_ok = 0;
  size_t updates_ok = 0;
  size_t malformed_400 = 0;
  size_t shed_queue_full = 0;
  size_t shed_deadline = 0;
  size_t errors = 0;
  int64_t last_update_us = -1;  ///< Completion time of the latest commit.
  uint64_t last_epoch = 0;      ///< Highest epoch acked to this sender.

  void MergeFrom(const Tally& other) {
    answer_latency.Merge(other.answer_latency);
    ok += other.ok;
    sparql_ok += other.sparql_ok;
    updates_ok += other.updates_ok;
    malformed_400 += other.malformed_400;
    shed_queue_full += other.shed_queue_full;
    shed_deadline += other.shed_deadline;
    errors += other.errors;
    last_update_us = std::max(last_update_us, other.last_update_us);
    last_epoch = std::max(last_epoch, other.last_epoch);
  }
};

struct PointResult {
  double offered_qps = 0;
  double achieved_qps = 0;  ///< All completed responses over the wall time.
  double served_qps = 0;    ///< 200 answers over the wall time.
  double wall_s = 0;
  size_t scheduled = 0;
  Tally tally;
};

Workload BuildWorkload(const bench::BenchWorld& world) {
  Workload w;
  for (const auto& gold : world.workload) {
    if (!gold.is_ask) w.hot.push_back(gold.text);
    if (w.hot.size() >= kHotQuestions) break;
  }
  if (w.hot.empty()) w.hot.push_back("Who is the mayor of Berlin ?");
  // A SPARQL probe built from the first materialized edge, so it parses
  // and plans against whatever KB the generator produced.
  const rdf::RdfGraph& graph = world.kb.graph;
  for (rdf::TermId v = 0; v < graph.NumTerms() && w.sparql.empty(); ++v) {
    auto edges = graph.OutEdges(v);
    if (edges.empty()) continue;
    w.sparql = "SELECT ?s WHERE { ?s <" +
               std::string(graph.dict().text(edges.front().predicate)) +
               "> <" +
               std::string(graph.dict().text(edges.front().neighbor)) +
               "> }";
  }
  if (w.sparql.empty()) w.sparql = "ASK WHERE { }";
  return w;
}

/// Precomputes the open-loop schedule: Poisson arrivals at \p offered_qps
/// for \p duration_s, each tagged with a traffic class and question index.
/// Pure function of the seed — both service configs replay the identical
/// byte stream.
std::vector<Arrival> BuildSchedule(double offered_qps, double duration_s,
                                   size_t hot_count, uint64_t seed) {
  Rng rng(seed);
  ZipfGenerator zipf(hot_count, kZipfSkew, seed ^ 0x5eed);
  std::vector<Arrival> schedule;
  schedule.reserve(static_cast<size_t>(offered_qps * duration_s * 1.1) + 16);
  double t_us = 0;
  const double horizon_us = duration_s * 1e6;
  size_t uncached_counter = 0;
  size_t update_counter = 0;
  while (true) {
    // Exponential gap; 1 - u keeps log() away from 0.
    double u = rng.NextDouble();
    t_us += -std::log(1.0 - u) / offered_qps * 1e6;
    if (t_us >= horizon_us) break;
    Arrival a;
    a.t_us = static_cast<int64_t>(t_us);
    double cls = rng.NextDouble();
    if (cls < 0.78) {
      a.cls = TrafficClass::kHot;
      a.index = zipf.Next();
    } else if (cls < 0.88) {
      a.cls = TrafficClass::kUncached;
      a.index = uncached_counter++;
    } else if (cls < 0.93) {
      a.cls = TrafficClass::kSparql;
    } else if (cls < 0.96) {
      a.cls = TrafficClass::kUpdate;
      a.index = update_counter++;
    } else {
      a.cls = TrafficClass::kMalformed;
    }
    schedule.push_back(a);
  }
  return schedule;
}

/// Issues \p schedule open-loop against the service and returns merged
/// tallies. kSenderThreads virtual clients pull arrivals off a shared
/// cursor; an arrival whose time has passed is sent immediately and its
/// lateness counts against the measured latency (scheduled-time
/// recording).
PointResult RunOpenLoop(int port, const Workload& workload,
                        const std::vector<Arrival>& schedule,
                        int deadline_ms) {
  std::vector<Tally> tallies(kSenderThreads);
  std::atomic<size_t> cursor{0};
  std::vector<std::thread> senders;
  WallTimer wall;
  auto start = std::chrono::steady_clock::now();
  for (int s = 0; s < kSenderThreads; ++s) {
    senders.emplace_back([&, s] {
      Tally& mine = tallies[static_cast<size_t>(s)];
      server::BlockingHttpClient client;
      if (!client.Connect("127.0.0.1", port).ok()) {
        ++mine.errors;
        return;
      }
      while (true) {
        size_t i = cursor.fetch_add(1, std::memory_order_relaxed);
        if (i >= schedule.size()) break;
        const Arrival& a = schedule[i];
        auto scheduled = start + std::chrono::microseconds(a.t_us);
        std::this_thread::sleep_until(scheduled);  // no-op when behind
        // In deadline mode the virtual user's patience started at the
        // SCHEDULED arrival, so the budget forwarded to the server is
        // whatever is left after the harness's own send backlog — a
        // request that is already hopeless at send time arrives with a
        // ~spent budget and is shed at dequeue instead of being served
        // stale. The header floor is 1 ms (the server's minimum).
        std::vector<std::pair<std::string, std::string>> headers;
        if (deadline_ms > 0) {
          int64_t late_ms =
              std::chrono::duration_cast<std::chrono::milliseconds>(
                  std::chrono::steady_clock::now() - scheduled)
                  .count();
          int64_t remaining = deadline_ms - late_ms;
          headers.emplace_back(
              "X-Deadline-Ms",
              std::to_string(remaining > 1 ? remaining : 1));
        }
        StatusOr<server::ClientResponse> response =
            Status::Internal("unsent");
        switch (a.cls) {
          case TrafficClass::kHot:
            response = client.Post(
                "/answer",
                "{\"question\": \"" + workload.hot[a.index] + "\"}",
                "application/json", headers);
            break;
          case TrafficClass::kUncached:
            response = client.Post(
                "/answer", "{\"question\": \"" +
                               workload.hot[a.index % workload.hot.size()] +
                               " variant " + std::to_string(a.index) +
                               "\"}",
                "application/json", headers);
            break;
          case TrafficClass::kSparql:
            response =
                client.Post("/sparql",
                            "{\"query\": \"" + workload.sparql + "\"}",
                            "application/json", headers);
            break;
          case TrafficClass::kUpdate:
            // Streaming writes share the admission queue with queries, so
            // they see the same shed paths under overload.
            response = client.Post(
                "/update",
                "<load_u" + std::to_string(a.index) + "> <touches> <load_v" +
                    std::to_string(a.index % 256) + "> .\n",
                "application/json", headers);
            break;
          case TrafficClass::kMalformed:
            response = client.Post("/answer", "");
            break;
        }
        int64_t done_us = std::chrono::duration_cast<std::chrono::microseconds>(
                              std::chrono::steady_clock::now() - start)
                              .count();
        if (!response.ok()) {
          ++mine.errors;
          continue;
        }
        int64_t latency_us = done_us - a.t_us;
        if (latency_us < 0) latency_us = 0;
        if (response->status == 200) {
          if (a.cls == TrafficClass::kSparql) {
            ++mine.sparql_ok;
          } else if (a.cls == TrafficClass::kUpdate) {
            ++mine.updates_ok;
            mine.last_update_us = std::max(mine.last_update_us, done_us);
            size_t at = response->body.find("\"epoch\":");
            if (at != std::string::npos) {
              mine.last_epoch = std::max(
                  mine.last_epoch,
                  static_cast<uint64_t>(
                      std::atoll(response->body.c_str() + at + 8)));
            }
          } else {
            ++mine.ok;
            mine.answer_latency.Record(static_cast<uint64_t>(latency_us));
          }
        } else if (response->status == 503) {
          if (response->body.find("deadline_expired") != std::string::npos) {
            ++mine.shed_deadline;
          } else {
            ++mine.shed_queue_full;
          }
        } else if (response->status == 400 &&
                   a.cls == TrafficClass::kMalformed) {
          ++mine.malformed_400;
        } else {
          ++mine.errors;
        }
      }
    });
  }
  for (auto& t : senders) t.join();

  PointResult result;
  result.wall_s = wall.ElapsedSeconds();
  result.scheduled = schedule.size();
  for (const Tally& t : tallies) result.tally.MergeFrom(t);
  size_t completed = result.tally.ok + result.tally.sparql_ok +
                     result.tally.updates_ok + result.tally.malformed_400 +
                     result.tally.shed_queue_full +
                     result.tally.shed_deadline;
  result.achieved_qps =
      result.wall_s > 0 ? static_cast<double>(completed) / result.wall_s : 0;
  result.served_qps =
      result.wall_s > 0 ? static_cast<double>(result.tally.ok) / result.wall_s
                        : 0;
  return result;
}

/// Primes the question cache with one pass over the hot set so the sweep
/// measures steady-state serving, not cold-start fills.
void WarmCache(int port, const Workload& workload) {
  server::BlockingHttpClient client;
  if (!client.Connect("127.0.0.1", port).ok()) return;
  for (const std::string& q : workload.hot) {
    auto r = client.Post("/answer", "{\"question\": \"" + q + "\"}");
    (void)r;
  }
}

/// Closed-loop calibration against the baseline config: the sustained QPS
/// of the warmed traffic mix, which anchors the sweep's offered-load
/// multipliers around the knee.
double CalibrateQps(int port, const Workload& workload, uint64_t seed) {
  // A dense schedule issued closed-loop (senders never sleep because every
  // arrival time is 0) approximates the service's saturation throughput.
  std::vector<Arrival> burst =
      BuildSchedule(/*offered_qps=*/1e9, /*duration_s=*/4e-7,
                    workload.hot.size(), seed);
  // 1e9 qps * 4e-7 s ≈ 400 arrivals, all scheduled at t≈0.
  PointResult r = RunOpenLoop(port, workload, burst, /*deadline_ms=*/0);
  double qps = r.achieved_qps;
  return qps > 1 ? qps : 1;
}

struct ServiceConfig {
  const char* name;
  bool fast_path;
  int deadline_ms;
};

server::QaService::Options MakeOptions(const std::string& snapshot_path,
                                       const ServiceConfig& config) {
  server::QaService::Options options;
  options.snapshot_path = snapshot_path;
  // Live mode for every config: the mix carries streaming /update traffic,
  // so the sweep measures the serving tier the way it actually runs. The
  // store directory is wiped before each boot so every point starts at
  // epoch 0 with an empty delta.
  options.live_dir = std::string("bench_loadgen_live_") + config.name;
  std::filesystem::remove_all(options.live_dir);
  options.port = 0;
  options.threads = 2;
  options.max_queue = 64;  // the serving default — PR 4's only backstop
  options.question_cache_capacity = 4096;
  options.cached_fast_path = config.fast_path;
  options.deadline_ms = config.deadline_ms;
  return options;
}

/// Crude numeric field scrape from a /stats or /update JSON body.
int64_t JsonNumber(const std::string& body, const std::string& key) {
  size_t at = body.find("\"" + key + "\":");
  if (at == std::string::npos) return -1;
  return std::atoll(body.c_str() + at + key.size() + 3);
}

/// Fast-path answers must be byte-identical to worker-pool answers for the
/// same cache entry; X-No-Fast-Path forces the worker path on a service
/// that has the fast path on, so both bodies come from one cache state.
bool VerifyByteIdentity(const std::string& snapshot_path,
                        const Workload& workload) {
  ServiceConfig config{"tuned", /*fast_path=*/true, /*deadline_ms=*/0};
  server::QaService service(MakeOptions(snapshot_path, config));
  if (!service.Start().ok()) return false;
  server::BlockingHttpClient client;
  if (!client.Connect("127.0.0.1", service.port()).ok()) return false;
  bool identical = true;
  size_t checked = 0;
  for (size_t i = 0; i < workload.hot.size() && i < 8; ++i) {
    std::string body = "{\"question\": \"" + workload.hot[i] + "\"}";
    auto warm = client.Post("/answer", body);  // miss -> worker path, fills
    auto fast = client.Post("/answer", body);  // hit -> event-loop path
    auto slow = client.Post("/answer", body, "application/json",
                            {{"X-No-Fast-Path", "1"}});  // hit -> worker
    if (!warm.ok() || !fast.ok() || !slow.ok() || warm->status != 200 ||
        fast->status != 200 || slow->status != 200) {
      identical = false;
      break;
    }
    if (fast->body.find("\"cache_hit\":true") == std::string::npos ||
        fast->body != slow->body) {
      std::fprintf(stderr,
                   "byte identity FAILED for %s\n fast: %s\n slow: %s\n",
                   workload.hot[i].c_str(), fast->body.c_str(),
                   slow->body.c_str());
      identical = false;
      break;
    }
    ++checked;
  }
  service.Shutdown();
  std::printf("byte identity: %zu fast-path answers %s their worker-pool "
              "twins\n",
              checked, identical ? "identical to" : "DIVERGED from");
  return identical && checked > 0;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  double duration_s = 2.5;
  uint64_t seed = 42;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--duration-s") == 0 && i + 1 < argc) {
      duration_s = std::atof(argv[++i]);
    } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      seed = static_cast<uint64_t>(std::atoll(argv[++i]));
    } else {
      std::fprintf(stderr,
                   "usage: %s [--smoke] [--duration-s S] [--seed N]\n",
                   argv[0]);
      return 2;
    }
  }
  if (smoke) duration_s = std::min(duration_s, 1.0);

  bench::Header("Open-loop Zipf load harness: latency vs offered load");

  bench::BenchWorld world = bench::BuildWorld();
  const std::string snapshot_path = "bench_loadgen.snap";
  if (Status st = store::WriteSnapshotFile(world.kb.graph, *world.verified,
                                           snapshot_path);
      !st.ok()) {
    std::fprintf(stderr, "snapshot write failed: %s\n",
                 st.ToString().c_str());
    return 1;
  }
  Workload workload = BuildWorkload(world);

  if (!VerifyByteIdentity(snapshot_path, workload)) {
    std::remove(snapshot_path.c_str());
    return 1;
  }

  // Calibrate the knee's neighborhood on the baseline config.
  double base_qps;
  {
    ServiceConfig baseline{"baseline", false, 0};
    server::QaService service(MakeOptions(snapshot_path, baseline));
    if (!service.Start().ok()) return 1;
    WarmCache(service.port(), workload);
    base_qps = CalibrateQps(service.port(), workload, seed);
    service.Shutdown();
  }
  std::printf("calibrated closed-loop capacity (baseline config): %.0f "
              "qps\n\n",
              base_qps);

  std::vector<double> multipliers =
      smoke ? std::vector<double>{0.25}
            : std::vector<double>{0.25, 0.5, 0.75, 1.0, 1.5, 2.5};
  const ServiceConfig configs[] = {
      {"baseline", /*fast_path=*/false, /*deadline_ms=*/0},
      {"tuned", /*fast_path=*/true,
       /*deadline_ms=*/std::max(25, static_cast<int>(4000.0 / base_qps *
                                                     32))},
  };

  std::printf("%-9s %10s %10s %10s %9s %9s %9s %10s %7s %7s\n", "config",
              "offered", "achieved", "served", "p50_ms", "p95_ms", "p99_ms",
              "p99.9_ms", "shed_q", "shed_dl");

  // results[config][point]
  std::vector<std::vector<PointResult>> results(2);
  size_t total_sheds = 0;
  size_t total_errors = 0;
  for (size_t c = 0; c < 2; ++c) {
    const ServiceConfig& config = configs[c];
    for (size_t p = 0; p < multipliers.size(); ++p) {
      double offered = base_qps * multipliers[p];
      // Identical schedule for both configs at the same point: the seed
      // depends only on the sweep position.
      std::vector<Arrival> schedule = BuildSchedule(
          offered, duration_s, workload.hot.size(), seed + 1000 * p);

      server::QaService service(MakeOptions(snapshot_path, config));
      if (Status st = service.Start(); !st.ok()) {
        std::fprintf(stderr, "startup failed: %s\n", st.ToString().c_str());
        return 1;
      }
      WarmCache(service.port(), workload);
      PointResult result = RunOpenLoop(service.port(), workload, schedule,
                                       config.deadline_ms);
      result.offered_qps = offered;
      // The accumulated delta at the end of the point, from /stats.
      int64_t delta_triples = -1;
      {
        server::BlockingHttpClient stats_client;
        if (stats_client.Connect("127.0.0.1", service.port()).ok()) {
          if (auto stats = stats_client.Get("/stats"); stats.ok()) {
            delta_triples = JsonNumber(stats->body, "delta_triples");
          }
        }
      }
      service.Shutdown();

      const Tally& t = result.tally;
      std::printf("%-9s %10.0f %10.0f %10.0f %9.2f %9.2f %9.2f %10.2f "
                  "%7zu %7zu\n",
                  config.name, offered, result.achieved_qps,
                  result.served_qps, t.answer_latency.QuantileMillis(0.50),
                  t.answer_latency.QuantileMillis(0.95),
                  t.answer_latency.QuantileMillis(0.99),
                  t.answer_latency.QuantileMillis(0.999), t.shed_queue_full,
                  t.shed_deadline);
      bench::JsonLine("loadgen")
          .Field("closed_loop", false)
          .Field("config", config.name)
          .Field("fast_path", config.fast_path)
          .Field("deadline_ms", config.deadline_ms)
          .Field("seed", seed)
          .Field("zipf_skew", kZipfSkew)
          .Field("hot_questions", workload.hot.size())
          .Field("duration_s", duration_s)
          .Field("offered_qps", offered)
          .Field("achieved_qps", result.achieved_qps)
          .Field("served_qps", result.served_qps)
          .Field("scheduled", result.scheduled)
          .Field("answers_ok", t.ok)
          .Field("sparql_ok", t.sparql_ok)
          .Field("updates_ok", t.updates_ok)
          .Field("final_epoch", t.last_epoch)
          .Field("delta_triples", delta_triples >= 0
                                      ? static_cast<size_t>(delta_triples)
                                      : size_t{0})
          // How stale the newest epoch was when the point ended: the gap
          // between the last acked commit and the end of the measurement
          // window (-1 when the point carried no committed updates).
          .Field("epoch_age_ms",
                 t.last_update_us >= 0
                     ? (result.wall_s * 1e3 -
                        static_cast<double>(t.last_update_us) / 1e3)
                     : -1.0)
          .Field("malformed_400", t.malformed_400)
          .Field("shed_queue_full", t.shed_queue_full)
          .Field("shed_deadline", t.shed_deadline)
          .Field("errors", t.errors)
          .Field("p50_ms", t.answer_latency.QuantileMillis(0.50))
          .Field("p95_ms", t.answer_latency.QuantileMillis(0.95))
          .Field("p99_ms", t.answer_latency.QuantileMillis(0.99))
          .Field("p99_9_ms", t.answer_latency.QuantileMillis(0.999))
          .Field("hardware_threads",
                 static_cast<int>(std::thread::hardware_concurrency()))
          .Emit();
      results[c].push_back(result);
      total_sheds += t.shed_queue_full + t.shed_deadline;
      total_errors += t.errors;
    }
    std::printf("\n");
  }
  std::remove(snapshot_path.c_str());
  std::filesystem::remove_all("bench_loadgen_live_baseline");
  std::filesystem::remove_all("bench_loadgen_live_tuned");

  if (smoke) {
    // CI contract: at 0.25x capacity nothing may be shed and the transport
    // must be clean; the curve point lines above are the artifact.
    std::printf("smoke: %zu sheds, %zu errors at 0.25x capacity\n",
                total_sheds, total_errors);
    if (total_sheds != 0 || total_errors != 0) {
      std::fprintf(stderr, "SMOKE FAILED: expected zero sheds/errors\n");
      return 1;
    }
    return 0;
  }

  // Knee: the first baseline point where admitted-request p99 blows past
  // the uncongested point or throughput stops tracking the offered load.
  const std::vector<PointResult>& baseline = results[0];
  const std::vector<PointResult>& tuned = results[1];
  double base_p99_0 = baseline[0].tally.answer_latency.QuantileMillis(0.99);
  size_t knee = multipliers.size() - 1;
  for (size_t p = 0; p < multipliers.size(); ++p) {
    double p99 = baseline[p].tally.answer_latency.QuantileMillis(0.99);
    if (p99 > 3 * base_p99_0 ||
        baseline[p].achieved_qps < 0.9 * baseline[p].offered_qps) {
      knee = p;
      break;
    }
  }
  size_t last = multipliers.size() - 1;
  double baseline_p99 =
      baseline[last].tally.answer_latency.QuantileMillis(0.99);
  double tuned_p99 = tuned[last].tally.answer_latency.QuantileMillis(0.99);
  bool tuned_better = tuned_p99 < baseline_p99;
  std::printf("knee at ~%.0f offered qps (point %zu); past-knee p99: "
              "baseline %.2f ms vs tuned %.2f ms (%s)\n",
              baseline[knee].offered_qps, knee, baseline_p99, tuned_p99,
              tuned_better ? "tuned wins" : "NO IMPROVEMENT");
  bench::JsonLine("loadgen_summary")
      .Field("knee_offered_qps", baseline[knee].offered_qps)
      .Field("knee_point", knee)
      .Field("overload_offered_qps", baseline[last].offered_qps)
      .Field("baseline_p99_ms", baseline_p99)
      .Field("tuned_p99_ms", tuned_p99)
      .Field("tuned_p99_better", tuned_better)
      .Field("byte_identical", true)
      .Emit();
  return 0;
}
