// Ablations of the paper's two query-evaluation optimizations (Sec. 4.2.2):
//
//  1. neighborhood-based candidate pruning (the u5 example), and
//  2. TA-style early termination of the top-k search (Algorithm 3).
//
// Both are correctness-preserving (the tests assert equal results); this
// harness measures what they buy: candidate-set shrinkage, anchored-search
// counts, and end-to-end evaluation time over the workload.

#include <cstdio>

#include "bench_support.h"
#include "qa/ganswer.h"

using namespace ganswer;

namespace {

struct AblationScore {
  double total_eval_ms = 0;
  size_t anchored_searches = 0;
  size_t expansions = 0;
  size_t right = 0;
};

AblationScore Run(const bench::BenchWorld& world, bool pruning, bool ta) {
  qa::GAnswer::Options opt;
  opt.matching.neighborhood_pruning = pruning;
  opt.matching.ta_early_stop = ta;
  qa::GAnswer system(&world.kb.graph, &world.lexicon, world.verified.get(),
                     opt);
  AblationScore score;
  for (const datagen::GoldQuestion& q : world.workload) {
    auto r = system.Ask(q.text);
    if (!r.ok()) continue;
    score.total_eval_ms += r->evaluation_ms;
    score.anchored_searches += r->match_stats.anchored_searches;
    score.expansions += r->match_stats.expansions;
    std::vector<std::string> answers;
    for (const auto& a : r->answers) answers.push_back(a.text);
    if (bench::Judge(q, r->is_ask, r->ask_result, answers) ==
        bench::Verdict::kRight) {
      ++score.right;
    }
  }
  return score;
}

}  // namespace

int main() {
  bench::Header("Ablation -- neighborhood pruning and TA early termination");
  datagen::KbGenerator::Options kb_opt;
  kb_opt.num_families = 400;
  kb_opt.num_films = 300;
  auto world = bench::BuildWorld(kb_opt);
  std::printf("KB: %zu triples; workload: %zu questions\n",
              world.kb.graph.NumTriples(), world.workload.size());

  struct Config {
    const char* name;
    bool pruning;
    bool ta;
  };
  const Config configs[] = {
      {"full (pruning + TA)", true, true},
      {"no neighborhood pruning", false, true},
      {"no TA early stop", true, false},
      {"neither", false, false},
  };

  std::printf("\n%-26s %-14s %-12s %-14s %-8s\n", "configuration", "eval time",
              "anchored", "expansions", "right");
  for (const Config& c : configs) {
    AblationScore s = Run(world, c.pruning, c.ta);
    std::printf("%-26s %10.1f ms %-12zu %-14zu %-8zu\n", c.name,
                s.total_eval_ms, s.anchored_searches, s.expansions, s.right);
  }

  std::printf(
      "\nExpected: all configurations answer the same questions (the\n"
      "optimizations are exact); pruning cuts expansions, TA cuts anchored\n"
      "searches, and the full configuration is fastest.\n");
  return 0;
}
