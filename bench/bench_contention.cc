// Contention and scaling harness for the online hot path: how throughput
// moves as threads are added on the machine at hand.
//
// Four sweeps, each across thread counts {1, 2, 4, ...} up to the CPUs
// available to the process (cpuset-aware; a 1-core CI box runs only the
// T=1 point and the assertions degrade to sanity bounds):
//
//   counters   StripedCounter increments vs the stripes=1 shared-atomic
//              baseline it replaced. The striped curve should stay near
//              flat per-thread (relaxed adds to private cache lines); the
//              shared curve collapses as every add drags one line
//              exclusive across cores. Exactness is asserted: the final
//              Value() must equal threads x iterations.
//   cache      ShardedLruCache hit throughput on a hot working set — the
//              cached fast path's probe loop. Core-derived shard count,
//              padded shard headers.
//   probes     SIMD lower-bound kernels vs forced scalar on sorted flat
//              and (key, payload) pair runs, the SparqlEngine's edge-run
//              and merge-join probes. Single-threaded (the kernels are
//              data-parallel, not thread-parallel); results asserted
//              byte-identical to std::lower_bound as it runs.
//   matcher    Batched end-to-end QPS: the generated question workload
//              fanned across a pinned worker pool (caching off, so every
//              question rides understanding + matching).
//
// Every point emits one BENCH_JSON line carrying `hardware_threads`,
// `threads`, ops/s and `scaling_efficiency` = (ops(T)/ops(1))/T, so the
// artifact records the whole curve per commit.
//
// Run: ./build/bench/bench_contention [--smoke] [--seed N]
//   --smoke: CI mode — short runs; exit 1 when a correctness assertion or
//   (on 8+ hardware threads) the >= 2x-at-8-threads scaling bar fails.

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "bench_support.h"
#include "common/lru_cache.h"
#include "common/random.h"
#include "common/search.h"
#include "common/striped_counter.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "common/topology.h"
#include "qa/ganswer.h"

using namespace ganswer;

namespace {

bool g_failed = false;

void Check(bool ok, const char* what) {
  if (ok) return;
  std::fprintf(stderr, "CHECK FAILED: %s\n", what);
  g_failed = true;
}

std::vector<int> ThreadSweep(int max_threads) {
  std::vector<int> sweep;
  for (int t = 1; t <= max_threads; t *= 2) sweep.push_back(t);
  if (sweep.back() != max_threads) sweep.push_back(max_threads);
  return sweep;
}

/// Runs \p body on \p threads threads concurrently (plain std::thread, not
/// the pool — the pool itself is under test elsewhere) and returns elapsed
/// wall milliseconds from first start to last join.
double TimedThreads(int threads, const std::function<void(int)>& body) {
  WallTimer timer;
  std::vector<std::thread> workers;
  workers.reserve(threads);
  for (int t = 0; t < threads; ++t) workers.emplace_back(body, t);
  for (std::thread& w : workers) w.join();
  return timer.ElapsedMillis();
}

double Efficiency(double ops_1, double ops_t, int threads) {
  if (ops_1 <= 0) return 0;
  return (ops_t / ops_1) / threads;
}

// ---------------------------------------------------------------------------
// Sweep 1: counter increments, striped vs shared.
// ---------------------------------------------------------------------------

double CounterSweepPoint(size_t stripes, int threads, uint64_t iters) {
  StripedCounter counter(stripes);
  double ms = TimedThreads(threads, [&](int) {
    for (uint64_t i = 0; i < iters; ++i) counter.Increment();
  });
  Check(counter.Value() == static_cast<uint64_t>(threads) * iters,
        "striped counter aggregate is exact");
  return static_cast<double>(threads) * iters / (ms / 1000.0);
}

void RunCounterSweep(const std::vector<int>& sweep, uint64_t iters,
                     bool smoke) {
  bench::Header("counter increments: striped vs shared atomic");
  std::printf("%8s %16s %16s %10s\n", "threads", "striped M/s", "shared M/s",
              "eff");
  double striped_1 = 0, shared_1 = 0, striped_8 = 0;
  for (int t : sweep) {
    double striped = CounterSweepPoint(0, t, iters);
    double shared = CounterSweepPoint(1, t, iters);
    if (t == 1) striped_1 = striped, shared_1 = shared;
    if (t == 8) striped_8 = striped;
    double eff = Efficiency(striped_1, striped, t);
    std::printf("%8d %16.1f %16.1f %10.2f\n", t, striped / 1e6, shared / 1e6,
                eff);
    bench::JsonLine("contention_counters")
        .Field("hardware_threads", AvailableCpus())
        .Field("threads", t)
        .Field("striped_ops_per_sec", striped)
        .Field("shared_ops_per_sec", shared)
        .Field("scaling_efficiency", eff)
        .Emit();
  }
  // Scaling bar: on a real multi-core box, 8 threads of striped counting
  // must beat one thread by >= 2x aggregate. A 1-core box can only assert
  // the striped counter is not catastrophically slower than the shared
  // atomic it replaced (the stripe pick adds one TLS read + mask).
  if (AvailableCpus() >= 8 && striped_8 > 0) {
    Check(!smoke || striped_8 >= 2.0 * striped_1,
          "striped counters scale >= 2x at 8 threads");
  } else if (shared_1 > 0) {
    Check(!smoke || striped_1 >= 0.2 * shared_1,
          "striped counter single-thread within 5x of shared atomic");
  }
}

// ---------------------------------------------------------------------------
// Sweep 2: cache hit throughput.
// ---------------------------------------------------------------------------

void RunCacheSweep(const std::vector<int>& sweep, uint64_t iters) {
  bench::Header("ShardedLruCache hot-hit throughput");
  constexpr size_t kHotKeys = 512;
  ShardedLruCache<std::string> cache({/*capacity=*/4096, /*shards=*/0});
  std::vector<std::string> keys;
  keys.reserve(kHotKeys);
  for (size_t i = 0; i < kHotKeys; ++i) {
    keys.push_back("question:" + std::to_string(i));
    cache.Put(keys.back(), "answer " + std::to_string(i));
  }
  std::printf("shards=%zu\n", cache.options().shards);
  std::printf("%8s %16s %10s\n", "threads", "hits M/s", "eff");
  double ops_1 = 0;
  for (int t : sweep) {
    double ms = TimedThreads(t, [&](int tid) {
      Rng rng(0x5eedULL + tid);
      for (uint64_t i = 0; i < iters; ++i) {
        auto hit = cache.Get(keys[rng.Next(kHotKeys)]);
        Check(hit != nullptr, "hot key present");
      }
    });
    double ops = static_cast<double>(t) * iters / (ms / 1000.0);
    if (t == 1) ops_1 = ops;
    double eff = Efficiency(ops_1, ops, t);
    std::printf("%8d %16.1f %10.2f\n", t, ops / 1e6, eff);
    bench::JsonLine("contention_cache")
        .Field("hardware_threads", AvailableCpus())
        .Field("threads", t)
        .Field("shards", cache.options().shards)
        .Field("ops_per_sec", ops)
        .Field("scaling_efficiency", eff)
        .Emit();
  }
  ShardedLruCache<std::string>::Stats stats = cache.stats();
  Check(stats.hits > 0, "cache recorded hits");
  Check(stats.shard_imbalance >= 1.0 || stats.entries == 0,
        "imbalance gauge >= 1 when occupied");
}

// ---------------------------------------------------------------------------
// Sweep 3: SIMD probe kernels vs scalar.
// ---------------------------------------------------------------------------

double ProbeThroughput(const std::vector<uint32_t>& sorted,
                       const std::vector<uint32_t>& queries, bool pair_keyed) {
  WallTimer timer;
  uint64_t checksum = 0;
  const uint32_t* base = sorted.data();
  const uint32_t* end = base + sorted.size();
  for (uint32_t q : queries) {
    const uint32_t* lb = pair_keyed ? SimdLowerBoundPairKey(base, end, q)
                                    : SimdLowerBoundU32(base, end, q);
    checksum += static_cast<uint64_t>(lb - base);
  }
  double ms = timer.ElapsedMillis();
  volatile uint64_t sink = checksum;
  (void)sink;
  return queries.size() / (ms / 1000.0);
}

void RunProbeSweep(uint64_t iters, uint64_t seed) {
  bench::Header("SIMD probe kernels vs scalar (sorted run lower bound)");
  Rng rng(seed);
  constexpr size_t kRun = 1 << 16;
  std::vector<uint32_t> flat(kRun);
  for (uint32_t& v : flat) v = static_cast<uint32_t>(rng.Next(1u << 30));
  std::sort(flat.begin(), flat.end());
  std::vector<uint32_t> pairs(2 * kRun);
  for (size_t i = 0; i < kRun; ++i) {
    pairs[2 * i] = flat[i];
    pairs[2 * i + 1] = static_cast<uint32_t>(rng.Next(1u << 30));
  }
  std::vector<uint32_t> queries(iters);
  for (uint32_t& q : queries) q = static_cast<uint32_t>(rng.Next(1u << 30));

  // Correctness while we are here: the active kernel must agree with
  // std::lower_bound on every query of this run.
  for (size_t i = 0; i < std::min<size_t>(queries.size(), 4096); ++i) {
    const uint32_t* lb =
        SimdLowerBoundU32(flat.data(), flat.data() + flat.size(), queries[i]);
    auto ref = std::lower_bound(flat.begin(), flat.end(), queries[i]);
    Check(lb - flat.data() == ref - flat.begin(),
          "SIMD flat lower bound == std::lower_bound");
  }

  ProbeKernel active = ActiveProbeKernel();
  double flat_simd = ProbeThroughput(flat, queries, false);
  double pair_simd = ProbeThroughput(pairs, queries, true);
  SetProbeKernelForTest(ProbeKernel::kScalar);
  double flat_scalar = ProbeThroughput(flat, queries, false);
  double pair_scalar = ProbeThroughput(pairs, queries, true);
  SetProbeKernelForTest(active);

  std::printf("kernel=%s\n", ProbeKernelName(active));
  std::printf("%8s %16s %16s %10s\n", "layout", "simd M/s", "scalar M/s",
              "ratio");
  std::printf("%8s %16.2f %16.2f %10.2f\n", "flat", flat_simd / 1e6,
              flat_scalar / 1e6, flat_simd / flat_scalar);
  std::printf("%8s %16.2f %16.2f %10.2f\n", "pair", pair_simd / 1e6,
              pair_scalar / 1e6, pair_simd / pair_scalar);
  bench::JsonLine("contention_probes")
      .Field("hardware_threads", AvailableCpus())
      .Field("kernel", ProbeKernelName(active))
      .Field("flat_simd_per_sec", flat_simd)
      .Field("flat_scalar_per_sec", flat_scalar)
      .Field("pair_simd_per_sec", pair_simd)
      .Field("pair_scalar_per_sec", pair_scalar)
      .Emit();
}

// ---------------------------------------------------------------------------
// Sweep 4: batched matcher QPS across a pinned worker pool.
// ---------------------------------------------------------------------------

void RunMatcherSweep(const std::vector<int>& sweep, bool smoke) {
  bench::Header("batched matcher QPS (caching off, pinned pool)");
  const bench::BenchWorld world = bench::BuildWorld();
  qa::GAnswer system(&world.kb.graph, &world.lexicon, world.verified.get());
  std::vector<std::string> questions;
  size_t want = smoke ? 32 : 256;
  for (size_t i = 0; i < want; ++i) {
    questions.push_back(world.workload[i % world.workload.size()].text);
  }
  std::printf("questions=%zu\n", questions.size());
  std::printf("%8s %12s %10s %8s\n", "threads", "QPS", "eff", "pinned");
  double qps_1 = 0;
  for (int t : sweep) {
    ThreadPool pool(ThreadPool::Options{t, /*pin_workers=*/true});
    WallTimer timer;
    pool.ParallelFor(0, questions.size(), [&](size_t i) {
      auto response = system.Ask(questions[i]);
      Check(response.ok(), "Ask succeeds under the sweep");
    });
    double qps = questions.size() / (timer.ElapsedMillis() / 1000.0);
    if (t == 1) qps_1 = qps;
    double eff = Efficiency(qps_1, qps, t);
    std::printf("%8d %12.1f %10.2f %8d\n", t, qps, eff,
                pool.pinned_workers());
    bench::JsonLine("contention_matcher")
        .Field("hardware_threads", AvailableCpus())
        .Field("threads", t)
        .Field("qps", qps)
        .Field("scaling_efficiency", eff)
        .Field("pinned_workers", pool.pinned_workers())
        .Emit();
  }
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  uint64_t seed = 42;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      seed = static_cast<uint64_t>(std::atoll(argv[++i]));
    }
  }

  const CpuTopology& topo = Topology();
  std::printf(
      "topology: %d hardware threads, %d physical cores, %d socket(s), "
      "smt=%d, cache line %d B, affinity %s\n",
      topo.hardware_threads(), topo.physical_cores, topo.sockets,
      topo.smt ? 1 : 0, topo.cache_line_bytes,
      AffinityEnabled() ? "enabled" : "disabled");
  bench::JsonLine("contention_topology")
      .Field("hardware_threads", topo.hardware_threads())
      .Field("physical_cores", topo.physical_cores)
      .Field("sockets", topo.sockets)
      .Field("smt", topo.smt)
      .Field("cache_line_bytes", topo.cache_line_bytes)
      .Field("probe_kernel", ProbeKernelName(ActiveProbeKernel()))
      .Emit();

  std::vector<int> sweep = ThreadSweep(AvailableCpus());
  uint64_t iters = smoke ? 200'000 : 2'000'000;

  RunCounterSweep(sweep, iters, smoke);
  RunCacheSweep(sweep, smoke ? 50'000 : 500'000);
  RunProbeSweep(smoke ? 100'000 : 1'000'000, seed);
  RunMatcherSweep(sweep, smoke);

  if (g_failed) {
    std::fprintf(stderr, "bench_contention: FAILED\n");
    return 1;
  }
  std::printf("\nbench_contention: OK\n");
  return 0;
}
